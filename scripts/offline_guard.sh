#!/usr/bin/env bash
# Offline-build guard: the container and CI have no crates.io access, so
# every dependency of every workspace crate must resolve to a local path.
#
# Enforced rules:
#   1. [workspace.dependencies] in the root Cargo.toml are all `path = …`
#      entries (the shims under crates/shims/ stand in for registry names).
#   2. Every dependency of every crate manifest — inline entry or
#      `[dependencies.<name>]` table — uses `workspace = true` or a
#      `path = …` spec, never a bare registry version requirement.
#   3. Cargo.lock registers no registry or git source.
#   4. CI workflows (.github/workflows/*.yml) AND local composite actions
#      (.github/actions/**/*.yml) contain no network-touching steps: no
#      `cargo install`, no curl/wget/git-clone, no crates.io or registry
#      URLs, and CARGO_NET_OFFLINE is never switched off — so the offline
#      invariant covers CI itself, not just the build. (`rustup toolchain
#      install` is the one allowed network step: hosted runners need a
#      toolchain before anything can run.)
#   5. Every `uses:` step in workflows and composite actions is either a
#      local `./` action or pinned to an immutable ref — a version tag
#      (`@v4`, `@v1.2.3`) or a 40-hex commit SHA. Mutable branch refs
#      (`@main`, `@master`, `@latest`, feature branches) would let the
#      action's code change under CI without a diff here.
#
# Pure bash/awk so it runs in the offline build container and in CI without
# compiling anything. Exit 0 = clean, 1 = violation.

set -u
cd "$(dirname "$0")/.."

fail=0

check_manifest() {
    local manifest="$1"
    local bad
    bad=$(awk '
        function flush_table() {
            if (table != "" && !table_local) {
                print FILENAME ": [" table "] has no path/workspace source"
            }
            table = ""
            table_local = 0
        }
        /^\[/ {
            flush_table()
            in_deps = ($0 ~ /^\[(target\.[^]]*\.)?(workspace\.)?(dev-|build-)?dependencies\]/)
            if ($0 ~ /^\[(target\.[^]]*\.)?(workspace\.)?(dev-|build-)?dependencies\./) {
                table = $0
                gsub(/[\[\]]/, "", table)
            }
            next
        }
        table != "" {
            line = $0
            sub(/#.*/, "", line)
            if (line ~ /workspace[[:space:]]*=[[:space:]]*true/) table_local = 1
            if (line ~ /^[[:space:]]*path[[:space:]]*=/) table_local = 1
            next
        }
        in_deps && /^[[:space:]]*["A-Za-z0-9_-]+["]?[[:space:]]*=/ {
            line = $0
            sub(/#.*/, "", line)                  # strip comments
            if (line ~ /workspace[[:space:]]*=[[:space:]]*true/) next
            if (line ~ /path[[:space:]]*=/) next
            print FILENAME ": " line
        }
        END { flush_table() }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "offline-guard: registry-style dependency in $manifest:" >&2
        echo "$bad" >&2
        fail=1
    fi
}

for manifest in Cargo.toml crates/*/Cargo.toml crates/shims/*/Cargo.toml; do
    [ -f "$manifest" ] || continue
    check_manifest "$manifest"
done

# CI workflows must honor the same invariant: a step that installs crates,
# fetches URLs, or re-enables cargo's network would make CI green depend on
# registry access the build container does not have.
check_workflow() {
    local wf="$1"
    local bad
    bad=$(awk '
        {
            line = $0
            sub(/#.*/, "", line)          # strip YAML comments
        }
        line ~ /cargo[[:space:]]+install/ ||
        line ~ /(^|[^A-Za-z0-9_.-])curl([[:space:]]|$)/ ||
        line ~ /(^|[^A-Za-z0-9_.-])wget([[:space:]]|$)/ ||
        line ~ /git[[:space:]]+clone[[:space:]]+http/ ||
        line ~ /crates\.io/ ||
        line ~ /static\.crates/ ||
        line ~ /registry[[:space:]]*\+[[:space:]]*https/ ||
        line ~ /CARGO_NET_OFFLINE[^=:]*[:=][[:space:]]*"?(false|0)/ {
            print FILENAME ":" FNR ": " $0
        }
    ' "$wf")
    if [ -n "$bad" ]; then
        echo "offline-guard: network-touching step in $wf:" >&2
        echo "$bad" >&2
        fail=1
    fi
}

# Pinned-ref check for `uses:` steps: local `./` actions are fine, as is
# anything pinned to a version tag (@v4, @v1.2.3) or a full 40-hex commit
# SHA. Everything else — no `@` at all, or a branch-like ref such as
# @main/@master/@latest — is mutable and rejected.
check_uses_pins() {
    local wf="$1"
    local bad
    bad=$(awk '
        {
            line = $0
            sub(/#.*/, "", line)          # strip YAML comments
        }
        line ~ /(^|[[:space:]])uses:[[:space:]]*/ {
            ref = line
            sub(/.*uses:[[:space:]]*/, "", ref)
            gsub(/["'"'"'[:space:]]/, "", ref)
            if (ref == "") next
            if (ref ~ /^\.\//) next                              # local action
            if (ref ~ /@v[0-9][0-9A-Za-z._-]*$/) next            # version tag
            if (ref ~ /@[0-9a-f]{40}$/) next                     # commit SHA
            print FILENAME ":" FNR ": " $0
        }
    ' "$wf")
    if [ -n "$bad" ]; then
        echo "offline-guard: unpinned or mutable-ref action in $wf:" >&2
        echo "$bad" >&2
        fail=1
    fi
}

for wf in .github/workflows/*.yml .github/workflows/*.yaml \
          .github/actions/*/*.yml .github/actions/*/*.yaml \
          .github/actions/*.yml .github/actions/*.yaml; do
    [ -f "$wf" ] || continue
    check_workflow "$wf"
    check_uses_pins "$wf"
done

# The lockfile is ground truth for resolved sources: any registry/git
# source means the build would touch the network.
if grep -E '^source = "(registry|git)' Cargo.lock >/dev/null 2>&1; then
    echo "offline-guard: Cargo.lock references a registry/git source:" >&2
    grep -nE '^source = "(registry|git)' Cargo.lock >&2
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    n=$(ls Cargo.toml crates/*/Cargo.toml crates/shims/*/Cargo.toml 2>/dev/null | wc -l)
    w=$(ls .github/workflows/*.yml .github/workflows/*.yaml \
           .github/actions/*/*.yml .github/actions/*/*.yaml \
           .github/actions/*.yml .github/actions/*.yaml 2>/dev/null | wc -l)
    echo "offline-guard: $n manifests and $w workflow/action files clean — no registry dependencies, no network steps, all action refs pinned"
fi
exit "$fail"
