//! Property-based tests over the core data structures and invariants:
//! JSON round-trips, query language round-trips, DataFrame algebra,
//! semantic-comparison reflexivity, broker conservation, tokenizer
//! additivity, and schema boundedness.

use proptest::prelude::*;
use provagent::dataframe::{col, lit, AggFunc, DataFrame};
use provagent::llm_sim::count_tokens;
use provagent::prov_model::{json, Map, TaskMessageBuilder, Value};
use provagent::provql::{self, Query, Stage};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only; JSON has no NaN/Inf.
        prop::num::f64::NORMAL.prop_map(Value::Float),
        "[a-zA-Z0-9 _.:/-]{0,24}".prop_map(Value::from),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    arb_scalar().prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..5).prop_map(Value::array),
            prop::collection::btree_map("[a-z_][a-z0-9_]{0,8}", inner, 0..5).prop_map(|m| {
                Value::object(
                    m.into_iter()
                        .map(|(k, v)| (provagent::prov_model::Sym::new(k), v))
                        .collect(),
                )
            }),
        ]
    })
}

fn arb_column_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_map(|s| s.to_string())
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        (arb_column_name(), -1000i64..1000).prop_map(|(c, v)| Stage::Filter(col(c).gt(lit(v)))),
        (arb_column_name(), "[A-Za-z0-9_-]{1,8}")
            .prop_map(|(c, s)| Stage::Filter(col(c).eq(lit(s.as_str())))),
        prop::collection::vec(arb_column_name(), 1..3).prop_map(Stage::Select),
        arb_column_name().prop_map(Stage::Col),
        prop::collection::vec(arb_column_name(), 1..3).prop_map(Stage::GroupBy),
        prop_oneof![
            Just(AggFunc::Mean),
            Just(AggFunc::Sum),
            Just(AggFunc::Max),
            Just(AggFunc::Count)
        ]
        .prop_map(Stage::Agg),
        (arb_column_name(), any::<bool>()).prop_map(|(c, asc)| Stage::SortValues(vec![(c, asc)])),
        (1usize..20).prop_map(Stage::Head),
        (1usize..5, arb_column_name()).prop_map(|(n, c)| Stage::NLargest(n, c)),
        (arb_column_name(), any::<bool>()).prop_map(|(column, max)| Stage::LocIdx {
            column,
            max,
            cell: None
        }),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    prop::collection::vec(arb_stage(), 0..4).prop_map(Query::pipeline)
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// JSON serialization round-trips every value.
    #[test]
    fn json_roundtrip(v in arb_value()) {
        let text = json::to_string(&v);
        let back = json::from_str(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Pretty and compact renderings parse identically.
    #[test]
    fn json_pretty_equals_compact(v in arb_value()) {
        let compact = json::from_str(&json::to_string(&v)).unwrap();
        let pretty = json::from_str(&json::to_string_pretty(&v)).unwrap();
        prop_assert_eq!(compact, pretty);
    }

    /// Interning is transparent: a tree whose strings/keys all go through
    /// the global interner and a tree built from fresh uninterned symbols
    /// serialize to byte-identical JSON, compare equal, and share a
    /// `stable_hash` — i.e. interning is purely an allocation optimization.
    #[test]
    fn interned_and_uninterned_serialize_identically(v in arb_value()) {
        use provagent::prov_model::Sym;

        fn rebuild(v: &Value, mk: &dyn Fn(&str) -> Sym) -> Value {
            match v {
                Value::Str(s) => Value::Str(mk(s.as_str())),
                Value::Array(a) => Value::array(a.iter().map(|x| rebuild(x, mk)).collect()),
                Value::Object(m) => Value::object(
                    m.iter().map(|(k, x)| (mk(k.as_str()), rebuild(x, mk))).collect(),
                ),
                other => other.clone(),
            }
        }

        let interned = rebuild(&v, &|s: &str| Sym::intern(s));
        let uninterned = rebuild(&v, &|s: &str| Sym::new(s));
        prop_assert_eq!(json::to_string(&interned), json::to_string(&uninterned));
        prop_assert_eq!(
            json::to_string_pretty(&interned),
            json::to_string_pretty(&uninterned)
        );
        prop_assert_eq!(&interned, &uninterned);
        prop_assert_eq!(&interned, &v);
        prop_assert_eq!(interned.stable_hash(), uninterned.stable_hash());
        prop_assert_eq!(interned.stable_hash(), v.stable_hash());
    }

    /// Query rendering round-trips through the parser.
    #[test]
    fn provql_roundtrip(q in arb_query()) {
        let text = provql::render(&q);
        let back = provql::parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed for `{text}`: {e}"));
        prop_assert_eq!(back, q);
    }

    /// Every query is functionally equivalent to itself.
    #[test]
    fn compare_is_reflexive(q in arb_query()) {
        let c = provql::compare(&q, &q, None);
        prop_assert!(c.score > 0.999, "self-similarity {} for {:?}", c.score, q);
    }

    /// Filtering never invents rows, and every surviving row satisfies the
    /// predicate.
    #[test]
    fn filter_is_sound(xs in prop::collection::vec(-1000i64..1000, 0..64), threshold in -1000i64..1000) {
        let frame = DataFrame::from_columns(vec![(
            "x",
            xs.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>(),
        )]).unwrap();
        let filtered = frame.filter(&col("x").gt(lit(threshold)));
        prop_assert!(filtered.len() <= frame.len());
        let expected = xs.iter().filter(|&&v| v > threshold).count();
        prop_assert_eq!(filtered.len(), expected);
        for v in filtered.column("x").unwrap().values() {
            prop_assert!(v.as_i64().unwrap() > threshold);
        }
    }

    /// Sorting is a permutation and is ordered.
    #[test]
    fn sort_is_an_ordered_permutation(xs in prop::collection::vec(-1000i64..1000, 0..64)) {
        let frame = DataFrame::from_columns(vec![(
            "x",
            xs.iter().map(|&v| Value::Int(v)).collect::<Vec<_>>(),
        )]).unwrap();
        let sorted = frame.sort_values(&[("x", true)]).unwrap();
        prop_assert_eq!(sorted.len(), frame.len());
        let got: Vec<i64> = sorted.column("x").unwrap().values().iter()
            .map(|v| v.as_i64().unwrap()).collect();
        let mut expected = xs.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Group-by sizes partition the frame.
    #[test]
    fn groupby_partitions(keys in prop::collection::vec(0u8..5, 1..64)) {
        let frame = DataFrame::from_columns(vec![(
            "k",
            keys.iter().map(|&v| Value::Int(v as i64)).collect::<Vec<_>>(),
        )]).unwrap();
        let sizes = frame.groupby(&["k"]).unwrap().size();
        let total: i64 = sizes.column("size").unwrap().values().iter()
            .map(|v| v.as_i64().unwrap()).sum();
        prop_assert_eq!(total as usize, keys.len());
    }

    /// Mean lies within [min, max] for non-empty numeric columns.
    #[test]
    fn mean_is_bounded(xs in prop::collection::vec(prop::num::f64::NORMAL, 1..64)) {
        let frame = DataFrame::from_columns(vec![(
            "x",
            xs.iter().map(|&v| Value::Float(v)).collect::<Vec<_>>(),
        )]).unwrap();
        let mean = frame.agg("x", AggFunc::Mean).unwrap().as_f64().unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-6 && mean <= hi + 1e-6, "{lo} <= {mean} <= {hi}");
    }

    /// The memory broker delivers exactly subscribers × published messages.
    #[test]
    fn broker_conserves_messages(n in 1usize..50, subs in 1usize..4) {
        let broker = provagent::prov_stream::MemoryBroker::new();
        use provagent::prov_stream::{topics, Broker};
        let subscriptions: Vec<_> = (0..subs).map(|_| broker.subscribe(topics::TASKS)).collect();
        for i in 0..n {
            broker
                .publish(topics::TASKS, TaskMessageBuilder::new(format!("t{i}"), "wf", "a").build())
                .unwrap();
        }
        for s in &subscriptions {
            prop_assert_eq!(s.drain().len(), n);
        }
        prop_assert_eq!(broker.stats().delivered, (n * subs) as u64);
    }

    /// Tokens are additive across a whitespace boundary.
    #[test]
    fn tokens_additive_across_space(a in "[a-zA-Z0-9 ]{0,40}", b in "[a-zA-Z0-9 ]{0,40}") {
        let joined = format!("{a} {b}");
        prop_assert_eq!(count_tokens(&joined), count_tokens(&a) + count_tokens(&b));
    }

    /// The dynamic dataflow schema is bounded by activity diversity, not by
    /// message count (the paper's scale-independence invariant).
    #[test]
    fn schema_bounded_by_diversity(n_msgs in 1usize..128, n_activities in 1usize..5) {
        let mut schema = provagent::agent_core::DynamicDataflowSchema::new();
        for i in 0..n_msgs {
            let mut m = Map::new();
            m.insert("x".into(), Value::Int(i as i64));
            schema.observe(
                &TaskMessageBuilder::new(
                    format!("t{i}"),
                    "wf",
                    format!("act{}", i % n_activities),
                )
                .uses("x", i as i64)
                .generates("y", i as i64)
                .build(),
            );
        }
        prop_assert_eq!(schema.activity_count(), n_activities.min(n_msgs));
        // Two fields per activity, regardless of message count.
        prop_assert_eq!(schema.field_count(), 2 * n_activities.min(n_msgs));
    }

    /// Message JSON round-trips for arbitrary used/generated payloads.
    #[test]
    fn task_message_roundtrip(used in arb_value(), generated in arb_value()) {
        let msg = TaskMessageBuilder::new("t", "wf", "act")
            .used(used)
            .generated(generated)
            .span(1.0, 2.0)
            .build();
        let back = provagent::prov_model::TaskMessage::from_json(&msg.to_json()).unwrap();
        prop_assert_eq!(back, msg);
    }
}

// ---------------------------------------------------------------------
// Extension invariants: edit distance, chaos conservation, conformance,
// class prediction.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Levenshtein distance is a metric: identity, symmetry, and the
    /// triangle inequality.
    #[test]
    fn edit_distance_is_a_metric(
        a in "[a-z_]{0,12}",
        b in "[a-z_]{0,12}",
        c in "[a-z_]{0,12}",
    ) {
        use provagent::agent_core::autofix::edit_distance;
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert!(
            edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c)
        );
        // Bounded by the longer string.
        prop_assert!(edit_distance(&a, &b) <= a.chars().count().max(b.chars().count()));
    }

    /// A duplicate/reorder-only chaos broker conserves the message
    /// multiset: nothing is lost, every delivered id was published.
    #[test]
    fn chaos_without_drops_conserves_messages(
        n in 1usize..120,
        dup in 0.0f64..0.5,
        reorder in 0.0f64..0.4,
        seed in 0u64..1000,
    ) {
        use provagent::prov_stream::{Broker, ChaosBroker, ChaosConfig, MemoryBroker};
        use std::sync::Arc;
        let broker = ChaosBroker::new(
            Arc::new(MemoryBroker::new()),
            ChaosConfig { drop_p: 0.0, duplicate_p: dup, reorder_p: reorder, seed },
        );
        let sub = broker.subscribe("t");
        for i in 0..n {
            broker
                .publish("t", TaskMessageBuilder::new(format!("m{i}"), "wf", "a").build())
                .unwrap();
        }
        broker.flush_held().unwrap();
        let got = sub.drain();
        let mut distinct: Vec<&str> = got.iter().map(|m| m.task_id.as_str()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), n, "every published id delivered at least once");
        prop_assert!(got.len() >= n);
    }

    /// A faithful execution conforms to its own plan regardless of the
    /// order messages arrive in (streams have no ordering guarantees).
    #[test]
    fn conformance_is_order_independent(perm_seed in 0u64..1000) {
        use provagent::prov_stream::StreamingHub;
        use provagent::workflows::{build_synthetic_dag, run_sweep, ProspectivePlan, SyntheticParams};
        let plan = ProspectivePlan::from_dag(
            "synthetic",
            &build_synthetic_dag(SyntheticParams::config(0)),
        );
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe_tasks();
        run_sweep(&hub, provagent::prov_model::sim_clock(), 42, 2).unwrap();
        let mut msgs: Vec<provagent::prov_model::TaskMessage> =
            sub.drain().iter().map(|m| (**m).clone()).collect();
        // Deterministic pseudo-shuffle keyed by perm_seed.
        let len = msgs.len();
        for i in 0..len {
            let j = ((perm_seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % len;
            msgs.swap(i, j);
        }
        let report = plan.check(&msgs);
        prop_assert!(report.conforms(), "{}", report.render());
    }

    /// The class predictor is total and sane: it always returns at least
    /// one data type, and at most two.
    #[test]
    fn predict_class_is_total(q in "[a-zA-Z0-9 _?]{0,80}") {
        let (_, dts) = provagent::eval::predict_class(&q);
        prop_assert!(!dts.is_empty());
        prop_assert!(dts.len() <= 2);
    }
}

// ---------------------------------------------------------------------
// Sharded provenance-database invariants: query results are independent
// of the shard count (the sharding only tunes write concurrency).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `find`, `count`, `aggregate`, and `distinct` answer identically on a
    /// 1-shard store and on arbitrarily sharded stores holding the same
    /// corpus in the same insertion order — including result order.
    #[test]
    fn provdb_queries_are_shard_count_invariant(
        rows in prop::collection::vec((0u8..5, -100i64..100, any::<bool>()), 0..80),
        nshards in 2usize..9,
        threshold in -100i64..100,
    ) {
        use provagent::prov_db::{AggOp, Aggregate, DocQuery, DocumentStore, GroupSpec, Op};

        let sharded = DocumentStore::with_shards(nshards);
        let single = DocumentStore::with_shards(1);
        for store in [&sharded, &single] {
            store.create_index("act");
            store.create_range_index("y");
        }
        for (i, (act, y, in_batch)) in rows.iter().enumerate() {
            let doc = provagent::prov_model::obj! {
                "seq" => i,
                "act" => format!("act{act}"),
                "y" => *y,
                "nested" => provagent::prov_model::obj! { "y2" => (*y as f64) * 0.5 },
            };
            // Exercise both the single-insert and the batch lock path.
            if *in_batch {
                sharded.insert_many(vec![doc.clone()]);
            } else {
                sharded.insert(doc.clone());
            }
            single.insert(doc);
        }

        let queries = [
            DocQuery::new(),
            DocQuery::new().filter("act", Op::Eq, "act2"),
            DocQuery::new().filter("y", Op::Gte, threshold),
            DocQuery::new().filter("y", Op::Lt, threshold).filter("act", Op::Eq, "act0"),
            DocQuery::new().sort_by("y", true).limit(9),
            DocQuery::new().filter("act", Op::Eq, "act1").project(&["seq", "nested.y2"]),
        ];
        for q in &queries {
            prop_assert_eq!(sharded.find(q), single.find(q), "find disagrees for {:?}", q);
            prop_assert_eq!(sharded.count(q), single.count(q), "count disagrees for {:?}", q);
        }

        let group = GroupSpec {
            key: "act".into(),
            aggs: vec![
                Aggregate { path: "y".into(), op: AggOp::Sum },
                Aggregate { path: "nested.y2".into(), op: AggOp::Mean },
                Aggregate { path: "y".into(), op: AggOp::Count },
            ],
        };
        prop_assert_eq!(
            sharded.aggregate(&DocQuery::new(), &group),
            single.aggregate(&DocQuery::new(), &group)
        );
        prop_assert_eq!(
            sharded.distinct(&DocQuery::new(), "act"),
            single.distinct(&DocQuery::new(), "act")
        );
    }

    /// An indexed store and an index-free store agree on every operator
    /// (indexes are an acceleration, never a semantics change).
    #[test]
    fn provdb_indexes_never_change_results(
        rows in prop::collection::vec((0u8..4, -50i64..50), 0..60),
        threshold in -50i64..50,
    ) {
        use provagent::prov_db::{DocQuery, DocumentStore, Op};

        let indexed = DocumentStore::with_shards(4);
        indexed.create_index("act");
        indexed.create_index("y");
        indexed.create_range_index("y");
        let plain = DocumentStore::with_shards(4);
        for (i, (act, y)) in rows.iter().enumerate() {
            let doc = provagent::prov_model::obj! {
                "seq" => i,
                "act" => format!("act{act}"),
                "y" => *y,
            };
            indexed.insert(doc.clone());
            plain.insert(doc);
        }
        for op in [Op::Eq, Op::Ne, Op::Lt, Op::Lte, Op::Gt, Op::Gte] {
            let q = DocQuery::new().filter("y", op, threshold);
            prop_assert_eq!(indexed.find(&q), plain.find(&q), "op {:?}", op);
        }
        let q = DocQuery::new().filter("act", Op::Eq, "act3").filter("y", Op::Eq, threshold);
        prop_assert_eq!(indexed.find(&q), plain.find(&q));
    }
}
