//! Paper-shape assertions: the evaluation must reproduce the qualitative
//! findings of §5.2 — who wins, in which direction, and by roughly what
//! factor (DESIGN.md's calibration targets).

use provagent::agent_core::RagStrategy;
use provagent::eval::report::{fig6_points, fig8_points, fig9_matrix};
use provagent::eval::{mean, run_paper_evaluation, DataType, Experiment, Workload};
use provagent::llm_sim::{JudgeId, ModelId};

fn experiment() -> Experiment {
    Experiment {
        seed: 42,
        n_inputs: 10,
        runs_per_query: 3,
    }
}

#[test]
fn paper_shapes_hold() {
    let results = run_paper_evaluation(&experiment());

    // ---- Figure 6 ----------------------------------------------------
    let points = fig6_points(&results);
    let score = |judge: JudgeId, model: ModelId| {
        points
            .iter()
            .find(|p| p.judge == judge && p.model == model)
            .map(|p| p.score)
            .expect("point exists")
    };
    // GPT judge consistently scores higher than the Claude judge.
    for model in ModelId::all() {
        assert!(
            score(JudgeId::Gpt, model) > score(JudgeId::Claude, model),
            "{model}: GPT judge should score higher"
        );
    }
    // GPT judge: GPT ≈ Claude (a tie within error margins, ~0.97).
    let gpt_gpt = score(JudgeId::Gpt, ModelId::Gpt);
    let gpt_claude = score(JudgeId::Gpt, ModelId::Claude);
    assert!(
        (gpt_gpt - gpt_claude).abs() < 0.02,
        "{gpt_gpt} vs {gpt_claude}"
    );
    assert!((0.93..=1.0).contains(&gpt_gpt), "GPT/GPT = {gpt_gpt}");
    // Claude judge: Claude noticeably above GPT (self-preference).
    let claude_claude = score(JudgeId::Claude, ModelId::Claude);
    let claude_gpt = score(JudgeId::Claude, ModelId::Gpt);
    assert!(
        claude_claude > claude_gpt + 0.01,
        "{claude_claude} vs {claude_gpt}"
    );
    // Frontier models beat LLaMA 3-8B under both judges.
    for judge in JudgeId::all() {
        assert!(score(judge, ModelId::Gpt) > score(judge, ModelId::Llama8B) + 0.04);
    }
    // The judge gap is largest for LLaMA 3-8B / Gemini (vs frontier models).
    let gap = |m: ModelId| score(JudgeId::Gpt, m) - score(JudgeId::Claude, m);
    assert!(gap(ModelId::Llama8B) > gap(ModelId::Claude));
    assert!(gap(ModelId::Gemini) > gap(ModelId::Claude));

    // ---- Figure 7 ------------------------------------------------------
    // OLTP ≥ OLAP (tighter, higher) for the weaker models; near-parity for
    // the frontier models.
    for model in [ModelId::Llama8B, ModelId::Gemini] {
        let olap = mean(&results.scores(|r| {
            r.model == model
                && r.judge == JudgeId::Gpt
                && r.strategy == RagStrategy::Full
                && r.workload == Workload::Olap
        }));
        let oltp = mean(&results.scores(|r| {
            r.model == model
                && r.judge == JudgeId::Gpt
                && r.strategy == RagStrategy::Full
                && r.workload == Workload::Oltp
        }));
        assert!(oltp > olap, "{model}: OLTP {oltp} should beat OLAP {olap}");
    }

    // ---- Figure 8 ------------------------------------------------------
    let points = fig8_points(&results);
    let get = |s: RagStrategy| points.iter().find(|p| p.strategy == s).expect("present");
    let baseline = get(RagStrategy::Baseline);
    let fs = get(RagStrategy::BaselineFs);
    let schema = get(RagStrategy::BaselineFsSchema);
    let values = get(RagStrategy::BaselineFsSchemaValues);
    let guidelines = get(RagStrategy::BaselineFsGuidelines);
    let full = get(RagStrategy::Full);
    // Scores rise from near-zero to near-perfect.
    assert!(baseline.score < 0.25, "baseline {}", baseline.score);
    assert!(full.score > 0.93, "full {}", full.score);
    assert!(baseline.score < fs.score && fs.score < schema.score);
    assert!(schema.score <= values.score + 0.02);
    assert!(values.score < full.score);
    // Guidelines beat schema+values with a fraction of the tokens
    // ("the greatest performance boost with lower token cost").
    assert!(
        guidelines.score > values.score,
        "{} vs {}",
        guidelines.score,
        values.score
    );
    assert!(guidelines.tokens < values.tokens / 2.0);
    // Token growth: baseline a few hundred, full in the thousands.
    assert!(
        baseline.tokens < 700.0,
        "baseline tokens {}",
        baseline.tokens
    );
    assert!(full.tokens > 3_000.0, "full tokens {}", full.tokens);

    // ---- Figure 9 ------------------------------------------------------
    let matrix = fig9_matrix(&results);
    for (dt, row) in &matrix {
        let first = row.first().unwrap().1;
        let last = row.last().unwrap().1;
        assert!(
            last > first + 0.3,
            "{dt}: should improve substantially with context ({first} -> {last})"
        );
        assert!(last > 0.9, "{dt}: Full score {last}");
    }
    // Telemetry starts among the lowest (schema-dependent fields).
    let start = |d: DataType| {
        matrix
            .iter()
            .find(|(dt, _)| *dt == d)
            .unwrap()
            .1
            .first()
            .unwrap()
            .1
    };
    assert!(start(DataType::Telemetry) <= start(DataType::Dataflow) + 0.05);

    // ---- Response times --------------------------------------------------
    // All models stay within the ~2 s interactive bound at full context.
    for model in ModelId::all() {
        let lat = mean(
            &results
                .filter(|r| {
                    r.model == model && r.judge == JudgeId::Gpt && r.strategy == RagStrategy::Full
                })
                .map(|r| r.median_latency_ms)
                .collect::<Vec<_>>(),
        );
        assert!(lat < 2_000.0, "{model}: latency {lat} ms");
        assert!(lat > 50.0, "{model}: implausibly fast {lat} ms");
    }
}

#[test]
fn evaluation_is_reproducible() {
    let e = Experiment {
        seed: 7,
        n_inputs: 3,
        runs_per_query: 2,
    };
    let a = run_paper_evaluation(&e);
    let b = run_paper_evaluation(&e);
    let scores = |r: &provagent::eval::EvalResults| {
        r.records.iter().map(|x| x.median_score).collect::<Vec<_>>()
    };
    assert_eq!(scores(&a), scores(&b));
    // A different seed genuinely changes something.
    let c = run_paper_evaluation(&Experiment {
        seed: 8,
        n_inputs: 3,
        runs_per_query: 2,
    });
    assert_ne!(scores(&a), scores(&c));
}

/// The latency deep-dive claim (§5.4 future work, implemented): response
/// time is driven by prompt size (prefill), so richer configurations cost
/// more latency — yet every configuration stays interactive (<2 s).
#[test]
fn latency_follows_prompt_tokens_across_configs() {
    let results = provagent::eval::run_matrix(
        &experiment(),
        &[ModelId::Gpt],
        &[
            RagStrategy::Baseline,
            RagStrategy::BaselineFsSchema,
            RagStrategy::Full,
        ],
        &[provagent::llm_sim::Judge::new(JudgeId::Gpt)],
    );
    let avg = |s: RagStrategy, f: fn(&provagent::eval::Record) -> f64| {
        let v: Vec<f64> = results.filter(|r| r.strategy == s).map(f).collect();
        mean(&v)
    };
    let configs = [
        RagStrategy::Baseline,
        RagStrategy::BaselineFsSchema,
        RagStrategy::Full,
    ];
    // Tokens rise strictly with richer context…
    let tokens: Vec<f64> = configs
        .iter()
        .map(|&s| avg(s, |r| r.median_tokens))
        .collect();
    assert!(tokens[0] < tokens[1] && tokens[1] < tokens[2], "{tokens:?}");
    // …and latency rises with tokens between the schema-bearing configs
    // (the decode term dominates the baseline, so only the prefill-driven
    // growth is asserted), staying interactive throughout.
    let lat: Vec<f64> = configs
        .iter()
        .map(|&s| avg(s, |r| r.median_latency_ms))
        .collect();
    assert!(lat[1] < lat[2], "schema {} vs full {}", lat[1], lat[2]);
    for l in &lat {
        assert!(*l < 2_000.0, "interactive bound violated: {l} ms");
    }
}
