//! Cross-crate integration: workflow → streaming hub → {keeper → database,
//! context manager → agent} → agent self-provenance back through the hub.

use provagent::agent_core::ContextFeeder;
use provagent::prelude::*;
use provagent::prov_keeper;
use provagent::prov_model::MessageType;
use provagent::prov_stream::topics;
use provagent::workflows::{run_bde_workflow, run_sweep};
use std::time::Duration;

#[test]
fn synthetic_pipeline_end_to_end() {
    let hub = StreamingHub::in_memory();
    let db = ProvenanceDatabase::shared();
    let keeper = prov_keeper::start(&hub, db.clone(), prov_keeper::KeeperConfig::default());
    let ctx = ContextManager::default_sized();
    let feeder = ContextFeeder::start(&hub, ctx.clone());

    let sweep = run_sweep(&hub, sim_clock(), 42, 10).expect("sweep");
    assert_eq!(sweep.tasks, 80);

    assert!(keeper.wait_for(80, Duration::from_secs(10)));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while ctx.len() < 80 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(feeder);
    assert_eq!(ctx.len(), 80);
    assert_eq!(db.documents().len(), 80);

    // The database answers a point lookup and lineage traversal.
    let some_task = db.find(&provagent::prov_db::DocQuery::new().limit(1));
    assert_eq!(some_task.len(), 1);
    // average_results depends on four upstream tasks transitively.
    let avg_docs = db.find(
        &provagent::prov_db::DocQuery::new()
            .filter("activity_id", provagent::prov_db::Op::Eq, "average_results")
            .limit(1),
    );
    let avg_id = avg_docs[0].get("task_id").unwrap().display_plain();
    let lineage = db.lineage(&avg_id, 10);
    assert!(
        lineage.len() >= 7,
        "fan-in lineage spans the whole instance"
    );

    // Live agent over the same context.
    let agent = ProvenanceAgent::new(
        ctx,
        hub.clone(),
        Box::new(SimLlmServer::new(ModelId::Gpt)),
        Some(db.clone()),
        sim_clock(),
        AgentConfig::default(),
    );
    let agent_sub = hub.subscribe(topics::AGENT);
    let reply = agent.chat("How many tasks have finished so far?");
    assert!(reply.error.is_none());
    assert!(reply.text.contains("80"), "{}", reply.text);

    // §4.2: the interaction itself became provenance.
    let recorded = agent_sub.drain();
    assert!(recorded
        .iter()
        .any(|m| m.msg_type == MessageType::LlmInteraction));
    assert!(recorded
        .iter()
        .any(|m| m.msg_type == MessageType::ToolExecution));
    keeper.stop();
}

#[test]
fn chemistry_pipeline_preserves_listing1_schema() {
    let hub = StreamingHub::in_memory();
    let db = ProvenanceDatabase::shared();
    let keeper = prov_keeper::start(&hub, db.clone(), prov_keeper::KeeperConfig::default());

    let run = run_bde_workflow(&hub, sim_clock(), 7, "CCO", 2).expect("bde workflow");
    assert!(keeper.wait_for(run.tasks as u64, Duration::from_secs(10)));
    keeper.stop();

    // A run_individual_bde document has the Listing-1 shape after the full
    // broker → keeper → database round trip.
    let bde_docs = db.find(
        &provagent::prov_db::DocQuery::new()
            .filter(
                "activity_id",
                provagent::prov_db::Op::Eq,
                "run_individual_bde",
            )
            .limit(1),
    );
    let doc = &bde_docs[0];
    assert!(doc.get_path("used.frags.label").is_some());
    assert!(doc.get_path("used.outdir").is_some());
    assert!(doc.get_path("generated.bd_energy").is_some());
    assert!(doc.get_path("generated.bd_enthalpy").is_some());
    assert!(doc
        .get_path("hostname")
        .and_then(Value::as_str)
        .is_some_and(|h| h.contains("frontier")));
}

#[test]
fn historical_queries_use_the_database() {
    // Populate only the database; the live buffer stays empty, so the
    // historical route must hit the persistent store.
    let hub = StreamingHub::in_memory();
    let db = ProvenanceDatabase::shared();
    for i in 0..12 {
        db.insert(
            &TaskMessageBuilder::new(format!("old-{i}"), "previous-wf", "run_dft")
                .generates("e0", -155.0)
                .span(i as f64, i as f64 + 2.0)
                .build(),
        );
    }
    let ctx = ContextManager::default_sized();
    // Some live context so the prompt has a schema (mirrors reality:
    // schema inferred live, history in the DB).
    ctx.ingest(
        TaskMessageBuilder::new("live-0", "wf", "run_dft")
            .generates("e0", -155.0)
            .build(),
    );
    let agent = ProvenanceAgent::new(
        ctx,
        hub,
        Box::new(SimLlmServer::new(ModelId::Gpt)),
        Some(db),
        sim_clock(),
        AgentConfig::default(),
    );
    let reply = agent.chat("How many dft tasks ran in the previous campaign?");
    assert_eq!(reply.route, provagent::llm_sim::Route::HistoricalQuery);
    if reply.error.is_none() {
        assert!(
            reply.text.contains("12"),
            "expected the DB count, got: {}",
            reply.text
        );
    }
}

#[test]
fn federated_hub_separates_agent_traffic() {
    let tasks_hub = StreamingHub::new(provagent::prov_stream::PartitionedBroker::shared());
    let agent_hub = StreamingHub::in_memory();
    let fed = provagent::prov_stream::FederatedHub::new(tasks_hub.clone())
        .route("provenance.agent", agent_hub.clone());
    fed.publish(
        topics::AGENT,
        TaskMessageBuilder::new("tool-0", "agent-session", "in_memory_query").build(),
    )
    .unwrap();
    fed.publish(
        topics::TASKS,
        TaskMessageBuilder::new("t0", "wf", "a").build(),
    )
    .unwrap();
    assert_eq!(agent_hub.stats().published, 1);
    assert_eq!(tasks_hub.stats().published, 1);
}

/// Use Case 3 (§5.4): the additive-manufacturing fleet streams through the
/// full pipeline and the *generic* agent answers AM-specific questions via
/// the dynamic dataflow schema — no domain tuning anywhere.
#[test]
fn am_pipeline_generalizes_without_domain_tuning() {
    use provagent::workflows::{run_am_fleet, AmParams, ProspectivePlan};

    let hub = StreamingHub::in_memory();
    let db = ProvenanceDatabase::shared();
    let keeper = prov_keeper::start(&hub, db.clone(), prov_keeper::KeeperConfig::default());
    let ctx = ContextManager::default_sized();
    let feeder = ContextFeeder::start(&hub, ctx.clone());
    let plan_sub = hub.subscribe_tasks();

    let runs = run_am_fleet(&hub, sim_clock(), 42, 8).expect("fleet");
    let total: usize = runs.iter().map(|r| r.run.outputs.len()).sum();
    assert!(keeper.wait_for(total as u64, Duration::from_secs(10)));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while ctx.len() < total && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(feeder);
    assert_eq!(ctx.len(), total);

    // The dynamic schema picked up the AM-only fields.
    let columns = ctx.columns();
    for field in ["melt_pool_temp_c", "energy_density_j_mm3", "porosity_pct"] {
        assert!(
            columns.iter().any(|c| c == field),
            "schema missing {field}: {columns:?}"
        );
    }

    // The same generic agent answers AM process questions.
    let agent = ProvenanceAgent::new(
        ctx,
        hub,
        Box::new(SimLlmServer::new(ModelId::Gpt)),
        Some(db),
        sim_clock(),
        AgentConfig::default(),
    );
    let reply = agent.chat("How many laser_scan tasks have finished so far?");
    assert!(reply.error.is_none(), "{:?}", reply.error);
    let scans: usize = runs.iter().map(|r| r.n_layers).sum();
    assert!(
        reply.text.contains(&scans.to_string()),
        "expected {scans} scans in: {}",
        reply.text
    );

    let reply = agent.chat("Which task produced the largest melt_pool_temp_c?");
    assert!(reply.error.is_none(), "{:?}", reply.error);
    assert!(
        reply
            .code
            .as_deref()
            .unwrap_or("")
            .contains("melt_pool_temp_c"),
        "{:?}",
        reply.code
    );

    // Retrospective stream conforms to the prospective plan, per instance.
    let msgs: Vec<TaskMessage> = plan_sub.drain().iter().map(|m| (**m).clone()).collect();
    let params = AmParams::fleet_config(3);
    let dag = provagent::workflows::build_am_dag(
        &params,
        &provagent::workflows::am::ProcessModel::new(42u64.wrapping_add(3)),
    );
    let plan = ProspectivePlan::from_dag("am", &dag);
    let one: Vec<TaskMessage> = msgs
        .iter()
        .filter(|m| m.workflow_id.as_str() == "am-wf-part-003")
        .cloned()
        .collect();
    let report = plan.check(&one);
    assert!(report.conforms(), "{}", report.render());
    keeper.stop();
}

/// Reliability: an at-least-once transport (duplicates + reordering) with a
/// deduplicating keeper yields exactly-once persistence, and the agent's
/// answers are unaffected.
#[test]
fn chaotic_transport_with_dedup_keeper_is_exactly_once() {
    use provagent::prov_stream::{ChaosBroker, ChaosConfig, MemoryBroker};
    use std::sync::Arc;

    let chaos = Arc::new(ChaosBroker::new(
        Arc::new(MemoryBroker::new()),
        ChaosConfig::at_least_once(7),
    ));
    let hub = StreamingHub::new(chaos.clone());
    let db = ProvenanceDatabase::shared();
    let keeper = prov_keeper::start(
        &hub,
        db.clone(),
        prov_keeper::KeeperConfig {
            dedup: true,
            ..prov_keeper::KeeperConfig::default()
        },
    );

    let sweep = run_sweep(&hub, sim_clock(), 42, 10).expect("sweep");
    chaos.flush_held().expect("flush");
    assert!(keeper.wait_for(sweep.tasks as u64, Duration::from_secs(10)));
    keeper.stop();

    let (dropped, duplicated, reordered) = chaos.fault_counts();
    assert_eq!(dropped, 0);
    assert!(duplicated + reordered > 0, "chaos must have fired");
    assert_eq!(
        db.documents().len(),
        sweep.tasks,
        "exactly-once persistence despite {duplicated} duplicates"
    );
}
