//! # provagent
//!
//! A Rust reproduction of *"LLM Agents for Interactive Workflow
//! Provenance: Reference Architecture and Evaluation Methodology"*
//! (Souza et al., SC Workshops '25): an LLM-powered agent for natural-
//! language interaction with live workflow provenance, together with every
//! substrate it runs on — streaming hub, provenance database and keeper,
//! capture instrumentation, a DataFrame engine, a pandas-style query
//! language, simulated LLM services and judges, two evaluation workflows,
//! and the full evaluation methodology.
//!
//! ```
//! use provagent::prelude::*;
//!
//! // Stream a workflow's provenance into the agent's live context…
//! let hub = StreamingHub::in_memory();
//! let sub = hub.subscribe_tasks();
//! provagent::workflows::run_sweep(&hub, sim_clock(), 42, 3).unwrap();
//! let ctx = ContextManager::default_sized();
//! for m in sub.drain() {
//!     ctx.ingest((*m).clone());
//! }
//!
//! // …and chat with it.
//! let agent = ProvenanceAgent::new(
//!     ctx,
//!     hub,
//!     Box::new(SimLlmServer::new(ModelId::Gpt)),
//!     None,
//!     sim_clock(),
//!     AgentConfig::default(),
//! );
//! let reply = agent.chat("How many tasks have finished so far?");
//! assert!(reply.text.contains("24")); // 3 inputs × 8 tasks
//! ```

pub use agent_core;
pub use dataframe;
pub use eval;
pub use llm_sim;
pub use prov_capture;
pub use prov_db;
pub use prov_keeper;
pub use prov_model;
pub use prov_stream;
pub use provql;
pub use workflows;

/// The most common imports in one place.
pub mod prelude {
    pub use agent_core::{
        AgentConfig, AgentReply, ContextFeeder, ContextManager, McpServer, ProvenanceAgent,
        RagStrategy,
    };
    pub use dataframe::{col, lit, AggFunc, DataFrame};
    pub use llm_sim::{Judge, JudgeId, ModelId, SimLlmServer};
    pub use prov_db::ProvenanceDatabase;
    pub use prov_model::{sim_clock, system_clock, TaskMessage, TaskMessageBuilder, Value};
    pub use prov_stream::{FlushStrategy, StreamingHub};
    pub use provql::{execute, parse};
}
