//! Prospective provenance and plan conformance (Fig 1's "Provenance Type"
//! dimension: retrospective vs. prospective).
//!
//! The planned workflow structure is derived from the DAG *before*
//! execution and stored as prospective provenance; after the run, the
//! retrospective message stream is checked against the plan — missing or
//! unplanned activities, wrong multiplicities, unsatisfied dependency
//! edges, temporal-order violations, failed tasks.
//!
//! ```text
//! cargo run --example plan_conformance
//! ```

use provagent::prelude::*;
use provagent::workflows::{build_synthetic_dag, run_sweep, ProspectivePlan, SyntheticParams};

fn main() {
    // 1. The plan comes from the DAG definition, before any execution.
    let dag = build_synthetic_dag(SyntheticParams::config(0));
    let plan = ProspectivePlan::from_dag("synthetic", &dag);
    println!(
        "prospective plan '{}': {} activities, {} dependency edges",
        plan.name,
        plan.multiplicity.len(),
        plan.edges.len()
    );
    println!("stored as: {}\n", plan.to_value());

    // 2. Execute and capture the retrospective stream.
    let hub = StreamingHub::in_memory();
    let sub = hub.subscribe_tasks();
    run_sweep(&hub, sim_clock(), 42, 3).expect("sweep runs");
    let mut msgs: Vec<TaskMessage> = sub.drain().iter().map(|m| (**m).clone()).collect();

    // 3. A faithful execution conforms.
    println!("--- faithful execution ---");
    println!("{}", plan.check(&msgs).render());

    // 4. Inject deviations: drop one activity, add a rogue task.
    let wf = msgs[0].workflow_id.clone();
    msgs.retain(|m| !(m.workflow_id == wf && m.activity_id.as_str() == "power"));
    msgs.push(
        TaskMessageBuilder::new("rogue-1", wf.as_str(), "debug_dump")
            .span(1.0, 2.0)
            .build(),
    );
    println!("--- after dropping 'power' and adding 'debug_dump' in {wf} ---");
    println!("{}", plan.check(&msgs).render());
}
