//! Adaptive per-class LLM routing (§5.2/§6: "no single model performs best
//! across all workloads and data types, motivating … dynamic LLM routing
//! based on query classes").
//!
//! Trains a routing policy on one evaluation seed, then answers a fresh
//! seed's queries by sending each to the model its predicted class favors,
//! and compares routed vs. fixed-model deployments and the per-query
//! oracle.
//!
//! ```text
//! cargo run --release --example llm_routing
//! ```

use provagent::eval::{evaluate_routing, predict_class, Experiment};
use provagent::prelude::*;

fn main() {
    // Small experiment: scores are input-count independent (§5.2), so a
    // handful of synthetic inputs gives the same picture much faster.
    let train = Experiment {
        seed: 42,
        n_inputs: 10,
        runs_per_query: 3,
    };
    let test = Experiment {
        seed: 1337,
        n_inputs: 10,
        runs_per_query: 3,
    };

    println!("class prediction from question text alone:\n");
    for q in [
        "What is the average duration per activity?",
        "Which tasks started after time 1753457859 and what output y did they produce?",
        "How many tasks ran on each host?",
    ] {
        let (w, dts) = predict_class(q);
        let types: Vec<&str> = dts.iter().map(|d| d.name()).collect();
        println!("  [{w} / {}] {q}", types.join("+"));
    }

    println!(
        "\ntraining on seed {} / evaluating on seed {} …\n",
        train.seed, test.seed
    );
    let outcome = evaluate_routing(&train, &test, JudgeId::Gpt);

    println!("{}", outcome.policy.render());
    println!("{}", outcome.render());
}
