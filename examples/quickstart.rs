//! Quickstart: capture a tiny instrumented workflow and chat with the
//! provenance agent about it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use provagent::prelude::*;
use provagent::prov_capture::CaptureContext;
use provagent::prov_model::obj;

fn main() {
    // 1. A streaming hub: every provenance message flows through it.
    let hub = StreamingHub::in_memory();

    // 2. The agent's context manager subscribes before the workflow runs.
    let ctx = ContextManager::default_sized();
    let feeder = ContextFeeder::start(&hub, ctx.clone());

    // 3. Run an instrumented "workflow": three squared numbers, captured
    //    like Flowcept's decorators would (§2.3).
    let capture = CaptureContext::new(&hub, "quickstart-campaign", "wf-1", sim_clock(), 42);
    let mut prev = None;
    for i in 1..=3i64 {
        let deps: Vec<_> = prev.take().into_iter().collect();
        let task = capture.instrument("square", obj! {"x" => i}, 0.2, &deps, |used| {
            let x = used.get("x").unwrap().as_i64().unwrap();
            Ok(obj! {"y" => x * x})
        });
        prev = Some(task.task_id);
    }
    capture.flush();

    // Wait for the stream to drain into the context.
    while ctx.len() < 3 {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    drop(feeder);

    // 4. Chat with a GPT-4-backed agent (simulated, deterministic).
    let agent = ProvenanceAgent::new(
        ctx,
        hub,
        Box::new(SimLlmServer::new(ModelId::Gpt)),
        None,
        sim_clock(),
        AgentConfig::default(),
    );

    for question in [
        "Hello!",
        "How many tasks have finished so far?",
        "Which task produced the largest output y?",
        "What is the average duration per activity?",
    ] {
        let reply = agent.chat(question);
        println!("user > {question}");
        if let Some(code) = &reply.code {
            println!("query> {code}");
        }
        println!("agent> {}", reply.text);
        if let Some(table) = &reply.table {
            println!(
                "{}",
                dataframe::render(table, dataframe::DisplayOptions::default())
            );
        }
        println!();
    }
}
