//! End-to-end monitoring deployment on the synthetic workflow (Fig 5A):
//! streaming hub → context manager + provenance keeper → anomaly detector
//! → interactive queries, including a user-taught guideline (§4.2).
//!
//! ```text
//! cargo run --example synthetic_monitor
//! ```

use provagent::agent_core::{
    AnomalyConfig, AnomalyDetector, ContextMonitor, Dashboard, ToolContext, ToolRegistry,
};
use provagent::prelude::*;
use provagent::prov_keeper;
use provagent::prov_model::obj;
use provagent::workflows::run_sweep;
use std::time::Duration;

fn main() {
    let hub = StreamingHub::in_memory();

    // A keeper persists everything into the provenance database while the
    // agent's context manager mirrors the stream in memory.
    let db = ProvenanceDatabase::shared();
    let keeper = prov_keeper::start(&hub, db.clone(), prov_keeper::KeeperConfig::default());
    let ctx = ContextManager::default_sized();
    let feeder = ContextFeeder::start(&hub, ctx.clone());

    // Run 25 synthetic workflow instances (200 tasks).
    run_sweep(&hub, sim_clock(), 42, 25).expect("sweep runs");
    // Inject one anomalous task so the detector has something to find.
    hub.publish_task(
        TaskMessageBuilder::new("t-anomalous", "synthetic-wf-99", "power")
            .uses("exponent", 2.0)
            .generates("y", 9.9e12)
            .span(1.0, 9000.0)
            .host("frontier00099.frontier.olcf.ornl.gov")
            .build(),
    )
    .unwrap();

    keeper.wait_for(201, Duration::from_secs(10));
    while ctx.len() < 201 {
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(feeder);
    println!(
        "context: {} rows, {} activities; database: {} documents\n",
        ctx.len(),
        ctx.schema().activity_count(),
        db.documents().len()
    );

    // The Grafana-style dashboard over the same live context (Fig 2).
    let detector = AnomalyDetector::new(AnomalyConfig::default());
    let frame = ctx.frame();
    let anomalies = detector.scan(&frame);
    let board = Dashboard::new();
    println!("{}\n", board.render(&board.snapshot(&ctx, &anomalies)));

    // The context monitor dispatches the anomaly detector (no LLM needed).
    let registry = ToolRegistry::with_builtins();
    let tool_ctx = ToolContext {
        context: ctx.clone(),
        db: Some(db.clone()),
        hub: hub.clone(),
    };
    let monitor = ContextMonitor::default_rules();
    for (rule, result) in monitor.tick(&registry, &tool_ctx).fired {
        println!("[monitor:{rule}]");
        if let Ok(out) = result {
            println!("{}", out.rendered);
        }
    }

    // Interactive queries, including teaching the agent a guideline.
    let agent = ProvenanceAgent::new(
        ctx,
        hub,
        Box::new(SimLlmServer::new(ModelId::Claude)),
        Some(db.clone()),
        sim_clock(),
        AgentConfig::default(),
    );
    for question in [
        "How many tasks ran on each host?",
        "Show the 3 slowest tasks with their activity and host.",
        "use the field exponent to filter power settings",
        "What is the average output y of the power tasks?",
    ] {
        let reply = agent.chat(question);
        println!("user > {question}");
        if let Some(code) = &reply.code {
            println!("query> {code}");
        }
        println!("agent> {}\n", reply.text);
    }

    // The agent's own activity became provenance too (§4.2). The keeper
    // flushes partial batches on a 20ms poll timeout, so give it a moment
    // to drain the interactions the chats just published.
    let agent_query = provagent::prov_db::DocQuery::new().filter(
        "type",
        provagent::prov_db::Op::Eq,
        "llm_interaction",
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while db.count(&agent_query) == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let agent_tasks = db.find(&agent_query);
    println!(
        "agent self-provenance: {} LLM interactions persisted (first: {})",
        agent_tasks.len(),
        agent_tasks
            .first()
            .and_then(|v| v.get("task_id"))
            .map(|v| v.display_plain())
            .unwrap_or_default()
    );
    let _ = obj! {}; // keep the obj! import exercised for doc purposes
}
