//! Drive the agent's MCP surface the way an external MCP client would:
//! initialize, list tools/prompts/resources, and call tools via
//! JSON-RPC-shaped messages (§2.2, §4.1).
//!
//! ```text
//! cargo run --example mcp_tools
//! ```

use provagent::agent_core::{mcp_request, McpServer, ToolContext, ToolRegistry};
use provagent::prelude::*;
use provagent::prov_model::{json_to_string, obj};
use provagent::workflows::run_sweep;

fn main() {
    // Provenance context fed by the synthetic workflow.
    let hub = StreamingHub::in_memory();
    let sub = hub.subscribe_tasks();
    run_sweep(&hub, sim_clock(), 42, 10).expect("sweep runs");
    let ctx = ContextManager::default_sized();
    for m in sub.drain() {
        ctx.ingest((*m).clone());
    }

    let server = McpServer::new(
        ToolRegistry::with_builtins(),
        ToolContext {
            context: ctx,
            db: None,
            hub,
        },
        "provenance-agent",
    );

    let exchanges = [
        mcp_request(1, "initialize", Value::Null),
        mcp_request(2, "tools/list", Value::Null),
        mcp_request(3, "prompts/list", Value::Null),
        mcp_request(
            4,
            "tools/call",
            obj! {
                "name" => "in_memory_query",
                "arguments" => obj! {"code" => "df.groupby(\"activity_id\")[\"duration\"].mean()"},
            },
        ),
        mcp_request(
            5,
            "tools/call",
            obj! {"name" => "anomaly_scan", "arguments" => obj! {}},
        ),
        mcp_request(6, "resources/read", obj! {"uri" => "context://guidelines"}),
    ];

    for request in exchanges {
        println!("--> {}", json_to_string(&request));
        let response = server.handle(&request);
        let text = json_to_string(&response);
        let clipped: String = text.chars().take(400).collect();
        println!(
            "<-- {}{}\n",
            clipped,
            if text.len() > 400 { " …" } else { "" }
        );
    }
}
