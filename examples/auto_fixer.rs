//! The feedback-driven auto-fixer (§5.4 future work, implemented).
//!
//! A weak model (LLaMA 3-8B) under a thin prompt hallucinates field names
//! like `node` (§5.2). The baseline flow surfaces the error to the user;
//! with `autofix: true` the agent diagnoses the failure, repairs the
//! query, re-executes it, and generalizes the repair into a session
//! guideline so later prompts stop making the mistake.
//!
//! ```text
//! cargo run --example auto_fixer
//! ```

use provagent::prelude::*;
use provagent::prov_model::sim_clock;

fn build_context() -> (StreamingHub, std::sync::Arc<ContextManager>) {
    let hub = StreamingHub::in_memory();
    let ctx = ContextManager::default_sized();
    for i in 0..30 {
        ctx.ingest(
            TaskMessageBuilder::new(
                format!("t{i}"),
                "wf",
                if i % 2 == 0 {
                    "power"
                } else {
                    "average_results"
                },
            )
            .generates("y", i as f64)
            .span(100.0 + i as f64, 101.5 + i as f64)
            .host(format!("frontier0008{}", i % 3))
            .build(),
        );
    }
    (hub, ctx)
}

fn ask(agent: &ProvenanceAgent, question: &str) {
    let reply = agent.chat(question);
    println!("user > {question}");
    if let Some(code) = &reply.code {
        println!("query> {code}");
    }
    if let Some(err) = &reply.error {
        println!("error> {err}");
    }
    println!("agent> {}\n", reply.text);
}

fn main() {
    // The thin Baseline prompt (no schema, no guidelines) makes LLaMA 3-8B
    // hallucinate plausible-but-wrong columns — exactly §5.2's findings.
    let weak = AgentConfig {
        strategy: RagStrategy::Baseline,
        autofix: false,
        ..AgentConfig::default()
    };
    let fixed = AgentConfig {
        strategy: RagStrategy::Baseline,
        autofix: true,
        ..AgentConfig::default()
    };

    println!("=== baseline flow: the error is shown to the user (§5.4) ===\n");
    let (hub, ctx) = build_context();
    let agent = ProvenanceAgent::new(
        ctx,
        hub,
        Box::new(SimLlmServer::new(ModelId::Llama8B)),
        None,
        sim_clock(),
        weak,
    );
    ask(&agent, "How many tasks ran on each host?");

    println!("=== auto-fixer flow: diagnose, repair, learn a guideline ===\n");
    let (hub, ctx) = build_context();
    let agent = ProvenanceAgent::new(
        ctx.clone(),
        hub,
        Box::new(SimLlmServer::new(ModelId::Llama8B)),
        None,
        sim_clock(),
        fixed,
    );
    ask(&agent, "How many tasks ran on each host?");

    println!("session guidelines learned from repairs:");
    for g in ctx.guidelines.all() {
        if g.starts_with("use the field") {
            println!("  - {g}");
        }
    }
}
