//! Use Case 3 (§5.4): the additive-manufacturing (metal 3D printing)
//! workflow — the paper's third domain — monitored live by the agent
//! *without any domain-specific prompt tuning*.
//!
//! A fleet of LPBF parts is built (most nominal, some power-starved or
//! overdriven); the dynamic dataflow schema picks up the melt-pool and
//! porosity fields on its own, and the same generic agent answers
//! process-engineering questions.
//!
//! ```text
//! cargo run --example additive_manufacturing
//! ```

use provagent::prelude::*;
use provagent::workflows::{run_am_fleet, ProspectivePlan};

fn main() {
    let hub = StreamingHub::in_memory();
    let ctx = ContextManager::default_sized();
    let feeder = ContextFeeder::start(&hub, ctx.clone());
    let plan_sub = hub.subscribe_tasks();

    // Build 12 parts: part-005/010 are power-starved (lack-of-fusion risk),
    // part-007 is overdriven (keyhole risk).
    let runs = run_am_fleet(&hub, sim_clock(), 42, 12).expect("fleet builds");
    let total_tasks: usize = runs.iter().map(|r| r.run.outputs.len()).sum();
    while ctx.len() < total_tasks {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    drop(feeder);

    println!("built {} parts, {} tasks captured\n", runs.len(), ctx.len());
    for r in &runs {
        println!(
            "  {}: E = {:>6.1} J/mm3, porosity {:>5.2}%, {}",
            r.part_id,
            r.energy_density,
            r.porosity_pct,
            if r.qualified { "QUALIFIED" } else { "REJECTED" }
        );
    }
    println!();

    // The inferred dataflow schema now carries AM-specific fields.
    let schema = ctx.schema();
    println!(
        "dynamic schema: {} activities, {} fields (includes melt_pool_temp_c: {})\n",
        schema.activity_count(),
        schema.field_count(),
        ctx.columns().iter().any(|c| c == "melt_pool_temp_c"),
    );

    // Chat about the build — generic agent, zero AM-specific tuning.
    let agent = ProvenanceAgent::new(
        ctx,
        hub,
        Box::new(SimLlmServer::new(ModelId::Gpt)),
        None,
        sim_clock(),
        AgentConfig::default(),
    );
    for question in [
        "How many laser_scan tasks have finished so far?",
        "What is the average energy_density_j_mm3 of the laser_scan tasks?",
        "Which task produced the largest melt_pool_temp_c?",
        "What is the average melt_pool_width_um per activity?",
    ] {
        let reply = agent.chat(question);
        println!("user > {question}");
        if let Some(code) = &reply.code {
            println!("query> {code}");
        }
        println!("agent> {}\n", reply.text);
    }

    // Conformance: the retrospective stream matches the prospective plan.
    let msgs: Vec<TaskMessage> = plan_sub.drain().iter().map(|m| (**m).clone()).collect();
    let params = provagent::workflows::AmParams::fleet_config(0);
    let dag = provagent::workflows::build_am_dag(
        &params,
        &provagent::workflows::am::ProcessModel::new(42),
    );
    let plan = ProspectivePlan::from_dag("am", &dag);
    let one_wf: Vec<TaskMessage> = msgs
        .iter()
        .filter(|m| m.workflow_id.as_str() == "am-wf-part-000")
        .cloned()
        .collect();
    println!("{}", plan.check(&one_wf).render());
}
