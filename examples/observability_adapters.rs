//! Non-intrusive provenance capture (§2.3): no instrumentation at all —
//! observability adapters watch foreign sources (a directory of JSON task
//! files, an MLflow-like tracking feed, a foreign message queue, a
//! TensorBoard-like scalar stream, a Dask-like scheduler log) and
//! normalize what they see into the common message schema, which then
//! flows to the agent like any instrumented provenance.
//!
//! ```text
//! cargo run --example observability_adapters
//! ```

use provagent::prelude::*;
use provagent::prov_capture::{
    pump, DaskLikeAdapter, FileSystemAdapter, MlflowLikeAdapter, ObservabilityAdapter,
    QueueBridgeAdapter, TensorboardLikeAdapter,
};
use provagent::prov_model::obj;

fn main() {
    let hub = StreamingHub::in_memory();
    let sub = hub.subscribe_tasks();

    // --- adapter 1: file system -------------------------------------
    let dir = std::env::temp_dir().join(format!("prov-adapter-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for i in 0..3 {
        let msg = TaskMessageBuilder::new(format!("file-task-{i}"), "legacy-wf", "legacy_step")
            .uses("input_file", format!("data/part-{i}.nc"))
            .generates("rows_written", 1000 + i as i64)
            .span(100.0 + i as f64, 101.0 + i as f64)
            .build();
        std::fs::write(dir.join(format!("task{i}.json")), msg.to_json()).expect("write");
    }
    let mut fs_adapter = FileSystemAdapter::new(&dir);

    // --- adapter 2: MLflow-like experiment tracker -------------------
    let mut mlflow = MlflowLikeAdapter::new(
        "hpo-experiment",
        (0..3)
            .map(|i| {
                obj! {
                    "run_id" => format!("run-{i}"),
                    "params" => obj! {"lr" => 0.001 * (i + 1) as f64, "epochs" => 10},
                    "metrics" => obj! {"loss" => 0.5 / (i + 1) as f64, "accuracy" => 0.90 + 0.02 * i as f64},
                    "start_time" => 200.0 + i as f64,
                    "end_time" => 260.0 + i as f64,
                }
            })
            .collect(),
    );

    // --- adapter 3: bridge from a foreign queue ----------------------
    let foreign = StreamingHub::in_memory();
    let mut bridge = QueueBridgeAdapter::new(foreign.subscribe("app.events"));
    foreign
        .publish(
            "app.events",
            TaskMessageBuilder::new("queue-task-0", "service-wf", "ingest_event")
                .generates("events", 42)
                .build(),
        )
        .unwrap();

    // --- adapter 4: TensorBoard-like scalar events --------------------
    let mut tb = TensorboardLikeAdapter::new("train-run");
    for step in 0..4i64 {
        tb.add_scalar(
            step,
            "loss/train",
            1.0 / (step + 1) as f64,
            300.0 + step as f64,
        );
        tb.add_scalar(step, "lr", 0.001, 300.0 + step as f64);
    }

    // --- adapter 5: Dask-like scheduler transitions --------------------
    let mut dask = DaskLikeAdapter::new("dask-sched");
    dask.transition("aggregate_chunks-9f3e", "processing", 400.0);
    dask.transition("aggregate_chunks-9f3e", "memory", 404.5);

    // Pump all five into the provenance hub.
    let adapters: Vec<&mut dyn ObservabilityAdapter> = vec![
        &mut fs_adapter,
        &mut mlflow,
        &mut bridge,
        &mut tb,
        &mut dask,
    ];
    for adapter in adapters {
        let n = pump(adapter, &hub);
        println!("adapter {:<12} observed {n} task(s)", adapter.name());
    }

    // The agent sees everything uniformly.
    let ctx = ContextManager::default_sized();
    for m in sub.drain() {
        ctx.ingest((*m).clone());
    }
    println!(
        "\ncontext: {} rows from {} distinct activities\n",
        ctx.len(),
        ctx.schema().activity_count()
    );

    let agent = ProvenanceAgent::new(
        ctx,
        hub,
        Box::new(SimLlmServer::new(ModelId::Gpt)),
        None,
        sim_clock(),
        AgentConfig::default(),
    );
    for question in [
        "List the distinct activities executed so far.",
        "What is the average accuracy of the mlflow_run tasks?",
    ] {
        let reply = agent.chat(question);
        println!("user > {question}");
        if let Some(code) = &reply.code {
            println!("query> {code}");
        }
        println!("agent> {}\n", reply.text);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
