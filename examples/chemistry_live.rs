//! §5.3 live interaction: run the BDE chemistry workflow for ethanol on
//! the simulated Frontier substrate, then put the paper's ten questions to
//! a GPT-4-backed provenance agent.
//!
//! ```text
//! cargo run --example chemistry_live
//! ```

use provagent::eval::{render_demo, run_chem_demo};
use provagent::prelude::*;
use provagent::workflows::run_bde_workflow;

fn main() {
    // First show the workflow itself: ethanol, two conformers.
    let hub = StreamingHub::in_memory();
    let run = run_bde_workflow(&hub, sim_clock(), 7, "CCO", 2).expect("workflow runs");
    println!(
        "BDE workflow for {} ({} atoms, {} tasks emitted):",
        run.smiles,
        run.parent.atom_count(),
        run.tasks
    );
    for record in &run.records {
        println!(
            "  {:<7} ΔE = {:6.2}  ΔH = {:6.2}  ΔG = {:6.2} kcal/mol",
            record.bond_id, record.bd_energy, record.bd_enthalpy, record.bd_free_energy
        );
    }
    println!(
        "\nHighest ΔG bond: {} (Q1 ground truth)\n",
        run.highest_free_energy().unwrap().bond_id
    );

    // Then the live agent interaction, checked against the paper's report.
    let observations = run_chem_demo(7);
    println!("{}", render_demo(&observations));

    // Show one chart the way the GUI would (Q7).
    if let Some(chart) = observations.iter().find_map(|o| o.chart.as_ref()) {
        println!("{chart}");
    }
}
