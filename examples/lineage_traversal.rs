//! Multi-hop lineage over the persistent PROV graph (§5.4's "deep graph
//! traversals over persistent provenance databases").
//!
//! The chemistry workflow streams to the hub; a Provenance Keeper persists
//! every message into the provenance database, building the W3C-PROV
//! property graph as it goes. The agent then answers causal questions —
//! upstream lineage, downstream impact, dependency paths — with rule-based
//! graph traversals (no LLM call, no DataFrame).
//!
//! ```text
//! cargo run --example lineage_traversal
//! ```

use provagent::prelude::*;
use provagent::prov_keeper::{start, KeeperConfig};
use provagent::workflows::run_bde_workflow;
use std::time::Duration;

fn main() {
    // Stream the BDE workflow through a keeper into the database.
    let hub = StreamingHub::in_memory();
    let db = ProvenanceDatabase::shared();
    let keeper = start(&hub, db.clone(), KeeperConfig::default());
    let bde = run_bde_workflow(&hub, sim_clock(), 42, "CCO", 3).expect("ethanol runs");
    keeper.wait_for(bde.tasks as u64, Duration::from_secs(5));
    keeper.stop();
    println!(
        "persisted {} tasks; PROV graph: {} nodes, {} edges\n",
        db.documents().len(),
        db.graph().node_count(),
        db.graph().edge_count()
    );

    // Pick a leaf (a BDE postprocess task) and the root conformer task.
    let leaf = bde
        .run
        .task_ids
        .iter()
        .find(|(name, _)| name.starts_with("postprocess"))
        .map(|(_, id)| id.clone())
        .expect("postprocess task");
    let root = bde
        .run
        .task_ids
        .iter()
        .find(|(name, _)| name.starts_with("generate_conformer"))
        .map(|(_, id)| id.clone())
        .expect("conformer task");

    let agent = ProvenanceAgent::new(
        ContextManager::default_sized(),
        hub,
        Box::new(SimLlmServer::new(ModelId::Gpt)),
        Some(db),
        sim_clock(),
        AgentConfig::default(),
    );

    for question in [
        format!("Trace the lineage of task {leaf}"),
        format!("What is the downstream impact of task {root}?"),
        format!("Is there a dependency path between {root} and {leaf}?"),
    ] {
        let reply = agent.chat(&question);
        println!("user > {question}");
        println!("agent> {}", reply.text);
        assert_eq!(reply.tokens, 0, "graph traversal is LLM-free");
    }
}
