//! Parser error-path coverage (malformed stage names, unclosed strings,
//! truncated method calls) and a `parse(render(q)) == q` property over a
//! generator that exercises every stage variant — a wider net than the
//! workspace-level round-trip property, which draws from a smaller stage
//! pool.

use dataframe::{col, lit, AggFunc, CmpOp, Expr};
use proptest::prelude::*;
use prov_model::Value;
use provql::{parse, render, Query, Stage};

// ---------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------

#[test]
fn malformed_stage_names_are_rejected_with_context() {
    for (text, needle) in [
        ("df.frobnicate()", "unsupported method"),
        ("df.explode()", "unsupported method"),
        (r#"df.groupby("a").pivot()"#, "unsupported method"),
        (r#"df[df["a"].str.upper()]"#, "unsupported str method"),
        (r#"df.agg({"x": "frobnicate"})"#, "unknown aggregation"),
        ("df.shape[1]", "only .shape[0]"),
        (r#"df.loc[df["a"].median()]"#, "idxmax or idxmin"),
    ] {
        let err = parse(text).expect_err(text).to_string();
        assert!(err.contains(needle), "{text}: `{err}` lacks `{needle}`");
    }
}

#[test]
fn unclosed_strings_are_lex_errors() {
    for text in [
        r#"df["abc"#,
        r#"df[df["a"] == "x]"#,
        r#"df.groupby("k"#,
        r#"df['mixed"]"#,
    ] {
        let err = parse(text).expect_err(text).to_string();
        assert!(
            err.contains("unterminated") || err.contains("expected"),
            "{text}: unexpected message `{err}`"
        );
    }
}

#[test]
fn truncated_and_trailing_input_is_rejected() {
    for text in [
        "df.",
        "df[",
        "df[[",
        r#"df[["a","#,
        "df.head(",
        "df.sort_values()",
        r#"df.loc["#,
        "len(df",
        "len(df))",
        "df df",
        "3 +",
        "",
        "   ",
        r#"df[df["a"] =="#,
        r#"df[df["a"]]"#, // bare column reference is not a boolean filter
    ] {
        assert!(parse(text).is_err(), "{text:?} should not parse");
    }
}

#[test]
fn error_positions_point_into_the_token_stream() {
    let err = parse(r#"df[df["a"] == ] "#).expect_err("incomplete comparison");
    // The missing literal is deep in the stream, not reported at token 0.
    assert!(err.token_index >= 7, "index {} too early", err.token_index);
    assert!(err.to_string().contains("expected literal"), "{err}");
    let err = parse("df.nlargest(, \"x\")").expect_err("missing count");
    assert!(err.to_string().contains("expected integer"), "{err}");
}

// ---------------------------------------------------------------------
// parse(render(q)) == q over generated pipelines
// ---------------------------------------------------------------------

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,10}".prop_map(|s| s.to_string())
}

fn arb_literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|i| Value::Float(i as f64 / 8.0)),
        "[A-Za-z0-9_. -]{0,12}".prop_map(Value::from),
        Just(Value::Bool(true)),
        Just(Value::Bool(false)),
        Just(Value::Null),
    ]
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// One comparison-level predicate (the unit the boolean grammar composes).
fn arb_predicate() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (arb_name(), arb_cmp_op(), arb_literal()).prop_map(|(c, op, v)| Expr::Cmp(
            Box::new(col(c)),
            op,
            Box::new(lit(v))
        )),
        // Arithmetic operand on the left: df["a"] * 2 > 3.
        (arb_name(), -100i64..100, arb_cmp_op(), arb_literal()).prop_map(|(c, k, op, v)| {
            Expr::Cmp(Box::new(col(c).mul(lit(k))), op, Box::new(lit(v)))
        }),
        (arb_name(), "[A-Za-z0-9_-]{1,8}").prop_map(|(c, p)| col(c).contains(p)),
        (arb_name(), "[A-Za-z0-9_-]{1,8}").prop_map(|(c, p)| col(c).icontains(p)),
        (arb_name(), "[A-Za-z0-9_-]{1,8}").prop_map(|(c, p)| col(c).starts_with(p)),
        (arb_name(), prop::collection::vec(arb_literal(), 1..4))
            .prop_map(|(c, vs)| col(c).isin(vs)),
        arb_name().prop_map(|c| col(c).is_null()),
        arb_name().prop_map(|c| col(c).not_null()),
        // Negation binds one predicate: ~(a == b).
        (arb_name(), arb_literal()).prop_map(|(c, v)| col(c).eq(lit(v)).negate()),
    ]
}

/// Filters in the canonical left-associated or-of-ands shape the renderer
/// emits (the grammar has no parentheses-preserving AST, so only this
/// shape round-trips — which is also the only shape `parse` produces).
fn arb_filter_expr() -> impl Strategy<Value = Expr> {
    prop::collection::vec(prop::collection::vec(arb_predicate(), 1..3), 1..3).prop_map(|groups| {
        groups
            .into_iter()
            .map(|g| g.into_iter().reduce(Expr::and).expect("non-empty"))
            .reduce(Expr::or)
            .expect("non-empty")
    })
}

fn arb_agg() -> impl Strategy<Value = AggFunc> {
    prop_oneof![
        Just(AggFunc::Mean),
        Just(AggFunc::Sum),
        Just(AggFunc::Min),
        Just(AggFunc::Max),
        Just(AggFunc::Count),
        Just(AggFunc::Std),
        Just(AggFunc::Median),
    ]
}

fn arb_stage() -> impl Strategy<Value = Stage> {
    prop_oneof![
        arb_filter_expr().prop_map(Stage::Filter),
        prop::collection::vec(arb_name(), 1..4).prop_map(Stage::Select),
        arb_name().prop_map(Stage::Col),
        prop::collection::vec(arb_name(), 1..3).prop_map(Stage::GroupBy),
        arb_agg().prop_map(Stage::Agg),
        prop::collection::vec((arb_name(), arb_agg()), 1..3).prop_map(Stage::AggMap),
        Just(Stage::Size),
        prop::collection::vec((arb_name(), any::<bool>()), 1..3).prop_map(Stage::SortValues),
        (1usize..50).prop_map(Stage::Head),
        (1usize..50).prop_map(Stage::Tail),
        Just(Stage::Unique),
        Just(Stage::ValueCounts),
        (1usize..10, arb_name()).prop_map(|(n, c)| Stage::NLargest(n, c)),
        (1usize..10, arb_name()).prop_map(|(n, c)| Stage::NSmallest(n, c)),
        prop::collection::vec(arb_name(), 0..3).prop_map(Stage::DropDuplicates),
        Just(Stage::Describe),
        (arb_name(), any::<bool>()).prop_map(|(column, max)| Stage::LocIdx {
            column,
            max,
            cell: None
        }),
        (arb_name(), any::<bool>(), arb_name()).prop_map(|(column, max, cell)| Stage::LocIdx {
            column,
            max,
            cell: Some(cell)
        }),
        any::<bool>().prop_map(|max| Stage::Idx { max }),
        Just(Stage::ResetIndex),
        (0usize..6).prop_map(Stage::Round),
        Just(Stage::Count),
    ]
}

fn arb_pipeline_query() -> impl Strategy<Value = Query> {
    prop::collection::vec(arb_stage(), 0..5).prop_map(Query::pipeline)
}

/// Full query shapes: pipelines, len-wrapping, and left-associated scalar
/// arithmetic chains between pipelines and numbers.
fn arb_query() -> impl Strategy<Value = Query> {
    let leaf = prop_oneof![
        arb_pipeline_query(),
        arb_pipeline_query().prop_map(|q| Query::Len(Box::new(q))),
        (0i64..1000).prop_map(|n| Query::Number(n as f64)),
    ];
    prop::collection::vec((leaf, 0usize..4), 1..3).prop_map(|terms| {
        let mut terms = terms.into_iter();
        let (first, _) = terms.next().expect("non-empty");
        terms.fold(first, |acc, (rhs, op)| {
            let op = match op {
                0 => dataframe::ArithOp::Add,
                1 => dataframe::ArithOp::Sub,
                2 => dataframe::ArithOp::Mul,
                _ => dataframe::ArithOp::Div,
            };
            Query::Binary(Box::new(acc), op, Box::new(rhs))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_render_roundtrip(q in arb_query()) {
        let text = render(&q);
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed for `{text}`: {e}"));
        prop_assert_eq!(back, q);
    }
}
