//! # provql
//!
//! A pandas-style query language over [`dataframe`] frames: the concrete
//! form of the paper's "structured query" LLM output (§3).
//!
//! * [`ast`] — pipelines of stages (`filter → groupby → agg → sort → head`);
//! * [`parser`] — parses the pandas syntax the (simulated) LLMs emit;
//! * [`render`] — canonical pretty-printer (`parse ∘ render = id`);
//! * [`exec`] — executes queries against a DataFrame;
//! * [`plan`] — logical query plans with index-aware filter/projection
//!   pushdown, interpreted by store-side executors (`prov_db::exec`);
//! * [`compare`] — semantic similarity scoring used by judges.
//!
//! ```
//! use provql::{parse, execute};
//! use dataframe::DataFrame;
//! use prov_model::Value;
//!
//! let df = DataFrame::from_columns(vec![
//!     ("bond_id", vec![Value::from("C-H_1"), Value::from("O-H_1")]),
//!     ("bd_energy", vec![Value::Float(98.6), Value::Float(104.8)]),
//! ]).unwrap();
//! let q = parse(r#"df.loc[df["bd_energy"].idxmax(), "bond_id"]"#).unwrap();
//! let out = execute(&q, &df).unwrap();
//! assert_eq!(out.as_scalar().unwrap().as_str(), Some("O-H_1"));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod compare;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod render;
pub mod token;

pub use ast::{GraphQuery, Pipeline, Query, Stage};
pub use compare::{compare, Comparison, ResultShape};
pub use exec::{arith_scalars, execute, execute_stages, scalar_operand, ExecError, QueryOutput};
pub use parser::{parse, ParseError};
pub use plan::{
    plan, GraphPlan, PipelinePlan, PlanNode, PushOp, PushdownCapability, PushedFilter, QueryPlan,
    ScanNode,
};
pub use render::render;
