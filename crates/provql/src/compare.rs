//! Semantic comparison of queries — the mechanical core of both rule-based
//! evaluation and LLM-as-a-judge scoring (§3, §5.2).
//!
//! The paper's judge prompt "emphasizes functional equivalence over
//! syntactic similarity". We normalize both queries (flatten conjunctions,
//! canonicalize flipped comparisons, desugar `nlargest` into sort+head) and
//! score five weighted facets: result shape, filters, grouping,
//! aggregations, and ordering/limits — plus a penalty for referencing
//! columns that do not exist in the schema (hallucinated fields).

use crate::ast::{Pipeline, Query, Stage};
use dataframe::{AggFunc, Expr};

/// Outcome of comparing a generated query against a gold query.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Similarity in `[0, 1]`.
    pub score: f64,
    /// Human-readable discrepancy notes (judge "feedback").
    pub notes: Vec<String>,
}

/// Facet weights. Must sum to 1.
const W_SHAPE: f64 = 0.20;
const W_FILTER: f64 = 0.30;
const W_GROUP: f64 = 0.15;
const W_AGG: f64 = 0.20;
const W_ORDER: f64 = 0.15;

/// Compare a generated query against the gold query.
///
/// `schema_columns`, when provided, is the set of real columns; referencing
/// unknown columns (hallucinations) multiplies the final score by 0.5 per
/// offending column (floor 0.05), mirroring how judges slash scores for
/// invalid column references.
pub fn compare(generated: &Query, gold: &Query, schema_columns: Option<&[String]>) -> Comparison {
    let mut notes = Vec::new();

    let gen_sum = Summary::of(generated);
    let gold_sum = Summary::of(gold);

    let shape = if gen_sum.shape == gold_sum.shape {
        1.0
    } else {
        notes.push(format!(
            "result shape differs: generated {} vs expected {}",
            gen_sum.shape.name(),
            gold_sum.shape.name()
        ));
        // Scalar vs row-of-one is a soft mismatch; table vs scalar is hard.
        if gen_sum.shape.is_close(gold_sum.shape) {
            0.6
        } else {
            0.0
        }
    };

    let filter = set_similarity(
        &gen_sum.filter_conjuncts,
        &gold_sum.filter_conjuncts,
        "filter",
        &mut notes,
    );
    let group = set_similarity(
        &gen_sum.group_keys,
        &gold_sum.group_keys,
        "group",
        &mut notes,
    );
    let agg = agg_similarity(&gen_sum.aggs, &gold_sum.aggs, &mut notes);
    let order = order_similarity(&gen_sum, &gold_sum, &mut notes);

    let mut score =
        W_SHAPE * shape + W_FILTER * filter + W_GROUP * group + W_AGG * agg + W_ORDER * order;

    if let Some(schema) = schema_columns {
        let hallucinated: Vec<String> = generated
            .referenced_columns()
            .into_iter()
            .filter(|c| !schema.iter().any(|s| s == c))
            .collect();
        for c in &hallucinated {
            notes.push(format!("references non-existent column '{c}'"));
        }
        if !hallucinated.is_empty() {
            score *= 0.5f64.powi(hallucinated.len().min(3) as i32);
        }
    }

    Comparison {
        score: score.clamp(0.0, 1.0),
        notes,
    }
}

/// Shape of a query's result, inferred statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultShape {
    /// A table of rows.
    Table,
    /// A single column.
    Series,
    /// One scalar value.
    Scalar,
    /// One row.
    Row,
}

impl ResultShape {
    fn name(self) -> &'static str {
        match self {
            ResultShape::Table => "table",
            ResultShape::Series => "series",
            ResultShape::Scalar => "scalar",
            ResultShape::Row => "row",
        }
    }

    fn is_close(self, other: ResultShape) -> bool {
        use ResultShape::*;
        matches!(
            (self, other),
            (Scalar, Row)
                | (Row, Scalar)
                | (Series, Table)
                | (Table, Series)
                | (Row, Table)
                | (Table, Row)
        )
    }
}

/// Normalized summary of a query used for facet scoring.
#[derive(Debug, Clone)]
struct Summary {
    shape: ResultShape,
    /// Canonical strings of filter conjuncts (top-level AND split).
    filter_conjuncts: Vec<String>,
    group_keys: Vec<String>,
    /// `(column or "" for series-agg, func)` pairs.
    aggs: Vec<(String, AggFunc)>,
    sort_keys: Vec<(String, bool)>,
    limit: Option<(usize, bool)>, // (n, from_head)
    counts: bool,
}

impl Summary {
    fn of(query: &Query) -> Summary {
        match query {
            Query::Pipeline(p) => Summary::of_pipeline(p, false),
            Query::Len(q) => {
                let mut s = Summary::of(q);
                s.shape = ResultShape::Scalar;
                s.counts = true;
                s
            }
            Query::Binary(a, _, b) => {
                // Merge both sides; result is a scalar.
                let sa = Summary::of(a);
                let sb = Summary::of(b);
                let mut merged = sa;
                for c in sb.filter_conjuncts {
                    if !merged.filter_conjuncts.contains(&c) {
                        merged.filter_conjuncts.push(c);
                    }
                }
                for a in sb.aggs {
                    if !merged.aggs.contains(&a) {
                        merged.aggs.push(a);
                    }
                }
                merged.shape = ResultShape::Scalar;
                merged
            }
            Query::Number(_) => Summary {
                shape: ResultShape::Scalar,
                filter_conjuncts: Vec::new(),
                group_keys: Vec::new(),
                aggs: Vec::new(),
                sort_keys: Vec::new(),
                limit: None,
                counts: false,
            },
            // A path primitive scores like a table selected by its own
            // canonical text: two graph queries are similar exactly when
            // primitive, node ids, and depth coincide.
            Query::Graph(g) => Summary {
                shape: match g {
                    crate::ast::GraphQuery::Paths { .. } => ResultShape::Series,
                    _ => ResultShape::Table,
                },
                filter_conjuncts: vec![crate::render::render(&Query::Graph(g.clone()))],
                group_keys: Vec::new(),
                aggs: Vec::new(),
                sort_keys: Vec::new(),
                limit: None,
                counts: false,
            },
        }
    }

    fn of_pipeline(p: &Pipeline, inside_len: bool) -> Summary {
        let mut shape = ResultShape::Table;
        let mut filter_conjuncts = Vec::new();
        let mut group_keys = Vec::new();
        let mut aggs: Vec<(String, AggFunc)> = Vec::new();
        let mut sort_keys: Vec<(String, bool)> = Vec::new();
        let mut limit = None;
        let mut counts = inside_len;
        let mut series_col: Option<String> = None;
        let mut grouped = false;

        for stage in &p.stages {
            match stage {
                Stage::Filter(e) => {
                    for c in conjuncts(e) {
                        let canon = canonical_expr(&c);
                        if !filter_conjuncts.contains(&canon) {
                            filter_conjuncts.push(canon);
                        }
                    }
                }
                Stage::Select(_) => {}
                Stage::Col(c) => {
                    if grouped {
                        series_col = Some(c.clone());
                    } else {
                        series_col = Some(c.clone());
                        shape = ResultShape::Series;
                    }
                }
                Stage::GroupBy(keys) => {
                    grouped = true;
                    for k in keys {
                        if !group_keys.contains(k) {
                            group_keys.push(k.clone());
                        }
                    }
                }
                Stage::Agg(f) => {
                    let col = series_col.clone().unwrap_or_default();
                    aggs.push((col, *f));
                    shape = if grouped {
                        ResultShape::Table
                    } else {
                        ResultShape::Scalar
                    };
                }
                Stage::AggMap(specs) => {
                    for (c, f) in specs {
                        aggs.push((c.clone(), *f));
                    }
                    shape = ResultShape::Table;
                }
                Stage::Size => {
                    aggs.push((String::new(), AggFunc::Size));
                    shape = ResultShape::Table;
                    counts = true;
                }
                Stage::SortValues(keys) => {
                    sort_keys = keys.clone();
                }
                Stage::Head(n) => limit = Some((*n, true)),
                Stage::Tail(n) => limit = Some((*n, false)),
                Stage::Unique => {
                    aggs.push((series_col.clone().unwrap_or_default(), AggFunc::Nunique));
                    shape = ResultShape::Series;
                }
                Stage::ValueCounts => {
                    aggs.push((series_col.clone().unwrap_or_default(), AggFunc::Count));
                    // value_counts sorts descending by count.
                    sort_keys = vec![("count".to_string(), false)];
                    shape = ResultShape::Table;
                    counts = true;
                }
                // nlargest(n, c) ≡ sort_values(c, ascending=False).head(n)
                Stage::NLargest(n, c) => {
                    sort_keys = vec![(c.clone(), false)];
                    limit = Some((*n, true));
                }
                Stage::NSmallest(n, c) => {
                    sort_keys = vec![(c.clone(), true)];
                    limit = Some((*n, true));
                }
                Stage::DropDuplicates(_) => {}
                Stage::Describe => shape = ResultShape::Table,
                // loc[idxmax(c)] ≡ sort desc by c, take 1 row
                Stage::LocIdx { column, max, cell } => {
                    sort_keys = vec![(column.clone(), !*max)];
                    limit = Some((1, true));
                    shape = if cell.is_some() {
                        ResultShape::Scalar
                    } else {
                        ResultShape::Row
                    };
                }
                Stage::Idx { max } => {
                    sort_keys = vec![(series_col.clone().unwrap_or_default(), !*max)];
                    limit = Some((1, true));
                    shape = ResultShape::Scalar;
                }
                Stage::ResetIndex | Stage::Round(_) => {}
                Stage::Count => {
                    shape = ResultShape::Scalar;
                    counts = true;
                }
            }
        }
        Summary {
            shape,
            filter_conjuncts,
            group_keys,
            aggs,
            sort_keys,
            limit,
            counts,
        }
    }
}

/// Split a boolean expression into top-level AND conjuncts.
fn conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::And(a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// Canonical text of one conjunct: flipped comparisons normalized so the
/// column appears on the left; floats printed with fixed precision.
fn canonical_expr(e: &Expr) -> String {
    let norm = normalize(e);
    let mut out = String::new();
    crate::render::render_expr(&mut out, &norm, false);
    out
}

fn normalize(e: &Expr) -> Expr {
    match e {
        // Integer and float literals of equal value must canonicalize
        // identically (`> 5` ≡ `> 5.0`).
        Expr::Lit(prov_model::Value::Int(i)) => Expr::Lit(prov_model::Value::Float(*i as f64)),
        Expr::Cmp(a, op, b) => {
            let (a, b) = (normalize(a), normalize(b));
            // Put the column on the left when the literal leads.
            if matches!(a, Expr::Lit(_)) && !matches!(b, Expr::Lit(_)) {
                Expr::Cmp(Box::new(b), op.flipped(), Box::new(a))
            } else {
                Expr::Cmp(Box::new(a), *op, Box::new(b))
            }
        }
        Expr::And(a, b) => normalize(a).and(normalize(b)),
        Expr::Or(a, b) => {
            // Order OR branches canonically for set comparison.
            let (na, nb) = (normalize(a), normalize(b));
            let (sa, sb) = (expr_text(&na), expr_text(&nb));
            if sa <= sb {
                na.or(nb)
            } else {
                nb.or(na)
            }
        }
        Expr::Not(a) => normalize(a).negate(),
        other => other.clone(),
    }
}

fn expr_text(e: &Expr) -> String {
    let mut s = String::new();
    crate::render::render_expr(&mut s, e, false);
    s
}

fn set_similarity(gen: &[String], gold: &[String], facet: &str, notes: &mut Vec<String>) -> f64 {
    if gen.is_empty() && gold.is_empty() {
        return 1.0;
    }
    let inter = gold.iter().filter(|g| gen.contains(g)).count();
    let union = gold.len() + gen.len() - inter;
    let score = if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    };
    if score < 1.0 {
        for missing in gold.iter().filter(|g| !gen.contains(g)) {
            notes.push(format!("missing {facet}: {missing}"));
        }
        for extra in gen.iter().filter(|g| !gold.contains(g)) {
            notes.push(format!("spurious {facet}: {extra}"));
        }
    }
    score
}

fn agg_similarity(
    gen: &[(String, AggFunc)],
    gold: &[(String, AggFunc)],
    notes: &mut Vec<String>,
) -> f64 {
    if gen.is_empty() && gold.is_empty() {
        return 1.0;
    }
    if gold.is_empty() || gen.is_empty() {
        notes.push("aggregation presence differs".to_string());
        return 0.0;
    }
    let mut total = 0.0;
    for (gc, gf) in gold {
        // Best match among generated aggs.
        let best = gen
            .iter()
            .map(|(c, f)| {
                let col_ok = c == gc;
                let fn_ok = f.equivalent(*gf);
                match (col_ok, fn_ok) {
                    (true, true) => 1.0,
                    (true, false) => 0.4, // right column, wrong statistic
                    (false, true) => 0.3, // right statistic, wrong column
                    (false, false) => 0.0,
                }
            })
            .fold(0.0f64, f64::max);
        if best < 1.0 {
            notes.push(format!(
                "aggregation mismatch: expected {}({})",
                gf.name(),
                if gc.is_empty() { "<series>" } else { gc }
            ));
        }
        total += best;
    }
    // Penalize spurious extra aggregations mildly.
    let extra = gen.len().saturating_sub(gold.len());
    (total / gold.len() as f64 - 0.1 * extra as f64).clamp(0.0, 1.0)
}

fn order_similarity(gen: &Summary, gold: &Summary, notes: &mut Vec<String>) -> f64 {
    let mut score: f64 = 1.0;
    if gen.sort_keys != gold.sort_keys {
        // Same keys but different direction is a classic near-miss
        // (`.min()` on IDs instead of timestamps class of error).
        let same_cols = gen.sort_keys.iter().map(|(c, _)| c).collect::<Vec<_>>()
            == gold.sort_keys.iter().map(|(c, _)| c).collect::<Vec<_>>();
        score = if same_cols && !gold.sort_keys.is_empty() {
            notes.push("sort direction differs".to_string());
            0.5
        } else if gold.sort_keys.is_empty() {
            notes.push("spurious sort".to_string());
            0.7
        } else {
            notes.push("sort keys differ".to_string());
            0.0
        };
    }
    if gen.limit != gold.limit {
        notes.push(format!(
            "row limit differs: {:?} vs {:?}",
            gen.limit, gold.limit
        ));
        score *= match (gen.limit, gold.limit) {
            (Some((a, _)), Some((b, _))) if a == b => 0.8, // head vs tail
            (Some(_), Some(_)) => 0.5,
            _ => 0.4,
        };
    }
    if gen.counts != gold.counts {
        notes.push("count semantics differ".to_string());
        score *= 0.6;
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cmp(gen: &str, gold: &str) -> f64 {
        compare(&parse(gen).unwrap(), &parse(gold).unwrap(), None).score
    }

    fn cmp_schema(gen: &str, gold: &str, schema: &[&str]) -> f64 {
        let cols: Vec<String> = schema.iter().map(|s| s.to_string()).collect();
        compare(&parse(gen).unwrap(), &parse(gold).unwrap(), Some(&cols)).score
    }

    #[test]
    fn identical_queries_score_one() {
        let q = r#"df[df["cpu"] > 50].groupby("host")["dur"].mean()"#;
        assert!((cmp(q, q) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn syntactic_variants_are_equivalent() {
        // Flipped comparison.
        assert!(cmp(r#"df[50 < df["cpu"]]"#, r#"df[df["cpu"] > 50]"#) > 0.99);
        // Conjunct order.
        assert!(
            cmp(
                r#"df[(df["a"] > 1) & (df["b"] == "x")]"#,
                r#"df[(df["b"] == "x") & (df["a"] > 1)]"#
            ) > 0.99
        );
        // nlargest vs sort+head.
        assert!(
            cmp(
                r#"df.nlargest(3, "duration")"#,
                r#"df.sort_values("duration", ascending=False).head(3)"#
            ) > 0.99
        );
    }

    #[test]
    fn wrong_aggregation_penalized() {
        let s = cmp(
            r#"df.groupby("bond")["bde"].median()"#,
            r#"df.groupby("bond")["bde"].mean()"#,
        );
        assert!(s < 0.95, "got {s}");
        assert!(s > 0.5, "still mostly right: {s}");
    }

    #[test]
    fn wrong_filter_penalized() {
        let s = cmp(
            r#"df[df["status"] == "RUNNING"]"#,
            r#"df[df["status"] == "ERROR"]"#,
        );
        assert!(s < 0.85, "got {s}");
    }

    #[test]
    fn missing_groupby_penalized() {
        let s = cmp(r#"df["bde"].mean()"#, r#"df.groupby("bond")["bde"].mean()"#);
        assert!(s < 0.8, "got {s}");
    }

    #[test]
    fn hallucinated_column_halves_score() {
        let schema = ["cpu", "host", "dur"];
        let good = cmp_schema(r#"df[df["cpu"] > 1]"#, r#"df[df["cpu"] > 1]"#, &schema);
        let bad = cmp_schema(r#"df[df["node"] > 1]"#, r#"df[df["cpu"] > 1]"#, &schema);
        assert!(good > 0.99);
        assert!(bad < good * 0.55, "bad={bad} good={good}");
    }

    #[test]
    fn sort_direction_near_miss() {
        let s = cmp(
            r#"df.sort_values("t").head(1)"#,
            r#"df.sort_values("t", ascending=False).head(1)"#,
        );
        assert!(s > 0.5 && s < 0.99, "got {s}");
    }

    #[test]
    fn loc_idxmax_equivalent_to_sort_head1() {
        let s = cmp(
            r#"df.loc[df["e"].idxmax()]"#,
            r#"df.sort_values("e", ascending=False).head(1)"#,
        );
        // Same retrieval intent; row vs table shape costs only the soft gap.
        assert!(s > 0.8, "got {s}");
    }

    #[test]
    fn len_vs_shape0_equivalent() {
        let s = cmp(
            r#"len(df[df["status"] == "ERROR"])"#,
            r#"df[df["status"] == "ERROR"].shape[0]"#,
        );
        assert!(s > 0.99, "got {s}");
    }

    #[test]
    fn completely_different_queries_score_low() {
        let s = cmp(
            r#"df["hostname"].unique()"#,
            r#"df[df["cpu"] > 90].groupby("host")["dur"].mean()"#,
        );
        assert!(s < 0.45, "got {s}");
    }

    #[test]
    fn notes_describe_discrepancies() {
        let c = compare(
            &parse(r#"df[df["a"] > 1]"#).unwrap(),
            &parse(r#"df[df["b"] > 1]"#).unwrap(),
            None,
        );
        assert!(c.notes.iter().any(|n| n.contains("missing filter")));
        assert!(c.notes.iter().any(|n| n.contains("spurious filter")));
    }
}
