//! Abstract syntax of the pandas-style query subset the agent speaks.
//!
//! A query is a pipeline of stages applied to the in-memory DataFrame `df`,
//! optionally combined with other queries through scalar arithmetic
//! (`df["a"].max() - df["a"].min()`) or wrapped in `len(...)`.

use dataframe::{AggFunc, ArithOp, Expr};

/// One stage of a query pipeline, in application order.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// `df[<boolean expr>]` — row filter.
    Filter(Expr),
    /// `df[["a", "b"]]` — column projection.
    Select(Vec<String>),
    /// `df["a"]` — switch to series mode on one column.
    Col(String),
    /// `.groupby("k")` / `.groupby(["k1", "k2"])`.
    GroupBy(Vec<String>),
    /// Terminal aggregation call: `.mean()`, `.count()`, ... Applies to the
    /// current series, the group-by selection, or frame-wide.
    Agg(AggFunc),
    /// `.agg({"col": "func", ...})` after a group-by.
    AggMap(Vec<(String, AggFunc)>),
    /// `.size()` after a group-by.
    Size,
    /// `.sort_values("k")` / `.sort_values(["a","b"], ascending=False)`.
    SortValues(Vec<(String, bool)>),
    /// `.head(n)`.
    Head(usize),
    /// `.tail(n)`.
    Tail(usize),
    /// `.unique()` on a series.
    Unique,
    /// `.value_counts()` on a series.
    ValueCounts,
    /// `.nlargest(n, "col")`.
    NLargest(usize, String),
    /// `.nsmallest(n, "col")`.
    NSmallest(usize, String),
    /// `.drop_duplicates()` / `.drop_duplicates(subset=["a"])`.
    DropDuplicates(Vec<String>),
    /// `.describe()`.
    Describe,
    /// `df.loc[df["col"].idxmax()]` (or idxmin); optionally selecting one
    /// cell: `df.loc[df["col"].idxmax(), "other"]`.
    LocIdx {
        /// Column whose extreme row is located.
        column: String,
        /// True for `idxmax`, false for `idxmin`.
        max: bool,
        /// Optional cell column.
        cell: Option<String>,
    },
    /// Standalone `.idxmax()` / `.idxmin()` on a series, returning the row
    /// index as a scalar.
    Idx {
        /// True for `idxmax`.
        max: bool,
    },
    /// `.reset_index()` — accepted and ignored (index-free engine).
    ResetIndex,
    /// `.round(n)` — rounds float outputs.
    Round(usize),
    /// `.shape[0]` or surrounding `len(...)` — row count.
    Count,
}

impl Stage {
    /// Short tag used in comparison diagnostics.
    pub fn tag(&self) -> &'static str {
        match self {
            Stage::Filter(_) => "filter",
            Stage::Select(_) => "select",
            Stage::Col(_) => "col",
            Stage::GroupBy(_) => "groupby",
            Stage::Agg(_) => "agg",
            Stage::AggMap(_) => "agg_map",
            Stage::Size => "size",
            Stage::SortValues(_) => "sort",
            Stage::Head(_) => "head",
            Stage::Tail(_) => "tail",
            Stage::Unique => "unique",
            Stage::ValueCounts => "value_counts",
            Stage::NLargest(..) => "nlargest",
            Stage::NSmallest(..) => "nsmallest",
            Stage::DropDuplicates(_) => "drop_duplicates",
            Stage::Describe => "describe",
            Stage::LocIdx { .. } => "loc_idx",
            Stage::Idx { .. } => "idx",
            Stage::ResetIndex => "reset_index",
            Stage::Round(_) => "round",
            Stage::Count => "count",
        }
    }
}

/// A pipeline rooted at `df`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pipeline {
    /// Stages in application order.
    pub stages: Vec<Stage>,
}

impl Pipeline {
    /// Empty pipeline (`df` itself).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a stage (builder style).
    pub fn then(mut self, stage: Stage) -> Self {
        self.stages.push(stage);
        self
    }

    /// The filter stages of this pipeline.
    pub fn filters(&self) -> Vec<&Expr> {
        self.stages
            .iter()
            .filter_map(|s| match s {
                Stage::Filter(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    /// All column names the pipeline references (filters, group keys,
    /// aggregations, sorts, projections).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |name: &str| {
            if !out.iter().any(|n| n == name) {
                out.push(name.to_string());
            }
        };
        for stage in &self.stages {
            match stage {
                Stage::Filter(e) => {
                    for c in e.columns() {
                        push(c);
                    }
                }
                Stage::Select(cols) | Stage::GroupBy(cols) | Stage::DropDuplicates(cols) => {
                    for c in cols {
                        push(c);
                    }
                }
                Stage::Col(c) => push(c),
                Stage::AggMap(specs) => {
                    for (c, _) in specs {
                        push(c);
                    }
                }
                Stage::SortValues(keys) => {
                    for (c, _) in keys {
                        push(c);
                    }
                }
                Stage::NLargest(_, c) | Stage::NSmallest(_, c) => push(c),
                Stage::LocIdx { column, cell, .. } => {
                    push(column);
                    if let Some(c) = cell {
                        push(c);
                    }
                }
                _ => {}
            }
        }
        out
    }
}

/// A lineage path primitive over the provenance graph — the traversal
/// queries the DataFrame engine cannot express (§5.4). Node ids are PROV
/// task/activity ids; depths are hop counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphQuery {
    /// `upstream("task", depth)` — transitive causes over
    /// `prov:wasInformedBy` out-edges, BFS order with hop distance.
    Upstream {
        /// Start node id.
        node: String,
        /// Maximum hop count.
        depth: usize,
    },
    /// `downstream("task", depth)` — transitive impact over
    /// `prov:wasInformedBy` in-edges.
    Downstream {
        /// Start node id.
        node: String,
        /// Maximum hop count.
        depth: usize,
    },
    /// `paths("a", "b")` — one shortest directed path over any relation
    /// (endpoints included), empty when unreachable.
    Paths {
        /// Source node id.
        from: String,
        /// Target node id.
        to: String,
    },
    /// `khop("id", k)` — the k-hop neighborhood over any relation,
    /// treating edges as undirected (out-neighbors before in-neighbors
    /// per visited node).
    Khop {
        /// Center node id.
        node: String,
        /// Neighborhood radius in hops.
        k: usize,
    },
}

impl GraphQuery {
    /// The primitive's name as it appears in query text.
    pub fn name(&self) -> &'static str {
        match self {
            GraphQuery::Upstream { .. } => "upstream",
            GraphQuery::Downstream { .. } => "downstream",
            GraphQuery::Paths { .. } => "paths",
            GraphQuery::Khop { .. } => "khop",
        }
    }
}

/// A complete query: a pipeline, a `len(...)` wrapper, scalar arithmetic
/// between two queries, or a graph path primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A plain pipeline.
    Pipeline(Pipeline),
    /// `len(<query>)`.
    Len(Box<Query>),
    /// `<query> <op> <query>` on scalar results.
    Binary(Box<Query>, ArithOp, Box<Query>),
    /// Bare numeric literal appearing in scalar arithmetic.
    Number(f64),
    /// A lineage path primitive (`upstream(...)`, `paths(...)`, ...),
    /// answered by a graph-capable store rather than the frame.
    Graph(GraphQuery),
}

impl Query {
    /// Convenience constructor from stages.
    pub fn pipeline(stages: Vec<Stage>) -> Self {
        Query::Pipeline(Pipeline { stages })
    }

    /// All column names referenced anywhere in the query.
    pub fn referenced_columns(&self) -> Vec<String> {
        match self {
            Query::Pipeline(p) => p.referenced_columns(),
            Query::Len(q) => q.referenced_columns(),
            Query::Binary(a, _, b) => {
                let mut cols = a.referenced_columns();
                for c in b.referenced_columns() {
                    if !cols.contains(&c) {
                        cols.push(c);
                    }
                }
                cols
            }
            Query::Number(_) | Query::Graph(_) => Vec::new(),
        }
    }

    /// The pipelines contained in this query (1 for plain, 2 for binary).
    pub fn pipelines(&self) -> Vec<&Pipeline> {
        match self {
            Query::Pipeline(p) => vec![p],
            Query::Len(q) => q.pipelines(),
            Query::Binary(a, _, b) => {
                let mut v = a.pipelines();
                v.extend(b.pipelines());
                v
            }
            Query::Number(_) | Query::Graph(_) => Vec::new(),
        }
    }

    /// True when a graph path primitive appears anywhere in the query —
    /// such queries need a graph-capable store, not just a frame.
    pub fn has_graph(&self) -> bool {
        match self {
            Query::Graph(_) => true,
            Query::Len(q) => q.has_graph(),
            Query::Binary(a, _, b) => a.has_graph() || b.has_graph(),
            Query::Pipeline(_) | Query::Number(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::{col, lit};

    #[test]
    fn referenced_columns_dedup() {
        let p = Pipeline::new()
            .then(Stage::Filter(col("a").gt(lit(1)).and(col("b").eq(lit(2)))))
            .then(Stage::GroupBy(vec!["a".into()]))
            .then(Stage::AggMap(vec![("c".into(), AggFunc::Mean)]));
        assert_eq!(p.referenced_columns(), vec!["a", "b", "c"]);
    }

    #[test]
    fn query_columns_cross_binary() {
        let q = Query::Binary(
            Box::new(Query::pipeline(vec![
                Stage::Col("x".into()),
                Stage::Agg(AggFunc::Max),
            ])),
            ArithOp::Sub,
            Box::new(Query::pipeline(vec![
                Stage::Col("y".into()),
                Stage::Agg(AggFunc::Min),
            ])),
        );
        assert_eq!(q.referenced_columns(), vec!["x", "y"]);
        assert_eq!(q.pipelines().len(), 2);
    }

    #[test]
    fn stage_tags_unique_enough() {
        assert_eq!(Stage::Count.tag(), "count");
        assert_eq!(Stage::Describe.tag(), "describe");
    }
}
