//! Render a [`Query`] back to canonical pandas-style text.
//!
//! `parse(render(q)) == q` for every constructible query, which the
//! property tests in this crate assert.

use crate::ast::{GraphQuery, Pipeline, Query, Stage};
use dataframe::{ArithOp, CmpOp, Expr};
use prov_model::Value;
use std::fmt::Write as _;

/// Render a query to text.
pub fn render(query: &Query) -> String {
    let mut out = String::new();
    render_query(&mut out, query);
    out
}

fn render_query(out: &mut String, query: &Query) {
    match query {
        Query::Pipeline(p) => render_pipeline(out, p),
        Query::Len(q) => {
            out.push_str("len(");
            render_query(out, q);
            out.push(')');
        }
        Query::Binary(a, op, b) => {
            render_query(out, a);
            let _ = write!(out, " {} ", arith_symbol(*op));
            render_query(out, b);
        }
        Query::Number(n) => {
            if n.fract() == 0.0 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Query::Graph(g) => render_graph(out, g),
    }
}

fn render_graph(out: &mut String, g: &GraphQuery) {
    match g {
        GraphQuery::Upstream { node, depth } | GraphQuery::Downstream { node, depth } => {
            let _ = write!(out, "{}(\"{node}\", {depth})", g.name());
        }
        GraphQuery::Paths { from, to } => {
            let _ = write!(out, "paths(\"{from}\", \"{to}\")");
        }
        GraphQuery::Khop { node, k } => {
            let _ = write!(out, "khop(\"{node}\", {k})");
        }
    }
}

fn arith_symbol(op: ArithOp) -> &'static str {
    op.symbol()
}

fn render_pipeline(out: &mut String, p: &Pipeline) {
    out.push_str("df");
    for stage in &p.stages {
        render_stage(out, stage);
    }
}

fn render_stage(out: &mut String, stage: &Stage) {
    match stage {
        Stage::Filter(e) => {
            out.push('[');
            render_expr(out, e, false);
            out.push(']');
        }
        Stage::Select(cols) => {
            out.push_str("[[");
            for (i, c) in cols.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{c}\"");
            }
            out.push_str("]]");
        }
        Stage::Col(c) => {
            let _ = write!(out, "[\"{c}\"]");
        }
        Stage::GroupBy(keys) => {
            out.push_str(".groupby(");
            render_str_list(out, keys);
            out.push(')');
        }
        Stage::Agg(f) => {
            let _ = write!(out, ".{}()", f.name());
        }
        Stage::AggMap(specs) => {
            out.push_str(".agg({");
            for (i, (c, f)) in specs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{c}\": \"{}\"", f.name());
            }
            out.push_str("})");
        }
        Stage::Size => out.push_str(".size()"),
        Stage::SortValues(keys) => {
            out.push_str(".sort_values(");
            let names: Vec<String> = keys.iter().map(|(k, _)| k.clone()).collect();
            render_str_list(out, &names);
            let all_asc = keys.iter().all(|(_, a)| *a);
            let all_desc = keys.iter().all(|(_, a)| !*a);
            if all_desc {
                out.push_str(", ascending=False");
            } else if !all_asc {
                out.push_str(", ascending=[");
                for (i, (_, a)) in keys.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(if *a { "True" } else { "False" });
                }
                out.push(']');
            }
            out.push(')');
        }
        Stage::Head(n) => {
            let _ = write!(out, ".head({n})");
        }
        Stage::Tail(n) => {
            let _ = write!(out, ".tail({n})");
        }
        Stage::Unique => out.push_str(".unique()"),
        Stage::ValueCounts => out.push_str(".value_counts()"),
        Stage::NLargest(n, c) => {
            let _ = write!(out, ".nlargest({n}, \"{c}\")");
        }
        Stage::NSmallest(n, c) => {
            let _ = write!(out, ".nsmallest({n}, \"{c}\")");
        }
        Stage::DropDuplicates(subset) => {
            out.push_str(".drop_duplicates(");
            if !subset.is_empty() {
                out.push_str("subset=");
                render_str_list_always_bracket(out, subset);
            }
            out.push(')');
        }
        Stage::Describe => out.push_str(".describe()"),
        Stage::LocIdx { column, max, cell } => {
            let f = if *max { "idxmax" } else { "idxmin" };
            let _ = write!(out, ".loc[df[\"{column}\"].{f}()");
            if let Some(c) = cell {
                let _ = write!(out, ", \"{c}\"");
            }
            out.push(']');
        }
        Stage::Idx { max } => {
            let _ = write!(out, ".{}()", if *max { "idxmax" } else { "idxmin" });
        }
        Stage::ResetIndex => out.push_str(".reset_index()"),
        Stage::Round(n) => {
            let _ = write!(out, ".round({n})");
        }
        Stage::Count => out.push_str(".shape[0]"),
    }
}

fn render_str_list(out: &mut String, items: &[String]) {
    if items.len() == 1 {
        let _ = write!(out, "\"{}\"", items[0]);
    } else {
        render_str_list_always_bracket(out, items);
    }
}

fn render_str_list_always_bracket(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, c) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{c}\"");
    }
    out.push(']');
}

/// Render a filter expression in pandas boolean-mask syntax.
pub fn render_expr(out: &mut String, e: &Expr, parenthesize: bool) {
    match e {
        Expr::Col(c) => {
            let _ = write!(out, "df[\"{c}\"]");
        }
        Expr::Lit(v) => render_literal(out, v),
        Expr::Cmp(a, op, b) => {
            if parenthesize {
                out.push('(');
            }
            render_expr(out, a, false);
            let _ = write!(out, " {} ", cmp_symbol(*op));
            render_expr(out, b, false);
            if parenthesize {
                out.push(')');
            }
        }
        Expr::Arith(a, op, b) => {
            render_expr(out, a, true);
            let _ = write!(out, " {} ", op.symbol());
            render_expr(out, b, true);
        }
        Expr::And(a, b) => {
            render_expr(out, a, true);
            out.push_str(" & ");
            render_expr(out, b, true);
        }
        Expr::Or(a, b) => {
            render_expr(out, a, true);
            out.push_str(" | ");
            render_expr(out, b, true);
        }
        Expr::Not(a) => {
            out.push('~');
            render_expr(out, a, true);
        }
        Expr::StrContains(a, pat, ci) => {
            render_expr(out, a, false);
            if *ci {
                let _ = write!(out, ".str.contains(\"{pat}\", case=False)");
            } else {
                let _ = write!(out, ".str.contains(\"{pat}\")");
            }
        }
        Expr::StrStartsWith(a, prefix) => {
            render_expr(out, a, false);
            let _ = write!(out, ".str.startswith(\"{prefix}\")");
        }
        Expr::IsIn(a, values) => {
            render_expr(out, a, false);
            out.push_str(".isin([");
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                render_literal(out, v);
            }
            out.push_str("])");
        }
        Expr::IsNull(a) => {
            render_expr(out, a, false);
            out.push_str(".isna()");
        }
        Expr::NotNull(a) => {
            render_expr(out, a, false);
            out.push_str(".notna()");
        }
    }
}

fn cmp_symbol(op: CmpOp) -> &'static str {
    op.symbol()
}

fn render_literal(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => {
            let _ = write!(out, "\"{s}\"");
        }
        Value::Bool(true) => out.push_str("True"),
        Value::Bool(false) => out.push_str("False"),
        Value::Null => out.push_str("None"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.fract() == 0.0 && f.abs() < 1e15 {
                let _ = write!(out, "{f:.1}");
            } else {
                let _ = write!(out, "{f}");
            }
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(text: &str) {
        let q = parse(text).expect("parse input");
        let rendered = render(&q);
        let q2 = parse(&rendered).unwrap_or_else(|e| panic!("reparse '{rendered}': {e}"));
        assert_eq!(q, q2, "roundtrip mismatch for {text} -> {rendered}");
    }

    #[test]
    fn roundtrips() {
        for text in [
            "df",
            r#"df[df["cpu"] > 50]"#,
            r#"df[(df["a"] == "x") & (df["b"] < 2)]"#,
            r#"df[df["a"].str.contains("C-H", case=False)]"#,
            r#"df[df["s"].isin(["A", "B"])]"#,
            r#"df[["x", "y"]].head(3)"#,
            r#"df.groupby("k")["v"].mean()"#,
            r#"df.groupby(["a", "b"]).agg({"x": "mean", "y": "max"})"#,
            r#"df.sort_values("d", ascending=False).head(1)"#,
            r#"df.sort_values(["a", "b"], ascending=[True, False])"#,
            r#"df.loc[df["e"].idxmax()]"#,
            r#"df.loc[df["e"].idxmin(), "bond_id"]"#,
            r#"len(df[df["status"] == "ERROR"])"#,
            r#"df["ended_at"].max() - df["started_at"].min()"#,
            r#"df.nlargest(3, "duration")"#,
            r#"df["host"].value_counts()"#,
            r#"df.drop_duplicates(subset=["a", "b"])"#,
            r#"df[df["x"].notna()].shape[0]"#,
            r#"df[df["dur"] * 2.0 > 3.5]"#,
            r#"upstream("t42", 3)"#,
            r#"downstream("t42", 16)"#,
            r#"paths("a", "b")"#,
            r#"khop("t7", 2)"#,
            r#"len(upstream("t42", 5))"#,
        ] {
            roundtrip(text);
        }
    }

    #[test]
    fn canonical_quotes_are_double() {
        let q = parse("df['x']").unwrap();
        assert_eq!(render(&q), "df[\"x\"]");
    }

    #[test]
    fn negative_float_literal() {
        roundtrip(r#"df[df["e0"] < -155.03]"#);
    }
}
