//! Recursive-descent parser: pandas-style text → [`Query`].
//!
//! Grammar (simplified):
//! ```text
//! query     := additive EOF
//! additive  := term (('+'|'-') term)*
//! term      := factor (('*'|'/') factor)*
//! factor    := NUMBER | 'len' '(' additive ')' | pipeline | '(' additive ')'
//! pipeline  := 'df' postfix*
//! postfix   := '[' index ']' | '.' method | '.shape[0]' | '.loc[...]'
//! index     := STRING | '[' STRING, ... ']' | boolexpr
//! ```

use crate::ast::{GraphQuery, Pipeline, Query, Stage};
use crate::token::{tokenize, LexError, Token};
use dataframe::{AggFunc, ArithOp, CmpOp, Expr};
use prov_model::Value;

/// Parse error with token position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Index of the offending token (or token count at EOF).
    pub token_index: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parse error at token {}: {}",
            self.token_index, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            token_index: 0,
            message: e.to_string(),
        }
    }
}

/// Parse pandas-style query text into a [`Query`].
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_additive()?;
    if p.pos != p.tokens.len() {
        return Err(p.err(format!("unexpected trailing token '{}'", p.tokens[p.pos])));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            token_index: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.peek().is_some_and(|t| t.is_punct(p)) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{p}', found {}",
                self.peek().map(|t| t.to_string()).unwrap_or("EOF".into())
            )))
        }
    }

    fn try_punct(&mut self, p: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_string(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(self.err(format!(
                "expected string literal, found {}",
                other.map(|t| t.to_string()).unwrap_or("EOF".into())
            ))),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.bump() {
            Some(Token::Int(i)) => Ok(i),
            other => Err(self.err(format!(
                "expected integer, found {}",
                other.map(|t| t.to_string()).unwrap_or("EOF".into())
            ))),
        }
    }

    // ---- scalar arithmetic level -------------------------------------

    fn parse_additive(&mut self) -> Result<Query, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Some(t) if t.is_punct("+") => ArithOp::Add,
                Some(t) if t.is_punct("-") => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_term()?;
            lhs = Query::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Query, ParseError> {
        let mut lhs = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                Some(t) if t.is_punct("*") => ArithOp::Mul,
                Some(t) if t.is_punct("/") => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_factor()?;
            lhs = Query::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> Result<Query, ParseError> {
        match self.peek() {
            Some(Token::Int(i)) => {
                let v = *i as f64;
                self.pos += 1;
                Ok(Query::Number(v))
            }
            Some(Token::Float(f)) => {
                let v = *f;
                self.pos += 1;
                Ok(Query::Number(v))
            }
            Some(t) if t.is_ident("len") => {
                self.pos += 1;
                self.eat_punct("(")?;
                let inner = self.parse_additive()?;
                self.eat_punct(")")?;
                Ok(Query::Len(Box::new(inner)))
            }
            Some(t) if t.is_ident("df") => self.parse_pipeline().map(Query::Pipeline),
            Some(t)
                if ["upstream", "downstream", "paths", "khop"]
                    .iter()
                    .any(|n| t.is_ident(n))
                    && self.peek_at(1).is_some_and(|t| t.is_punct("(")) =>
            {
                self.parse_graph().map(Query::Graph)
            }
            Some(t) if t.is_punct("(") => {
                self.pos += 1;
                let inner = self.parse_additive()?;
                self.eat_punct(")")?;
                Ok(inner)
            }
            other => Err(self.err(format!(
                "expected query, found {}",
                other.map(|t| t.to_string()).unwrap_or("EOF".into())
            ))),
        }
    }

    // ---- graph path primitives ----------------------------------------

    /// `upstream("task", depth)` / `downstream("task", depth)` /
    /// `paths("a", "b")` / `khop("id", k)` — the caller has already
    /// checked the ident is one of the four names and `(` follows.
    fn parse_graph(&mut self) -> Result<GraphQuery, ParseError> {
        let name = match self.bump() {
            Some(Token::Ident(n)) => n,
            _ => unreachable!("caller checked ident"),
        };
        self.eat_punct("(")?;
        let first = self.expect_string()?;
        self.eat_punct(",")?;
        let q = match name.as_str() {
            "paths" => {
                let to = self.expect_string()?;
                GraphQuery::Paths { from: first, to }
            }
            _ => {
                let n = self.expect_int()?;
                let depth = usize::try_from(n)
                    .map_err(|_| self.err(format!("{name} depth must be non-negative, got {n}")))?;
                match name.as_str() {
                    "upstream" => GraphQuery::Upstream { node: first, depth },
                    "downstream" => GraphQuery::Downstream { node: first, depth },
                    "khop" => GraphQuery::Khop {
                        node: first,
                        k: depth,
                    },
                    _ => unreachable!("caller checked the name set"),
                }
            }
        };
        self.eat_punct(")")?;
        Ok(q)
    }

    // ---- pipeline level ------------------------------------------------

    fn parse_pipeline(&mut self) -> Result<Pipeline, ParseError> {
        // consume 'df'
        self.pos += 1;
        let mut stages = Vec::new();
        loop {
            if self.try_punct("[") {
                stages.push(self.parse_index()?);
                self.eat_punct("]")?;
                continue;
            }
            if self.peek().is_some_and(|t| t.is_punct("."))
                && self
                    .peek_at(1)
                    .is_some_and(|t| matches!(t, Token::Ident(_)))
            {
                self.pos += 1; // '.'
                let name = match self.bump() {
                    Some(Token::Ident(n)) => n,
                    _ => unreachable!("checked ident above"),
                };
                match name.as_str() {
                    "shape" => {
                        self.eat_punct("[")?;
                        let idx = self.expect_int()?;
                        self.eat_punct("]")?;
                        if idx != 0 {
                            return Err(self.err("only .shape[0] is supported"));
                        }
                        stages.push(Stage::Count);
                    }
                    "loc" => {
                        self.eat_punct("[")?;
                        stages.push(self.parse_loc()?);
                        self.eat_punct("]")?;
                    }
                    _ => stages.push(self.parse_method(&name)?),
                }
                continue;
            }
            break;
        }
        Ok(Pipeline { stages })
    }

    /// Contents of `df[...]`: column, projection, or boolean filter.
    fn parse_index(&mut self) -> Result<Stage, ParseError> {
        match self.peek() {
            Some(Token::Str(_)) => {
                let s = self.expect_string()?;
                Ok(Stage::Col(s))
            }
            Some(t) if t.is_punct("[") => {
                self.pos += 1;
                let mut cols = vec![self.expect_string()?];
                while self.try_punct(",") {
                    cols.push(self.expect_string()?);
                }
                self.eat_punct("]")?;
                Ok(Stage::Select(cols))
            }
            _ => Ok(Stage::Filter(self.parse_bool_or()?)),
        }
    }

    /// `df.loc[df["col"].idxmax()]` with optional `, "cell"`.
    fn parse_loc(&mut self) -> Result<Stage, ParseError> {
        if !self.peek().is_some_and(|t| t.is_ident("df")) {
            return Err(self.err("expected df[...].idxmax()/idxmin() inside .loc[...]"));
        }
        self.pos += 1;
        self.eat_punct("[")?;
        let column = self.expect_string()?;
        self.eat_punct("]")?;
        self.eat_punct(".")?;
        let fname = match self.bump() {
            Some(Token::Ident(n)) => n,
            other => {
                return Err(self.err(format!(
                    "expected idxmax/idxmin, found {}",
                    other.map(|t| t.to_string()).unwrap_or("EOF".into())
                )))
            }
        };
        let max = match fname.as_str() {
            "idxmax" => true,
            "idxmin" => false,
            _ => return Err(self.err("expected idxmax or idxmin inside .loc[...]")),
        };
        self.eat_punct("(")?;
        self.eat_punct(")")?;
        let cell = if self.try_punct(",") {
            Some(self.expect_string()?)
        } else {
            None
        };
        Ok(Stage::LocIdx { column, max, cell })
    }

    fn parse_method(&mut self, name: &str) -> Result<Stage, ParseError> {
        self.eat_punct("(")?;
        let stage = match name {
            "groupby" => {
                let keys = self.parse_string_or_list()?;
                Stage::GroupBy(keys)
            }
            "agg" | "aggregate" => {
                self.eat_punct("{")?;
                let mut specs = Vec::new();
                loop {
                    let col = self.expect_string()?;
                    self.eat_punct(":")?;
                    let fname = self.expect_string()?;
                    let func = AggFunc::parse(&fname)
                        .ok_or_else(|| self.err(format!("unknown aggregation '{fname}'")))?;
                    specs.push((col, func));
                    if !self.try_punct(",") {
                        break;
                    }
                }
                self.eat_punct("}")?;
                Stage::AggMap(specs)
            }
            "size" => Stage::Size,
            "sort_values" => {
                let mut keys: Vec<String> = Vec::new();
                let mut ascending: Vec<bool> = Vec::new();
                // positional or by= column(s)
                loop {
                    match self.peek() {
                        Some(Token::Str(_)) => keys = vec![self.expect_string()?],
                        Some(t) if t.is_punct("[") && keys.is_empty() => {
                            keys = self.parse_string_or_list()?
                        }
                        Some(t) if t.is_ident("by") => {
                            self.pos += 1;
                            self.eat_punct("=")?;
                            keys = self.parse_string_or_list()?;
                        }
                        Some(t) if t.is_ident("ascending") => {
                            self.pos += 1;
                            self.eat_punct("=")?;
                            ascending = self.parse_bool_or_list()?;
                        }
                        _ => break,
                    }
                    if !self.try_punct(",") {
                        break;
                    }
                }
                if keys.is_empty() {
                    return Err(self.err("sort_values requires a column"));
                }
                let sorted: Vec<(String, bool)> = keys
                    .into_iter()
                    .enumerate()
                    .map(|(i, k)| {
                        let asc = ascending
                            .get(i)
                            .or(ascending.first())
                            .copied()
                            .unwrap_or(true);
                        (k, asc)
                    })
                    .collect();
                Stage::SortValues(sorted)
            }
            "head" => Stage::Head(self.parse_optional_int(5)? as usize),
            "tail" => Stage::Tail(self.parse_optional_int(5)? as usize),
            "unique" => Stage::Unique,
            "value_counts" => Stage::ValueCounts,
            "idxmax" => Stage::Idx { max: true },
            "idxmin" => Stage::Idx { max: false },
            "nlargest" => {
                let n = self.expect_int()? as usize;
                self.eat_punct(",")?;
                let col = self.expect_string()?;
                Stage::NLargest(n, col)
            }
            "nsmallest" => {
                let n = self.expect_int()? as usize;
                self.eat_punct(",")?;
                let col = self.expect_string()?;
                Stage::NSmallest(n, col)
            }
            "drop_duplicates" => {
                let mut subset = Vec::new();
                if self.peek().is_some_and(|t| t.is_ident("subset")) {
                    self.pos += 1;
                    self.eat_punct("=")?;
                    subset = self.parse_string_or_list()?;
                }
                Stage::DropDuplicates(subset)
            }
            "describe" => Stage::Describe,
            "reset_index" => {
                // accept and ignore drop=True
                if self.peek().is_some_and(|t| t.is_ident("drop")) {
                    self.pos += 1;
                    self.eat_punct("=")?;
                    self.parse_bool_token()?;
                }
                Stage::ResetIndex
            }
            "round" => Stage::Round(self.parse_optional_int(0)? as usize),
            other => {
                if let Some(func) = AggFunc::parse(other) {
                    Stage::Agg(func)
                } else {
                    return Err(self.err(format!("unsupported method '{other}'")));
                }
            }
        };
        self.eat_punct(")")?;
        Ok(stage)
    }

    fn parse_optional_int(&mut self, default: i64) -> Result<i64, ParseError> {
        if let Some(Token::Int(i)) = self.peek() {
            let v = *i;
            self.pos += 1;
            Ok(v)
        } else {
            Ok(default)
        }
    }

    fn parse_string_or_list(&mut self) -> Result<Vec<String>, ParseError> {
        if self.try_punct("[") {
            let mut out = vec![self.expect_string()?];
            while self.try_punct(",") {
                out.push(self.expect_string()?);
            }
            self.eat_punct("]")?;
            Ok(out)
        } else {
            Ok(vec![self.expect_string()?])
        }
    }

    fn parse_bool_token(&mut self) -> Result<bool, ParseError> {
        match self.bump() {
            Some(Token::Ident(w)) if w == "True" => Ok(true),
            Some(Token::Ident(w)) if w == "False" => Ok(false),
            other => Err(self.err(format!(
                "expected True/False, found {}",
                other.map(|t| t.to_string()).unwrap_or("EOF".into())
            ))),
        }
    }

    fn parse_bool_or_list(&mut self) -> Result<Vec<bool>, ParseError> {
        if self.try_punct("[") {
            let mut out = vec![self.parse_bool_token()?];
            while self.try_punct(",") {
                out.push(self.parse_bool_token()?);
            }
            self.eat_punct("]")?;
            Ok(out)
        } else {
            Ok(vec![self.parse_bool_token()?])
        }
    }

    // ---- boolean filter expressions -------------------------------------

    fn parse_bool_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bool_and()?;
        while self.try_punct("|") {
            let rhs = self.parse_bool_and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_bool_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_bool_unary()?;
        while self.try_punct("&") {
            let rhs = self.parse_bool_unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_bool_unary(&mut self) -> Result<Expr, ParseError> {
        if self.try_punct("~") {
            return Ok(self.parse_bool_unary()?.negate());
        }
        if self.peek().is_some_and(|t| t.is_punct("(")) {
            // Could be a parenthesized boolean or a parenthesized arithmetic
            // operand; try boolean first by lookahead for df/~/( patterns.
            let save = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.parse_bool_or() {
                if self.try_punct(")") {
                    // May still be followed by a comparison if the parens
                    // wrapped an arithmetic operand — handled below by
                    // restarting when a comparison operator follows.
                    if !self.peek_comparison_op() {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save;
        }
        self.parse_comparison()
    }

    fn peek_comparison_op(&self) -> bool {
        matches!(
            self.peek(),
            Some(t) if ["==", "!=", "<=", ">=", "<", ">"].iter().any(|p| t.is_punct(p))
        )
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_operand()?;
        // method-style predicates: .str.contains, .isin, .isna, .notna
        if self.peek().is_some_and(|t| t.is_punct("."))
            && self
                .peek_at(1)
                .is_some_and(|t| matches!(t, Token::Ident(_)))
        {
            let save = self.pos;
            self.pos += 1;
            let name = match self.bump() {
                Some(Token::Ident(n)) => n,
                _ => unreachable!(),
            };
            match name.as_str() {
                "str" => {
                    self.eat_punct(".")?;
                    let m = match self.bump() {
                        Some(Token::Ident(n)) => n,
                        other => {
                            return Err(self.err(format!(
                                "expected str method, found {}",
                                other.map(|t| t.to_string()).unwrap_or("EOF".into())
                            )))
                        }
                    };
                    // Validate before consuming arguments, so the error
                    // names the method instead of whatever token its
                    // argument list happens to start with.
                    if !matches!(m.as_str(), "contains" | "startswith") {
                        return Err(self.err(format!("unsupported str method '{m}'")));
                    }
                    self.eat_punct("(")?;
                    let pat = self.expect_string()?;
                    let mut case_insensitive = false;
                    if self.try_punct(",") {
                        // case=False / case=True
                        if self.peek().is_some_and(|t| t.is_ident("case")) {
                            self.pos += 1;
                            self.eat_punct("=")?;
                            case_insensitive = !self.parse_bool_token()?;
                        }
                    }
                    self.eat_punct(")")?;
                    return Ok(match m.as_str() {
                        "contains" => {
                            if case_insensitive {
                                lhs.icontains(pat)
                            } else {
                                lhs.contains(pat)
                            }
                        }
                        "startswith" => lhs.starts_with(pat),
                        _ => unreachable!("method name validated above"),
                    });
                }
                "isin" => {
                    self.eat_punct("(")?;
                    self.eat_punct("[")?;
                    let mut vals = vec![self.parse_literal()?];
                    while self.try_punct(",") {
                        vals.push(self.parse_literal()?);
                    }
                    self.eat_punct("]")?;
                    self.eat_punct(")")?;
                    return Ok(lhs.isin(vals));
                }
                "isna" | "isnull" => {
                    self.eat_punct("(")?;
                    self.eat_punct(")")?;
                    return Ok(lhs.is_null());
                }
                "notna" | "notnull" => {
                    self.eat_punct("(")?;
                    self.eat_punct(")")?;
                    return Ok(lhs.not_null());
                }
                _ => {
                    self.pos = save;
                }
            }
        }
        let op = match self.peek() {
            Some(t) if t.is_punct("==") => CmpOp::Eq,
            Some(t) if t.is_punct("!=") => CmpOp::Ne,
            Some(t) if t.is_punct("<=") => CmpOp::Le,
            Some(t) if t.is_punct(">=") => CmpOp::Ge,
            Some(t) if t.is_punct("<") => CmpOp::Lt,
            Some(t) if t.is_punct(">") => CmpOp::Gt,
            other => {
                return Err(self.err(format!(
                    "expected comparison operator, found {}",
                    other.map(|t| t.to_string()).unwrap_or("EOF".into())
                )))
            }
        };
        self.pos += 1;
        let rhs = self.parse_operand()?;
        Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)))
    }

    /// Arithmetic operand inside a filter: columns, literals, parens.
    fn parse_operand(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_operand_term()?;
        loop {
            let op = match self.peek() {
                Some(t) if t.is_punct("+") => dataframe::ArithOp::Add,
                Some(t) if t.is_punct("-") => dataframe::ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_operand_term()?;
            lhs = Expr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_operand_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_operand_atom()?;
        loop {
            let op = match self.peek() {
                Some(t) if t.is_punct("*") => dataframe::ArithOp::Mul,
                Some(t) if t.is_punct("/") => dataframe::ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_operand_atom()?;
            lhs = Expr::Arith(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_operand_atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(t) if t.is_ident("df") => {
                self.pos += 1;
                self.eat_punct("[")?;
                let col = self.expect_string()?;
                self.eat_punct("]")?;
                Ok(Expr::Col(col))
            }
            Some(t) if t.is_punct("(") => {
                self.pos += 1;
                let inner = self.parse_operand()?;
                self.eat_punct(")")?;
                Ok(inner)
            }
            _ => Ok(Expr::Lit(self.parse_literal()?)),
        }
    }

    fn parse_literal(&mut self) -> Result<Value, ParseError> {
        match self.bump() {
            Some(Token::Str(s)) => Ok(Value::from(s)),
            Some(Token::Int(i)) => Ok(Value::Int(i)),
            Some(Token::Float(f)) => Ok(Value::Float(f)),
            Some(Token::Punct("-")) => match self.bump() {
                Some(Token::Int(i)) => Ok(Value::Int(-i)),
                Some(Token::Float(f)) => Ok(Value::Float(-f)),
                other => Err(self.err(format!(
                    "expected number after '-', found {}",
                    other.map(|t| t.to_string()).unwrap_or("EOF".into())
                ))),
            },
            Some(Token::Ident(w)) if w == "True" => Ok(Value::Bool(true)),
            Some(Token::Ident(w)) if w == "False" => Ok(Value::Bool(false)),
            Some(Token::Ident(w)) if w == "None" => Ok(Value::Null),
            other => Err(self.err(format!(
                "expected literal, found {}",
                other.map(|t| t.to_string()).unwrap_or("EOF".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::{col, lit};

    fn stages(input: &str) -> Vec<Stage> {
        match parse(input).unwrap() {
            Query::Pipeline(p) => p.stages,
            other => panic!("expected pipeline, got {other:?}"),
        }
    }

    #[test]
    fn bare_df() {
        assert!(stages("df").is_empty());
    }

    #[test]
    fn filter_comparison() {
        let s = stages(r#"df[df["cpu_percent_end"] > 50]"#);
        assert_eq!(s, vec![Stage::Filter(col("cpu_percent_end").gt(lit(50)))]);
    }

    #[test]
    fn filter_and_or_not() {
        let s = stages(r#"df[(df["a"] > 1) & (df["b"] == 'x') | ~(df["c"] <= 2.5)]"#);
        assert_eq!(s.len(), 1);
        match &s[0] {
            Stage::Filter(Expr::Or(_, _)) => {}
            other => panic!("expected Or at top: {other:?}"),
        }
    }

    #[test]
    fn str_contains_and_isin() {
        let s = stages(r#"df[df["bond_id"].str.contains('C-H')]"#);
        assert_eq!(s, vec![Stage::Filter(col("bond_id").contains("C-H"))]);
        let s = stages(r#"df[df["bond_id"].str.contains('c-h', case=False)]"#);
        assert_eq!(s, vec![Stage::Filter(col("bond_id").icontains("c-h"))]);
        let s = stages(r#"df[df["status"].isin(['FINISHED', 'ERROR'])]"#);
        assert_eq!(
            s,
            vec![Stage::Filter(col("status").isin(vec![
                Value::Str("FINISHED".into()),
                Value::Str("ERROR".into())
            ]))]
        );
    }

    #[test]
    fn projection_and_column() {
        assert_eq!(
            stages(r#"df[["task_id", "duration"]]"#),
            vec![Stage::Select(vec!["task_id".into(), "duration".into()])]
        );
        assert_eq!(
            stages(r#"df["duration"]"#),
            vec![Stage::Col("duration".into())]
        );
    }

    #[test]
    fn groupby_agg_chain() {
        let s = stages(r#"df.groupby("bond_id")["bd_energy"].mean()"#);
        assert_eq!(
            s,
            vec![
                Stage::GroupBy(vec!["bond_id".into()]),
                Stage::Col("bd_energy".into()),
                Stage::Agg(AggFunc::Mean),
            ]
        );
        let s = stages(r#"df.groupby(["a","b"]).agg({"x": "mean", "y": "max"})"#);
        assert_eq!(
            s,
            vec![
                Stage::GroupBy(vec!["a".into(), "b".into()]),
                Stage::AggMap(vec![
                    ("x".into(), AggFunc::Mean),
                    ("y".into(), AggFunc::Max)
                ]),
            ]
        );
    }

    #[test]
    fn sort_variants() {
        assert_eq!(
            stages(r#"df.sort_values("duration")"#),
            vec![Stage::SortValues(vec![("duration".into(), true)])]
        );
        assert_eq!(
            stages(r#"df.sort_values("duration", ascending=False)"#),
            vec![Stage::SortValues(vec![("duration".into(), false)])]
        );
        assert_eq!(
            stages(r#"df.sort_values(by=["a","b"], ascending=[True, False])"#),
            vec![Stage::SortValues(vec![
                ("a".into(), true),
                ("b".into(), false)
            ])]
        );
    }

    #[test]
    fn head_tail_defaults() {
        assert_eq!(stages("df.head()"), vec![Stage::Head(5)]);
        assert_eq!(stages("df.head(3)"), vec![Stage::Head(3)]);
        assert_eq!(stages("df.tail(2)"), vec![Stage::Tail(2)]);
    }

    #[test]
    fn loc_idxmax() {
        let s = stages(r#"df.loc[df["bd_free_energy"].idxmax()]"#);
        assert_eq!(
            s,
            vec![Stage::LocIdx {
                column: "bd_free_energy".into(),
                max: true,
                cell: None
            }]
        );
        let s = stages(r#"df.loc[df["bd_energy"].idxmin(), "bond_id"]"#);
        assert_eq!(
            s,
            vec![Stage::LocIdx {
                column: "bd_energy".into(),
                max: false,
                cell: Some("bond_id".into())
            }]
        );
    }

    #[test]
    fn len_and_shape() {
        assert_eq!(
            parse(r#"len(df[df["status"] == 'ERROR'])"#).unwrap(),
            Query::Len(Box::new(Query::pipeline(vec![Stage::Filter(
                col("status").eq(lit("ERROR"))
            )])))
        );
        assert_eq!(stages("df.shape[0]"), vec![Stage::Count]);
    }

    #[test]
    fn scalar_arithmetic() {
        let q = parse(r#"df["ended_at"].max() - df["started_at"].min()"#).unwrap();
        match q {
            Query::Binary(a, ArithOp::Sub, b) => {
                assert!(matches!(*a, Query::Pipeline(_)));
                assert!(matches!(*b, Query::Pipeline(_)));
            }
            other => panic!("expected binary: {other:?}"),
        }
    }

    #[test]
    fn filter_with_arithmetic_operand() {
        let s = stages(r#"df[df["ended_at"] - df["started_at"] > 1.0]"#);
        match &s[0] {
            Stage::Filter(Expr::Cmp(lhs, CmpOp::Gt, _)) => {
                assert!(matches!(**lhs, Expr::Arith(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nlargest_nsmallest() {
        assert_eq!(
            stages(r#"df.nlargest(3, "duration")"#),
            vec![Stage::NLargest(3, "duration".into())]
        );
        assert_eq!(
            stages(r#"df.nsmallest(1, "bd_enthalpy")"#),
            vec![Stage::NSmallest(1, "bd_enthalpy".into())]
        );
    }

    #[test]
    fn unique_value_counts_describe() {
        assert_eq!(
            stages(r#"df["hostname"].unique()"#),
            vec![Stage::Col("hostname".into()), Stage::Unique]
        );
        assert_eq!(
            stages(r#"df["activity_id"].value_counts()"#),
            vec![Stage::Col("activity_id".into()), Stage::ValueCounts]
        );
        assert_eq!(stages("df.describe()"), vec![Stage::Describe]);
    }

    #[test]
    fn drop_duplicates_and_reset_index() {
        assert_eq!(
            stages(r#"df.drop_duplicates(subset=["activity_id"])"#),
            vec![Stage::DropDuplicates(vec!["activity_id".into()])]
        );
        assert_eq!(
            stages(r#"df.groupby("a").size().reset_index(drop=True)"#),
            vec![
                Stage::GroupBy(vec!["a".into()]),
                Stage::Size,
                Stage::ResetIndex
            ]
        );
    }

    #[test]
    fn negative_literals() {
        let s = stages(r#"df[df["e0"] < -150.5]"#);
        assert_eq!(s, vec![Stage::Filter(col("e0").lt(lit(-150.5)))]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("df.").is_err());
        assert!(parse("df[").is_err());
        assert!(parse(r#"df.frobnicate()"#).is_err());
        assert!(parse(r#"df["a" extra"#).is_err());
        assert!(parse("df df").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn complex_chained_query() {
        let s = stages(
            r#"df[df["activity_id"] == "run_dft"].groupby("hostname")["duration"].mean().round(2)"#,
        );
        assert_eq!(s.len(), 5);
        assert_eq!(s[4], Stage::Round(2));
    }
}
