//! Query execution against a [`DataFrame`].

use crate::ast::{Pipeline, Query, Stage};
use dataframe::{AggFunc, ArithOp, Column, DataFrame, FrameError};
use prov_model::{Map, Value};

/// The result of executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// A table.
    Frame(DataFrame),
    /// A single named column of values.
    Series {
        /// Column name.
        name: String,
        /// Values.
        values: Vec<Value>,
    },
    /// A single value.
    Scalar(Value),
    /// One row as a map.
    Row(Map),
}

impl QueryOutput {
    /// Scalar payload if this is a scalar.
    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            QueryOutput::Scalar(v) => Some(v),
            _ => None,
        }
    }

    /// Frame payload if this is a frame.
    pub fn as_frame(&self) -> Option<&DataFrame> {
        match self {
            QueryOutput::Frame(f) => Some(f),
            _ => None,
        }
    }

    /// Number of rows/values in the output (1 for scalars and rows).
    pub fn len(&self) -> usize {
        match self {
            QueryOutput::Frame(f) => f.len(),
            QueryOutput::Series { values, .. } => values.len(),
            QueryOutput::Scalar(_) | QueryOutput::Row(_) => 1,
        }
    }

    /// True when there is no data at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convert any output shape into a plottable frame.
    ///
    /// Frames pass through; scalars, series, and rows become two-column
    /// `label`/`value` tables (rows keep only their numeric entries) — the
    /// shape bar-chart renderers consume. This is the single home of the
    /// conversions the agent's plot tool used to hand-roll.
    pub fn into_frame(self) -> Result<DataFrame, FrameError> {
        match self {
            QueryOutput::Frame(f) => Ok(f),
            QueryOutput::Scalar(v) => DataFrame::from_columns(vec![
                ("label", vec![Value::from("value")]),
                ("value", vec![v]),
            ]),
            QueryOutput::Series { name, values } => DataFrame::from_columns(vec![
                (
                    "label".to_string(),
                    (0..values.len())
                        .map(|i| Value::from(format!("{name}[{i}]")))
                        .collect(),
                ),
                ("value".to_string(), values),
            ]),
            QueryOutput::Row(m) => {
                let (labels, values): (Vec<Value>, Vec<Value>) = m
                    .iter()
                    .filter(|(_, v)| v.is_number())
                    .map(|(k, v)| (Value::from(k.as_str()), v.clone()))
                    .unzip();
                DataFrame::from_columns(vec![
                    ("label".to_string(), labels),
                    ("value".to_string(), values),
                ])
            }
        }
    }

    /// Human-readable rendering (what the agent displays).
    pub fn render(&self) -> String {
        match self {
            QueryOutput::Frame(f) => dataframe::render(f, dataframe::DisplayOptions::default()),
            QueryOutput::Series { name, values } => {
                let mut out = format!("{name}:\n");
                for v in values.iter().take(30) {
                    out.push_str("  ");
                    out.push_str(&v.display_plain());
                    out.push('\n');
                }
                if values.len() > 30 {
                    out.push_str(&format!("  … ({} values)\n", values.len()));
                }
                out
            }
            QueryOutput::Scalar(v) => v.display_plain(),
            QueryOutput::Row(m) => {
                let mut out = String::new();
                for (k, v) in m {
                    out.push_str(&format!("{k}: {}\n", v.display_plain()));
                }
                out
            }
        }
    }
}

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Underlying frame error (unknown column etc.).
    Frame(FrameError),
    /// A stage was applied to an incompatible intermediate state.
    InvalidStage {
        /// Stage tag.
        stage: &'static str,
        /// State tag (`frame`, `series`, `grouped`, ...).
        state: &'static str,
    },
    /// Arithmetic between non-scalar results.
    NonScalarArithmetic,
    /// Pipeline ended in a non-materializable state (bare group-by).
    UnconsumedGroupBy,
    /// Frame is empty where a value was required.
    EmptyInput,
    /// A graph path primitive reached a frame-only executor — only a
    /// graph-capable store (`prov_db`) can answer it.
    GraphUnsupported,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Frame(e) => write!(f, "{e}"),
            ExecError::InvalidStage { stage, state } => {
                write!(f, "cannot apply '{stage}' to a {state}")
            }
            ExecError::NonScalarArithmetic => {
                write!(f, "arithmetic requires scalar operands")
            }
            ExecError::UnconsumedGroupBy => {
                write!(f, "groupby must be followed by an aggregation")
            }
            ExecError::EmptyInput => write!(f, "empty input where a value was required"),
            ExecError::GraphUnsupported => {
                write!(f, "graph path primitives require a graph-capable store")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<FrameError> for ExecError {
    fn from(e: FrameError) -> Self {
        ExecError::Frame(e)
    }
}

/// Execute a query against a frame.
pub fn execute(query: &Query, df: &DataFrame) -> Result<QueryOutput, ExecError> {
    match query {
        Query::Pipeline(p) => execute_pipeline(p, df),
        Query::Len(q) => {
            let out = execute(q, df)?;
            Ok(QueryOutput::Scalar(Value::Int(out.len() as i64)))
        }
        Query::Binary(a, op, b) => {
            // The left operand is validated before the right side runs, so
            // a non-scalar left reports NonScalarArithmetic without paying
            // for (or surfacing errors from) the right pipeline.
            let left = scalar_operand(execute(a, df)?)?;
            let right = scalar_operand(execute(b, df)?)?;
            arith_scalars(left, *op, right)
        }
        Query::Number(n) => Ok(QueryOutput::Scalar(Value::Float(*n))),
        Query::Graph(_) => Err(ExecError::GraphUnsupported),
    }
}

/// Coerce one arithmetic operand to its scalar (the `Query::Binary`
/// operand rule, shared with plan-based executors — which must apply it
/// in the same left-then-right order to report identical errors).
pub fn scalar_operand(out: QueryOutput) -> Result<Value, ExecError> {
    match out {
        QueryOutput::Scalar(v) => Ok(v),
        QueryOutput::Series { values, .. } if values.len() == 1 => Ok(values[0].clone()),
        _ => Err(ExecError::NonScalarArithmetic),
    }
}

/// Scalar arithmetic on two validated operands (the `Query::Binary`
/// combination rule, shared with plan-based executors).
pub fn arith_scalars(left: Value, op: ArithOp, right: Value) -> Result<QueryOutput, ExecError> {
    let (Some(x), Some(y)) = (left.as_f64(), right.as_f64()) else {
        return Err(ExecError::NonScalarArithmetic);
    };
    let r = match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => {
            if y == 0.0 {
                return Err(ExecError::EmptyInput);
            }
            x / y
        }
    };
    Ok(QueryOutput::Scalar(Value::Float(r)))
}

/// Intermediate execution state.
enum State {
    Frame(DataFrame),
    Series(Column),
    Grouped {
        frame: DataFrame,
        keys: Vec<String>,
    },
    GroupedSeries {
        frame: DataFrame,
        keys: Vec<String>,
        column: String,
    },
    Scalar(Value),
    Row(Map),
}

impl State {
    fn tag(&self) -> &'static str {
        match self {
            State::Frame(_) => "frame",
            State::Series(_) => "series",
            State::Grouped { .. } => "grouped",
            State::GroupedSeries { .. } => "grouped series",
            State::Scalar(_) => "scalar",
            State::Row(_) => "row",
        }
    }
}

fn execute_pipeline(p: &Pipeline, df: &DataFrame) -> Result<QueryOutput, ExecError> {
    execute_stages(&p.stages, df)
}

/// Execute a bare stage sequence against a frame — the stage machine the
/// pipeline executor and the plan-based pushdown executors share.
pub fn execute_stages(stages: &[Stage], df: &DataFrame) -> Result<QueryOutput, ExecError> {
    let mut state = State::Frame(df.clone());
    for stage in stages {
        state = apply_stage(state, stage)?;
    }
    match state {
        State::Frame(f) => Ok(QueryOutput::Frame(f)),
        State::Series(c) => Ok(QueryOutput::Series {
            name: c.name().to_string(),
            values: c.values().to_vec(),
        }),
        State::Scalar(v) => Ok(QueryOutput::Scalar(v)),
        State::Row(m) => Ok(QueryOutput::Row(m)),
        State::Grouped { .. } | State::GroupedSeries { .. } => Err(ExecError::UnconsumedGroupBy),
    }
}

fn invalid(stage: &Stage, state: &State) -> ExecError {
    ExecError::InvalidStage {
        stage: stage.tag(),
        state: state.tag(),
    }
}

fn apply_stage(state: State, stage: &Stage) -> Result<State, ExecError> {
    match (state, stage) {
        (State::Frame(f), Stage::Filter(e)) => Ok(State::Frame(f.filter(e))),
        (State::Frame(f), Stage::Select(cols)) => {
            let names: Vec<&str> = cols.iter().map(String::as_str).collect();
            Ok(State::Frame(f.select(&names)?))
        }
        (State::Frame(f), Stage::Col(c)) => Ok(State::Series(f.column_checked(c)?.clone())),
        (State::Frame(f), Stage::GroupBy(keys)) => {
            // Validate keys eagerly for good error messages.
            for k in keys {
                f.column_checked(k)?;
            }
            Ok(State::Grouped {
                frame: f,
                keys: keys.clone(),
            })
        }
        (State::Grouped { frame, keys }, Stage::Col(c)) => {
            frame.column_checked(c)?;
            Ok(State::GroupedSeries {
                frame,
                keys,
                column: c.clone(),
            })
        }
        (State::Series(c), Stage::Agg(f)) => Ok(State::Scalar(c.agg(*f))),
        (
            State::GroupedSeries {
                frame,
                keys,
                column,
            },
            Stage::Agg(f),
        ) => {
            let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            let g = frame.groupby(&key_refs)?;
            Ok(State::Frame(g.agg(&[(column.as_str(), *f)])?))
        }
        (State::Grouped { frame, keys }, Stage::AggMap(specs)) => {
            let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            let g = frame.groupby(&key_refs)?;
            let spec_refs: Vec<(&str, AggFunc)> =
                specs.iter().map(|(c, f)| (c.as_str(), *f)).collect();
            Ok(State::Frame(g.agg(&spec_refs)?))
        }
        (State::Grouped { frame, keys }, Stage::Size) => {
            let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            Ok(State::Frame(frame.groupby(&key_refs)?.size()))
        }
        (State::Frame(f), Stage::SortValues(keys)) => {
            let key_refs: Vec<(&str, bool)> = keys.iter().map(|(k, a)| (k.as_str(), *a)).collect();
            Ok(State::Frame(f.sort_values(&key_refs)?))
        }
        (State::Frame(f), Stage::Head(n)) => Ok(State::Frame(f.head(*n))),
        (State::Frame(f), Stage::Tail(n)) => Ok(State::Frame(f.tail(*n))),
        (State::Series(c), Stage::Head(n)) => {
            let vals: Vec<Value> = c.values().iter().take(*n).cloned().collect();
            Ok(State::Series(Column::new(c.name(), vals)))
        }
        (State::Series(c), Stage::Unique) => Ok(State::Series(Column::new(c.name(), c.unique()))),
        (State::Series(c), Stage::ValueCounts) => {
            let f = DataFrame::from_columns(vec![(c.name().to_string(), c.values().to_vec())])?;
            Ok(State::Frame(f.value_counts(c.name())?))
        }
        (State::Series(c), Stage::Idx { max }) => {
            let idx = if *max { c.idxmax() } else { c.idxmin() };
            Ok(State::Scalar(
                idx.map(|i| Value::Int(i as i64)).unwrap_or(Value::Null),
            ))
        }
        (State::Series(c), Stage::NLargest(n, _)) => {
            Ok(State::Series(series_sorted(&c, false, *n)))
        }
        (State::Series(c), Stage::NSmallest(n, _)) => {
            Ok(State::Series(series_sorted(&c, true, *n)))
        }
        (State::Frame(f), Stage::NLargest(n, col)) => {
            let sorted = f.sort_values(&[(col.as_str(), false)])?;
            Ok(State::Frame(sorted.head(*n)))
        }
        (State::Frame(f), Stage::NSmallest(n, col)) => {
            let sorted = f.sort_values(&[(col.as_str(), true)])?;
            Ok(State::Frame(sorted.head(*n)))
        }
        (State::Frame(f), Stage::DropDuplicates(subset)) => {
            let refs: Vec<&str> = subset.iter().map(String::as_str).collect();
            Ok(State::Frame(f.drop_duplicates(&refs)?))
        }
        (State::Frame(f), Stage::Describe) => Ok(State::Frame(f.describe())),
        (State::Frame(f), Stage::LocIdx { column, max, cell }) => {
            let c = f.column_checked(column)?;
            let idx = if *max { c.idxmax() } else { c.idxmin() };
            let Some(idx) = idx else {
                return Err(ExecError::EmptyInput);
            };
            match cell {
                Some(cc) => {
                    f.column_checked(cc)?;
                    let v = f
                        .column(cc)
                        .and_then(|col| col.get(idx))
                        .cloned()
                        .unwrap_or(Value::Null);
                    Ok(State::Scalar(v))
                }
                None => Ok(State::Row(f.row(idx).ok_or(ExecError::EmptyInput)?)),
            }
        }
        (state @ State::Frame(_), Stage::ResetIndex) => Ok(state),
        (State::Frame(f), Stage::Count) => Ok(State::Scalar(Value::Int(f.len() as i64))),
        (State::Series(c), Stage::Count) => Ok(State::Scalar(Value::Int(c.len() as i64))),
        (State::Scalar(v), Stage::Round(n)) => Ok(State::Scalar(round_value(&v, *n))),
        (State::Series(c), Stage::Round(n)) => {
            let vals: Vec<Value> = c.values().iter().map(|v| round_value(v, *n)).collect();
            Ok(State::Series(Column::new(c.name(), vals)))
        }
        (State::Frame(f), Stage::Round(_)) => Ok(State::Frame(f)),
        (state, stage) => Err(invalid(stage, &state)),
    }
}

fn series_sorted(c: &Column, ascending: bool, n: usize) -> Column {
    let mut vals: Vec<Value> = c
        .values()
        .iter()
        .filter(|v| !v.is_null())
        .cloned()
        .collect();
    vals.sort_by(|a, b| {
        let o = a.compare(b);
        if ascending {
            o
        } else {
            o.reverse()
        }
    });
    vals.truncate(n);
    Column::new(c.name(), vals)
}

fn round_value(v: &Value, digits: usize) -> Value {
    match v {
        Value::Float(f) => {
            let m = 10f64.powi(digits as i32);
            Value::Float((f * m).round() / m)
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use prov_model::{TaskMessage, TaskMessageBuilder};

    fn run(text: &str, df: &DataFrame) -> QueryOutput {
        execute(&parse(text).unwrap(), df).unwrap()
    }

    fn chem_frame() -> DataFrame {
        let bonds = [
            ("C-H_1", 99.1, 100.7, 92.9),
            ("C-H_2", 98.6, 100.2, 92.4),
            ("C-C_1", 87.1, 88.9, 81.0),
            ("O-H_1", 104.8, 106.3, 97.9),
            ("C-H_3", 98.9, 100.5, 92.7),
        ];
        let msgs: Vec<TaskMessage> = bonds
            .iter()
            .enumerate()
            .map(|(i, (bond, e, h, g))| {
                TaskMessageBuilder::new(format!("t{i}"), "wf", "run_individual_bde")
                    .generates("bond_id", *bond)
                    .generates("bd_energy", *e)
                    .generates("bd_enthalpy", *h)
                    .generates("bd_free_energy", *g)
                    .span(100.0 + i as f64, 101.0 + i as f64 * 2.0)
                    .host(format!("frontier0008{}", i % 2))
                    .build()
            })
            .collect();
        DataFrame::from_messages(&msgs)
    }

    #[test]
    fn filter_and_count() {
        let df = chem_frame();
        let out = run(r#"len(df[df["bond_id"].str.contains("C-H")])"#, &df);
        assert_eq!(out, QueryOutput::Scalar(Value::Int(3)));
    }

    #[test]
    fn scalar_mean_of_filtered() {
        let df = chem_frame();
        let out = run(
            r#"df[df["bond_id"].str.contains("C-H")]["bd_enthalpy"].mean()"#,
            &df,
        );
        let v = out.as_scalar().unwrap().as_f64().unwrap();
        assert!((v - (100.7 + 100.2 + 100.5) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn loc_idxmax_row_and_cell() {
        let df = chem_frame();
        let out = run(r#"df.loc[df["bd_free_energy"].idxmax()]"#, &df);
        match out {
            QueryOutput::Row(m) => {
                assert_eq!(m.get("bond_id").unwrap().as_str(), Some("O-H_1"))
            }
            other => panic!("expected row, got {other:?}"),
        }
        let out = run(r#"df.loc[df["bd_enthalpy"].idxmin(), "bond_id"]"#, &df);
        assert_eq!(out, QueryOutput::Scalar(Value::Str("C-C_1".into())));
    }

    #[test]
    fn groupby_mean() {
        let df = chem_frame();
        let out = run(r#"df.groupby("hostname")["duration"].mean()"#, &df);
        let f = out.as_frame().unwrap();
        assert_eq!(f.len(), 2);
        assert!(f.has_column("hostname") && f.has_column("duration"));
    }

    #[test]
    fn groupby_aggmap_and_size() {
        let df = chem_frame();
        let out = run(
            r#"df.groupby("hostname").agg({"bd_energy": "max", "duration": "mean"})"#,
            &df,
        );
        let f = out.as_frame().unwrap();
        assert!(f.has_column("bd_energy_max"));
        assert!(f.has_column("duration_mean"));
        let out = run(r#"df.groupby("hostname").size()"#, &df);
        assert_eq!(out.as_frame().unwrap().len(), 2);
    }

    #[test]
    fn sort_head_select() {
        let df = chem_frame();
        let out = run(
            r#"df.sort_values("bd_energy", ascending=False)[["bond_id", "bd_energy"]].head(1)"#,
            &df,
        );
        let f = out.as_frame().unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(
            f.column("bond_id").unwrap().get(0),
            Some(&Value::Str("O-H_1".into()))
        );
    }

    #[test]
    fn nlargest_equivalent_to_sort_head() {
        let df = chem_frame();
        let a = run(r#"df.nlargest(2, "bd_energy")[["bond_id"]]"#, &df);
        let b = run(
            r#"df.sort_values("bd_energy", ascending=False).head(2)[["bond_id"]]"#,
            &df,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn scalar_arithmetic_between_pipelines() {
        let df = chem_frame();
        let out = run(r#"df["ended_at"].max() - df["started_at"].min()"#, &df);
        let v = out.as_scalar().unwrap().as_f64().unwrap();
        assert!((v - 9.0).abs() < 1e-9);
    }

    #[test]
    fn unique_and_value_counts() {
        let df = chem_frame();
        let out = run(r#"df["hostname"].unique()"#, &df);
        assert_eq!(out.len(), 2);
        let out = run(r#"df["hostname"].value_counts()"#, &df);
        let f = out.as_frame().unwrap();
        assert_eq!(f.column("count").unwrap().get(0), Some(&Value::Int(3)));
    }

    #[test]
    fn unknown_column_error_propagates() {
        let df = chem_frame();
        let err = execute(&parse(r#"df["node"].mean()"#).unwrap(), &df).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Frame(FrameError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn bare_groupby_is_error() {
        let df = chem_frame();
        let err = execute(&parse(r#"df.groupby("hostname")"#).unwrap(), &df).unwrap_err();
        assert_eq!(err, ExecError::UnconsumedGroupBy);
    }

    #[test]
    fn invalid_stage_combination() {
        let df = chem_frame();
        let err = execute(&parse(r#"df.mean()"#).unwrap(), &df).unwrap_err();
        assert!(matches!(err, ExecError::InvalidStage { .. }));
    }

    #[test]
    fn round_applies_to_scalar() {
        let df = chem_frame();
        let out = run(r#"df["bd_energy"].mean().round(1)"#, &df);
        let v = out.as_scalar().unwrap().as_f64().unwrap();
        assert_eq!(v, 97.7);
    }

    #[test]
    fn render_of_outputs() {
        let df = chem_frame();
        assert!(run("df.head(2)", &df).render().contains("bond_id"));
        assert!(!run(r#"df["bond_id"].unique()"#, &df).render().is_empty());
    }

    #[test]
    fn empty_frame_idxmax_is_error() {
        let df = chem_frame().filter(&dataframe::col("bd_energy").gt(dataframe::lit(1e9)));
        let err = execute(&parse(r#"df.loc[df["bd_energy"].idxmax()]"#).unwrap(), &df).unwrap_err();
        assert_eq!(err, ExecError::EmptyInput);
    }
}
