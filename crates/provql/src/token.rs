//! Tokenizer for the pandas-style query subset.

use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`df`, `groupby`, `True`, ...).
    Ident(String),
    /// Quoted string (single or double quotes).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation / operator, e.g. `(`, `[`, `==`, `&`.
    Punct(&'static str),
}

impl Token {
    /// True when this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Token::Punct(x) if *x == p)
    }

    /// True when this token is the given identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Token::Ident(x) if x == name)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Punct(p) => write!(f, "{p}"),
        }
    }
}

/// Tokenization error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

const PUNCTS2: &[&str] = &["==", "!=", "<=", ">="];
const PUNCTS1: &[(&str, char)] = &[
    ("(", '('),
    (")", ')'),
    ("[", '['),
    ("]", ']'),
    ("{", '{'),
    ("}", '}'),
    (".", '.'),
    (",", ','),
    (":", ':'),
    ("=", '='),
    ("<", '<'),
    (">", '>'),
    ("&", '&'),
    ("|", '|'),
    ("~", '~'),
    ("+", '+'),
    ("-", '-'),
    ("*", '*'),
    ("/", '/'),
];

/// Tokenize query text. Python comments (`# ...`) are skipped to EOL.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        if b == b'#' {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        if b == b'"' || b == b'\'' {
            let quote = b;
            let start = pos;
            pos += 1;
            let mut s = String::new();
            loop {
                if pos >= bytes.len() {
                    return Err(LexError {
                        offset: start,
                        message: "unterminated string".into(),
                    });
                }
                let c = bytes[pos];
                if c == quote {
                    pos += 1;
                    break;
                }
                if c == b'\\' && pos + 1 < bytes.len() {
                    let esc = bytes[pos + 1];
                    s.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'\\' => '\\',
                        b'\'' => '\'',
                        b'"' => '"',
                        other => other as char,
                    });
                    pos += 2;
                    continue;
                }
                // Raw UTF-8 passthrough.
                let ch_len = utf8_len(c);
                let chunk =
                    std::str::from_utf8(&bytes[pos..pos + ch_len]).map_err(|_| LexError {
                        offset: pos,
                        message: "invalid UTF-8 in string".into(),
                    })?;
                s.push_str(chunk);
                pos += ch_len;
            }
            out.push(Token::Str(s));
            continue;
        }
        if b.is_ascii_digit()
            || (b == b'.' && pos + 1 < bytes.len() && bytes[pos + 1].is_ascii_digit())
        {
            let start = pos;
            let mut is_float = false;
            while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                pos += 1;
            }
            if pos < bytes.len() && bytes[pos] == b'.' {
                // Only a float if followed by a digit (else it is `.head`).
                if pos + 1 < bytes.len() && bytes[pos + 1].is_ascii_digit() {
                    is_float = true;
                    pos += 1;
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                }
            }
            if pos < bytes.len() && (bytes[pos] == b'e' || bytes[pos] == b'E') {
                is_float = true;
                pos += 1;
                if pos < bytes.len() && (bytes[pos] == b'+' || bytes[pos] == b'-') {
                    pos += 1;
                }
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
            }
            let text = &input[start..pos];
            if is_float {
                out.push(Token::Float(text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("bad float '{text}'"),
                })?));
            } else {
                out.push(Token::Int(text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("bad int '{text}'"),
                })?));
            }
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = pos;
            while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
                pos += 1;
            }
            out.push(Token::Ident(input[start..pos].to_string()));
            continue;
        }
        if pos + 1 < bytes.len() {
            let two = &input[pos..pos + 2];
            if let Some(p) = PUNCTS2.iter().find(|&&p| p == two) {
                out.push(Token::Punct(p));
                pos += 2;
                continue;
            }
        }
        let one = &input[pos..pos + 1];
        if let Some((p, _)) = PUNCTS1.iter().find(|(p, _)| *p == one) {
            out.push(Token::Punct(p));
            pos += 1;
            continue;
        }
        return Err(LexError {
            offset: pos,
            message: format!("unexpected character '{}'", b as char),
        });
    }
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_typical_query() {
        let toks =
            tokenize("df[df[\"cpu\"] >= 50.5].groupby('host')['dur'].mean().head(3)").unwrap();
        assert!(toks.contains(&Token::Punct(">=")));
        assert!(toks.contains(&Token::Str("cpu".into())));
        assert!(toks.contains(&Token::Float(50.5)));
        assert!(toks.contains(&Token::Ident("groupby".into())));
        assert!(toks.contains(&Token::Int(3)));
    }

    #[test]
    fn dot_method_vs_float() {
        let toks = tokenize("df.head(5)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("df".into()),
                Token::Punct("."),
                Token::Ident("head".into()),
                Token::Punct("("),
                Token::Int(5),
                Token::Punct(")"),
            ]
        );
    }

    #[test]
    fn string_quotes_and_escapes() {
        let toks = tokenize(r#"'C-H' "O\"H" 'a\nb'"#).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Str("C-H".into()),
                Token::Str("O\"H".into()),
                Token::Str("a\nb".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("df # filter rows\n.head(1)").unwrap();
        assert_eq!(toks.len(), 6);
    }

    #[test]
    fn errors_positioned() {
        let e = tokenize("df['x'] ?").unwrap_err();
        assert_eq!(e.offset, 8);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'énergie'").unwrap();
        assert_eq!(toks, vec![Token::Str("énergie".into())]);
    }
}
