//! Logical query plans with index-aware pushdown.
//!
//! [`plan`] lowers a parsed [`Query`] into a tree of [`PipelinePlan`]s, one
//! per pipeline, each rooted at a [`ScanNode`]. The lowering is a rule
//! pass over the pipeline's leading filters: every conjunct the backing
//! store can serve from an index (equality on a pushable column, numeric
//! range on a range-indexed column — the store advertises both through
//! [`PushdownCapability`]) is split off into [`ScanNode::pushed`], and
//! whatever remains is recombined into [`ScanNode::residual`]. The scan
//! also carries a projection ([`ScanNode::columns`]: the column subset the
//! rest of the pipeline references) and, when the stage shape allows it, a
//! sort spec ([`ScanNode::sort`]: a leading `sort_values` over keys the
//! store can order) and a row limit — a pushed `Sort→Limit` pair is a
//! top-k request served without materializing (or sorting) the corpus.
//!
//! The planner is deliberately engine-agnostic: it knows nothing about
//! document paths, hash indexes, or shards. An executor (see
//! `prov_db::exec`) interprets the scan against its store and runs the
//! remaining [`PlanNode`]s through the ordinary stage machine
//! ([`crate::exec::execute_stages`]), so pushdown can never change query
//! semantics — only how many documents are materialized into a frame.

use crate::ast::{GraphQuery, Pipeline, Query, Stage};
use dataframe::{ArithOp, CmpOp, Expr};
use prov_model::Value;

/// What a store can answer about its pushdown support, per column.
///
/// Implemented by storage engines (e.g. `prov_db::ProvenanceDatabase`).
/// The planner only pushes a conjunct when the capability says the column
/// is servable; everything else stays in the residual filter.
pub trait PushdownCapability {
    /// Can an equality conjunct on this column be pushed into the scan?
    fn pushable_eq(&self, column: &str) -> bool;
    /// Can a range conjunct (`<`, `<=`, `>`, `>=`) on this column be
    /// pushed into the scan?
    fn pushable_range(&self, column: &str) -> bool;
    /// Is this column stored columnar, so the executor can evaluate a
    /// residual `col op lit` conjunct (any comparison operator, including
    /// `!=`) directly over its column vector, and materialize the column
    /// into a frame without decoding documents? Defaults to `false` for
    /// engines without a columnar layer.
    fn pushable_columnar(&self, _column: &str) -> bool {
        false
    }
    /// Can the scan return its rows ordered by this column — i.e. can a
    /// leading `sort_values` key (and a `head` behind it) be pushed into
    /// the scan as a top-k request? Engines answer `true` for columns they
    /// can order without materializing a frame: sorted-index keys and
    /// columnar-resident scalar fields. Defaults to `false`.
    fn pushable_sort(&self, _column: &str) -> bool {
        false
    }
    /// Can graph path primitives (`upstream`/`downstream`/`paths`/`khop`)
    /// be executed against a compacted graph snapshot (CSR kernels)
    /// instead of the locking adjacency-map reference path? A store-level
    /// capability, not per-column. Defaults to `false` — frame-only
    /// engines fall back to whatever graph reference they have.
    fn pushable_graph(&self) -> bool {
        false
    }
}

/// Push everything structurally pushable (used by tests and by callers
/// that apply their own capability check later).
#[derive(Debug, Clone, Copy, Default)]
pub struct PushAll;

impl PushdownCapability for PushAll {
    fn pushable_eq(&self, _column: &str) -> bool {
        true
    }
    fn pushable_range(&self, _column: &str) -> bool {
        true
    }
    fn pushable_columnar(&self, _column: &str) -> bool {
        true
    }
    fn pushable_sort(&self, _column: &str) -> bool {
        true
    }
    fn pushable_graph(&self) -> bool {
        true
    }
}

/// Comparison operator of a pushed filter (the index-servable subset of
/// [`CmpOp`]: no `!=`, which a hash probe cannot answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOp {
    /// Equality — servable from a hash index.
    Eq,
    /// Strictly less than — servable from a sorted numeric index.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl PushOp {
    fn from_cmp(op: CmpOp) -> Option<PushOp> {
        match op {
            CmpOp::Eq => Some(PushOp::Eq),
            CmpOp::Lt => Some(PushOp::Lt),
            CmpOp::Le => Some(PushOp::Le),
            CmpOp::Gt => Some(PushOp::Gt),
            CmpOp::Ge => Some(PushOp::Ge),
            CmpOp::Ne => None,
        }
    }
}

/// One conjunct pushed into the scan: `column op value`.
#[derive(Debug, Clone, PartialEq)]
pub struct PushedFilter {
    /// Frame column name (the executor maps it to its storage path).
    pub column: String,
    /// Comparison operator.
    pub op: PushOp,
    /// Literal comparand.
    pub value: Value,
}

/// One conjunct evaluable over a column vector: `column op value`, with
/// the full comparison-operator set (unlike [`PushedFilter`], `!=` is
/// allowed — a vector scan, unlike a hash probe, can answer it). The
/// executor must apply the *frame* comparison semantics
/// (`dataframe::cmp_matches`): null-to-false, Int/Float coercion.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarFilter {
    /// Frame column name (also the columnar vector's name).
    pub column: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal comparand (never Null; null literals stay residual).
    pub value: Value,
}

/// One membership conjunct evaluable over a column vector:
/// `column.isin([...])`. Like [`ColumnarFilter`] it needs no index — the
/// scan compiles the list once (to a dictionary code set for string
/// columns, an `f64` probe list for numeric ones) and tests each row's
/// encoded cell, instead of re-comparing the literal list per row. The
/// executor must apply the frame's membership semantics: any-match under
/// `dataframe::values_equal`.
#[derive(Debug, Clone, PartialEq)]
pub struct InListFilter {
    /// Frame column name (also the columnar vector's name).
    pub column: String,
    /// Literal membership list (never contains Null; lists with a null
    /// element stay residual, mirroring the null-literal rule for
    /// comparisons).
    pub values: Vec<Value>,
}

/// The leaf of every pipeline plan: which documents to touch and which
/// columns to materialize from them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanNode {
    /// Index-servable conjuncts of the pipeline's leading filters.
    pub pushed: Vec<PushedFilter>,
    /// Conjuncts with no index but a columnar vector: evaluated by the
    /// scan over the column vectors (bitset survivors), never materialized
    /// into the frame.
    pub columnar: Vec<ColumnarFilter>,
    /// Membership conjuncts (`col.isin([...])`) over columnar columns:
    /// evaluated by the scan alongside [`columnar`], never materialized.
    ///
    /// [`columnar`]: ScanNode::columnar
    pub isin: Vec<InListFilter>,
    /// Conjuncts the store cannot serve, recombined in original order;
    /// applied as an ordinary row filter on the scanned frame.
    pub residual: Option<Expr>,
    /// Projection pushdown: the column subset the pipeline references.
    /// `None` means the pipeline's output exposes the whole frame width,
    /// which only the full corpus-wide column union can answer — such
    /// plans are not servable by a projected scan.
    pub columns: Option<Vec<String>>,
    /// True when every column in [`columns`] is columnar-capable: the
    /// executor can answer the scan entirely from column vectors, without
    /// decoding a single document — which also makes *unselective*
    /// pipelines (no pushed conjunct at all, e.g. a corpus-wide group-by)
    /// cheaper through the scan than through a cached full frame rebuild.
    ///
    /// [`columns`]: ScanNode::columns
    pub columnar_only: bool,
    /// Sort pushdown: the keys of a leading `sort_values` whose columns
    /// the store can all order ([`PushdownCapability::pushable_sort`]),
    /// reached with no residual filter in front. The executor must return
    /// rows in the *frame's* sort order for these keys (nulls last, ties
    /// by insertion order, `Value::compare` semantics); the original
    /// [`PlanNode::Sort`] is kept downstream as a safety net — a stable
    /// re-sort of already-ordered rows is the identity whenever the key
    /// comparator is a strict weak order, and executors must fall back to
    /// the oracle in the one case it is not (NaN keys).
    pub sort: Vec<(String, bool)>,
    /// Row-limit pushdown, set only when no residual filter and no
    /// *unpushed* reordering stage precedes the `head` that produced it
    /// (columnar and in-list conjuncts do not block it: the scan applies
    /// them before counting; a pushed sort does not block it: the scan
    /// orders before it truncates — that pairing is exactly a top-k scan).
    pub limit: Option<usize>,
}

/// A relational operator applied after the scan, in order.
///
/// `Filter`/`Project`/`Sort`/`Limit` are the classic shapes; everything
/// the IR has no dedicated node for (group-by, series ops, computed
/// expressions) rides along as [`PlanNode::Residual`] and is executed by
/// the stage machine unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    /// Row filter (a non-leading filter, or one following other stages).
    Filter(Expr),
    /// Column projection.
    Project(Vec<String>),
    /// Multi-key sort (`(column, ascending)` pairs).
    Sort(Vec<(String, bool)>),
    /// First-n row limit.
    Limit(usize),
    /// Any stage without a dedicated node shape.
    Residual(Stage),
}

impl PlanNode {
    /// The stage this node executes as (plans never change semantics, so
    /// every node maps back onto the stage machine).
    pub fn to_stage(&self) -> Stage {
        match self {
            PlanNode::Filter(e) => Stage::Filter(e.clone()),
            PlanNode::Project(cols) => Stage::Select(cols.clone()),
            PlanNode::Sort(keys) => Stage::SortValues(keys.clone()),
            PlanNode::Limit(n) => Stage::Head(*n),
            PlanNode::Residual(s) => s.clone(),
        }
    }

    fn from_stage(stage: &Stage) -> PlanNode {
        match stage {
            Stage::Filter(e) => PlanNode::Filter(e.clone()),
            Stage::Select(cols) => PlanNode::Project(cols.clone()),
            Stage::SortValues(keys) => PlanNode::Sort(keys.clone()),
            Stage::Head(n) => PlanNode::Limit(*n),
            other => PlanNode::Residual(other.clone()),
        }
    }
}

/// Plan of one pipeline: a scan followed by the remaining operators.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelinePlan {
    /// The scan leaf.
    pub scan: ScanNode,
    /// Operators applied to the scanned frame, in order.
    pub ops: Vec<PlanNode>,
}

impl PipelinePlan {
    /// True when the scan pushes at least one filter — i.e. planning
    /// found index-servable work (used by diagnostics and benchmarks).
    pub fn has_pushdown(&self) -> bool {
        !self.scan.pushed.is_empty()
    }
}

/// A lowered graph path primitive: the traversal itself plus the engine
/// gate the capability answered at planning time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphPlan {
    /// The traversal to run (the AST node is already the logical plan —
    /// a path primitive has no filters to split or columns to project).
    pub query: GraphQuery,
    /// True when the store advertised
    /// [`PushdownCapability::pushable_graph`]: the executor runs the CSR
    /// snapshot kernels; false keeps it on the locking adjacency-map
    /// reference path (the differential oracle).
    pub pushable: bool,
}

/// Plan of a whole query; mirrors the [`Query`] tree shape.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryPlan {
    /// A planned pipeline.
    Pipeline(PipelinePlan),
    /// `len(<plan>)`.
    Len(Box<QueryPlan>),
    /// Scalar arithmetic between two plans.
    Binary(Box<QueryPlan>, ArithOp, Box<QueryPlan>),
    /// Bare numeric literal.
    Number(f64),
    /// A graph path primitive.
    Graph(GraphPlan),
}

impl QueryPlan {
    /// All pipeline plans in the tree (for inspection and tests).
    pub fn pipelines(&self) -> Vec<&PipelinePlan> {
        match self {
            QueryPlan::Pipeline(p) => vec![p],
            QueryPlan::Len(q) => q.pipelines(),
            QueryPlan::Binary(a, _, b) => {
                let mut v = a.pipelines();
                v.extend(b.pipelines());
                v
            }
            QueryPlan::Number(_) | QueryPlan::Graph(_) => Vec::new(),
        }
    }

    /// True when every pipeline in the tree has a bounded column set,
    /// i.e. the whole query is servable by projected scans.
    pub fn fully_projected(&self) -> bool {
        self.pipelines().iter().all(|p| p.scan.columns.is_some())
    }
}

/// Lower a query into its logical plan, splitting filters against the
/// given store capability.
pub fn plan(query: &Query, caps: &dyn PushdownCapability) -> QueryPlan {
    match query {
        Query::Pipeline(p) => QueryPlan::Pipeline(plan_pipeline(p, caps, false)),
        Query::Len(q) => {
            // Inside `len(...)` only the row count of the result matters,
            // so an unbounded frame output can still be projected down to
            // the columns its stages read (unless a stage's row count
            // depends on the full width, e.g. drop_duplicates()).
            let inner = match q.as_ref() {
                Query::Pipeline(p) => QueryPlan::Pipeline(plan_pipeline(p, caps, true)),
                other => plan(other, caps),
            };
            QueryPlan::Len(Box::new(inner))
        }
        Query::Binary(a, op, b) => {
            QueryPlan::Binary(Box::new(plan(a, caps)), *op, Box::new(plan(b, caps)))
        }
        Query::Number(n) => QueryPlan::Number(*n),
        Query::Graph(g) => QueryPlan::Graph(GraphPlan {
            query: g.clone(),
            pushable: caps.pushable_graph(),
        }),
    }
}

fn plan_pipeline(p: &Pipeline, caps: &dyn PushdownCapability, count_only: bool) -> PipelinePlan {
    let mut scan = ScanNode::default();

    // Split the leading run of filters into pushed, columnar, and residual
    // conjuncts.
    let mut rest = p.stages.as_slice();
    let mut residuals: Vec<Expr> = Vec::new();
    while let Some((Stage::Filter(e), tail)) = rest.split_first() {
        split_filter(e, caps, &mut scan, &mut residuals);
        rest = tail;
    }
    scan.residual = residuals.into_iter().reduce(Expr::and);

    // Projection pushdown: whether the output is column-bounded is a
    // property of the original stage shape, but the column *set* is
    // recomputed after the filter split — a conjunct the store serves
    // shouldn't drag its column into the materialized frame.
    if projection(p, count_only).is_some() {
        let mut remaining: Vec<Stage> = Vec::with_capacity(rest.len() + 1);
        if let Some(r) = &scan.residual {
            remaining.push(Stage::Filter(r.clone()));
        }
        remaining.extend(rest.iter().cloned());
        scan.columns = Some(Pipeline { stages: remaining }.referenced_columns());
    }
    scan.columnar_only = scan
        .columns
        .as_ref()
        .is_some_and(|cols| cols.iter().all(|c| caps.pushable_columnar(c)));

    let ops: Vec<PlanNode> = rest.iter().map(PlanNode::from_stage).collect();

    // Sort/limit pushdown: walking through column-preserving,
    // order-preserving stages only, with no residual filter in front —
    // a sort_values whose keys the store can all order becomes the scan's
    // sort spec (one sort only: a second sort re-orders and stops the
    // walk), and a head() behind it becomes the scan's limit. Together
    // they turn the scan into a top-k request; a head() with no pushed
    // sort in front still sees exactly the first n scanned rows, as
    // before. The Sort and Limit nodes are kept downstream (a stable
    // re-sort of ordered rows is the identity for strict-weak key
    // comparators, and head is idempotent), so pushdown remains an upper
    // bound, never a semantic change.
    if scan.residual.is_none() {
        for op in &ops {
            match op {
                PlanNode::Project(_) | PlanNode::Residual(Stage::ResetIndex) => continue,
                PlanNode::Sort(keys)
                    if scan.sort.is_empty() && keys.iter().all(|(c, _)| caps.pushable_sort(c)) =>
                {
                    scan.sort = keys.clone();
                }
                PlanNode::Limit(n) => {
                    scan.limit = Some(*n);
                    break;
                }
                other => {
                    // A later (unpushed or second) sort re-orders every
                    // row: an already-pushed ordering would be computed
                    // only to be thrown away, so retract it and leave the
                    // scan a plain filter scan. Any other stage keeps it —
                    // order-sensitive stages (group-by first-seen order,
                    // dedup first-occurrence, value_counts ties) observe
                    // the pushed ordering.
                    if matches!(other, PlanNode::Sort(_)) {
                        scan.sort.clear();
                    }
                    break;
                }
            }
        }
    }

    PipelinePlan { scan, ops }
}

/// Recursively split a filter expression: `And` nodes are walked, every
/// `column op literal` conjunct the capability can serve from an index is
/// pushed, every remaining `column op literal` conjunct on a columnar
/// column becomes a [`ColumnarFilter`], `column.isin([...])` with a
/// null-free list on a columnar column becomes an [`InListFilter`], and
/// anything else lands in `residuals` (original left-to-right order).
fn split_filter(
    e: &Expr,
    caps: &dyn PushdownCapability,
    scan: &mut ScanNode,
    residuals: &mut Vec<Expr>,
) {
    match e {
        Expr::And(a, b) => {
            split_filter(a, caps, scan, residuals);
            split_filter(b, caps, scan, residuals);
        }
        Expr::Cmp(a, op, b) => {
            // `col op lit` or the flipped `lit op col`. Null literals are
            // never pushed: the frame executor short-circuits any null
            // comparison to false, while a store compares a present value
            // against Null by kind-tag ordering — opposite answers.
            let normalized = match (a.as_ref(), b.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) if !v.is_null() => Some((c, *op, v)),
                (Expr::Lit(v), Expr::Col(c)) if !v.is_null() => Some((c, op.flipped(), v)),
                _ => None,
            };
            let servable = normalized.and_then(|(c, op, v)| {
                let push_op = PushOp::from_cmp(op)?;
                let ok = match push_op {
                    PushOp::Eq => caps.pushable_eq(c),
                    _ => caps.pushable_range(c),
                };
                ok.then(|| PushedFilter {
                    column: c.clone(),
                    op: push_op,
                    value: v.clone(),
                })
            });
            if let Some(f) = servable {
                scan.pushed.push(f);
                return;
            }
            // No index, but a column vector: the scan can still evaluate
            // the conjunct without materializing the column into the frame.
            if let Some((c, op, v)) = normalized {
                if caps.pushable_columnar(c) {
                    scan.columnar.push(ColumnarFilter {
                        column: c.clone(),
                        op,
                        value: v.clone(),
                    });
                    return;
                }
            }
            residuals.push(e.clone());
        }
        Expr::IsIn(a, values) => {
            // A membership list compiles to a dictionary code set, so a
            // columnar column serves it with no index. Lists containing
            // a null element stay residual — same rule as null comparison
            // literals: a pushed literal value is never Null.
            if let Expr::Col(c) = a.as_ref() {
                if caps.pushable_columnar(c) && values.iter().all(|v| !v.is_null()) {
                    scan.isin.push(InListFilter {
                        column: c.clone(),
                        values: values.clone(),
                    });
                    return;
                }
            }
            residuals.push(e.clone());
        }
        other => residuals.push(other.clone()),
    }
}

/// The projection a pipeline's output needs, or `None` when it exposes
/// the whole frame width.
///
/// Walking the stages in order, the first stage that *bounds* the output
/// to named columns (projection, series selection, group-by, scalar
/// count, single-cell loc) settles the answer at the pipeline's
/// referenced-column set; the first stage whose semantics *consume* the
/// full width (whole-row loc, describe, subset-less drop_duplicates)
/// settles it at `None`. Column-preserving stages (filter, sort,
/// head/tail, …) keep walking. `count_only` relaxes the frame-width
/// requirement for `len(...)`-wrapped pipelines, where only the row count
/// of the output survives — except for stages whose row count itself
/// depends on the full width.
fn projection(p: &Pipeline, count_only: bool) -> Option<Vec<String>> {
    for stage in &p.stages {
        match stage {
            Stage::Select(_)
            | Stage::Col(_)
            | Stage::GroupBy(_)
            | Stage::Count
            | Stage::LocIdx { cell: Some(_), .. } => return Some(p.referenced_columns()),
            Stage::LocIdx { cell: None, .. } | Stage::Describe => {
                return count_only.then(|| p.referenced_columns())
            }
            Stage::DropDuplicates(subset) if subset.is_empty() => return None,
            _ => {}
        }
    }
    // No bounding stage: the output is the (possibly filtered/sorted)
    // full-width frame — unless only its row count is observed.
    count_only.then(|| p.referenced_columns())
}

// ---------------------------------------------------------------------
// Plan normalization: the canonical cache key.
// ---------------------------------------------------------------------

/// Canonical, collision-free rendering of a plan, used (together with a
/// store generation) as a result-cache key. Two plans share a key exactly
/// when they are semantically interchangeable under the stage machine:
///
/// * **Commutative conjunct order** — the scan's pushed / columnar /
///   in-list conjunct lists are each a conjunction, so they are rendered
///   sorted; a residual `And`/`Or` chain is flattened and its operands
///   sorted (boolean row filters have no short-circuit side effects).
/// * **Literal spellings** — in comparison and membership positions the
///   frame coerces `Int`/`Float` ([`dataframe::cmp_matches`] /
///   [`dataframe::values_equal`]), so `Int(5)` and `Float(5.0)` render
///   identically there. Everywhere else (arithmetic, where `5` and `5.0`
///   can produce differently-typed outputs) literals render exactly.
/// * **Projection sets** — a scan's column set is rendered sorted: the
///   output column order of every column-bounded pipeline is fixed by its
///   downstream ops (projection, series selection, group-by), never by
///   the scan's materialization order.
///
/// Order-sensitive parts — sort keys, op sequences, `Binary` operand
/// sides — render verbatim. The string is exact (no hashing), so distinct
/// plans can never alias an entry; [`fingerprint`] derives a compact
/// 64-bit digest for diagnostics and tests.
pub fn cache_key(plan: &QueryPlan) -> String {
    match plan {
        QueryPlan::Pipeline(p) => {
            let ops: Vec<String> = p.ops.iter().map(canon_node).collect();
            format!("p({};[{}])", canon_scan(&p.scan), ops.join(";"))
        }
        QueryPlan::Len(q) => format!("len({})", cache_key(q)),
        QueryPlan::Binary(a, op, b) => {
            format!("bin({},{:?},{})", cache_key(a), op, cache_key(b))
        }
        QueryPlan::Number(n) => format!("num({:016x})", n.to_bits()),
        // The `pushable` gate is deliberately absent: both engines answer
        // a path primitive identically (differentially asserted), so a
        // cached result is valid regardless of which one produced it.
        QueryPlan::Graph(g) => match &g.query {
            GraphQuery::Upstream { node, depth } => format!("graph(up,{node:?},{depth})"),
            GraphQuery::Downstream { node, depth } => format!("graph(down,{node:?},{depth})"),
            GraphQuery::Paths { from, to } => format!("graph(paths,{from:?},{to:?})"),
            GraphQuery::Khop { node, k } => format!("graph(khop,{node:?},{k})"),
        },
    }
}

/// FNV-1a digest of [`cache_key`] — a compact plan identity for tests,
/// diagnostics, and logs. The cache itself keys on the full string (a
/// 64-bit hash collision must not be able to alias two results).
pub fn fingerprint(plan: &QueryPlan) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in cache_key(plan).bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn canon_scan(s: &ScanNode) -> String {
    let mut pushed: Vec<String> = s
        .pushed
        .iter()
        .map(|f| format!("{}:{:?}:{}", f.column, f.op, canon_cmp_lit(&f.value)))
        .collect();
    pushed.sort_unstable();
    let mut columnar: Vec<String> = s
        .columnar
        .iter()
        .map(|f| format!("{}:{:?}:{}", f.column, f.op, canon_cmp_lit(&f.value)))
        .collect();
    columnar.sort_unstable();
    let mut isin: Vec<String> = s
        .isin
        .iter()
        .map(|f| {
            // Membership is any-match: list order and duplicates are
            // invisible to the filter's verdict.
            let mut vals: Vec<String> = f.values.iter().map(canon_cmp_lit).collect();
            vals.sort_unstable();
            vals.dedup();
            format!("{}:[{}]", f.column, vals.join(","))
        })
        .collect();
    isin.sort_unstable();
    let residual = s.residual.as_ref().map(canon_expr).unwrap_or_default();
    let columns = s.columns.as_ref().map(|cols| {
        let mut cols: Vec<&str> = cols.iter().map(String::as_str).collect();
        cols.sort_unstable();
        cols.join(",")
    });
    let sort: Vec<String> = s.sort.iter().map(|(c, asc)| format!("{c}:{asc}")).collect();
    format!(
        "push[{}]col[{}]in[{}]res[{residual}]proj[{:?}]sort[{}]lim[{:?}]",
        pushed.join(","),
        columnar.join(","),
        isin.join(","),
        columns,
        sort.join(","),
        s.limit,
    )
}

fn canon_node(n: &PlanNode) -> String {
    match n {
        PlanNode::Filter(e) => format!("filter({})", canon_expr(e)),
        PlanNode::Project(cols) => format!("project({})", cols.join(",")),
        PlanNode::Sort(keys) => {
            let keys: Vec<String> = keys.iter().map(|(c, asc)| format!("{c}:{asc}")).collect();
            format!("sort({})", keys.join(","))
        }
        PlanNode::Limit(n) => format!("limit({n})"),
        // Residual stages carry no expressions (`Filter` always maps to
        // `PlanNode::Filter`), so their derived `Debug` form is already
        // canonical and collision-free.
        PlanNode::Residual(s) => format!("stage({s:?})"),
    }
}

/// Canonical row-filter expression: `And`/`Or` chains flatten to sorted
/// operand lists (boolean evaluation is total — no errors, no side
/// effects — so operand order is unobservable); literals directly under a
/// comparison or membership test canonicalize numerically; everything
/// else renders structurally.
fn canon_expr(e: &Expr) -> String {
    match e {
        Expr::And(..) => {
            let mut ops = Vec::new();
            flatten_bool(e, true, &mut ops);
            ops.sort_unstable();
            format!("and({})", ops.join("&"))
        }
        Expr::Or(..) => {
            let mut ops = Vec::new();
            flatten_bool(e, false, &mut ops);
            ops.sort_unstable();
            format!("or({})", ops.join("|"))
        }
        Expr::Cmp(a, op, b) => {
            format!(
                "cmp({},{:?},{})",
                canon_cmp_operand(a),
                op,
                canon_cmp_operand(b)
            )
        }
        Expr::Arith(a, op, b) => format!("arith({},{:?},{})", canon_expr(a), op, canon_expr(b)),
        Expr::Not(x) => format!("not({})", canon_expr(x)),
        Expr::Col(c) => format!("col({c})"),
        Expr::Lit(v) => format!("lit({})", exact_lit(v)),
        Expr::StrContains(x, pat, ci) => {
            format!("contains({},{pat:?},{ci})", canon_expr(x))
        }
        Expr::StrStartsWith(x, p) => format!("starts({},{p:?})", canon_expr(x)),
        Expr::IsIn(x, list) => {
            let mut vals: Vec<String> = list.iter().map(canon_cmp_lit).collect();
            vals.sort_unstable();
            vals.dedup();
            format!("isin({},[{}])", canon_expr(x), vals.join(","))
        }
        Expr::IsNull(x) => format!("isnull({})", canon_expr(x)),
        Expr::NotNull(x) => format!("notnull({})", canon_expr(x)),
    }
}

fn flatten_bool(e: &Expr, and: bool, out: &mut Vec<String>) {
    match (e, and) {
        (Expr::And(a, b), true) | (Expr::Or(a, b), false) => {
            flatten_bool(a, and, out);
            flatten_bool(b, and, out);
        }
        _ => out.push(canon_expr(e)),
    }
}

/// A comparison operand: literals canonicalize (the comparison itself
/// coerces `Int`/`Float`), sub-expressions render recursively.
fn canon_cmp_operand(e: &Expr) -> String {
    match e {
        Expr::Lit(v) => format!("lit({})", canon_cmp_lit(v)),
        other => canon_expr(other),
    }
}

/// A literal in a coercing position (comparison comparand or membership
/// list element): integer-valued floats exactly representable as `i64`
/// collapse onto the integer spelling — [`dataframe::cmp_matches`] and
/// [`dataframe::values_equal`] cannot tell `Int(5)` from `Float(5.0)`.
/// The round-trip guard (`i as f64 == *f`) keeps large integers whose
/// `f64` image is inexact on their own exact spellings.
fn canon_cmp_lit(v: &Value) -> String {
    match v {
        Value::Float(f) if f.is_finite() && f.trunc() == *f => {
            let i = *f as i64;
            if i as f64 == *f {
                format!("n{i}")
            } else {
                exact_lit(v)
            }
        }
        Value::Int(n) => format!("n{n}"),
        other => exact_lit(other),
    }
}

/// A literal in a non-coercing position, rendered exactly (collision-free
/// across kinds: every kind gets its own prefix, strings are
/// debug-escaped).
fn exact_lit(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => format!("b{b}"),
        Value::Int(n) => format!("i{n}"),
        Value::Float(f) => format!("f{:016x}", f.to_bits()),
        Value::Str(s) => format!("s{:?}", s.as_str()),
        Value::Array(a) => {
            let vals: Vec<String> = a.iter().map(exact_lit).collect();
            format!("[{}]", vals.join(","))
        }
        Value::Object(m) => {
            let vals: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{:?}:{}", k.as_str(), exact_lit(v)))
                .collect();
            format!("{{{}}}", vals.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use dataframe::{col, lit};

    /// Test capability with a broad pushable set (the common Listing-1
    /// scalar fields for equality, timestamps for ranges) — planner
    /// mechanics are capability-agnostic; engines advertise narrower
    /// sets matching their actual indexes.
    struct CommonFields;

    impl PushdownCapability for CommonFields {
        fn pushable_eq(&self, column: &str) -> bool {
            matches!(
                column,
                "task_id"
                    | "campaign_id"
                    | "workflow_id"
                    | "activity_id"
                    | "hostname"
                    | "status"
                    | "type"
                    | "started_at"
                    | "ended_at"
            )
        }
        fn pushable_range(&self, column: &str) -> bool {
            matches!(column, "started_at" | "ended_at")
        }
    }

    fn plan_text(text: &str) -> QueryPlan {
        plan(&parse(text).unwrap(), &CommonFields)
    }

    /// [`CommonFields`] plus a columnar layer over the hot scalar set
    /// (mirroring `prov_db`'s sidecar advertisement).
    struct ColumnarFields;

    impl PushdownCapability for ColumnarFields {
        fn pushable_eq(&self, column: &str) -> bool {
            CommonFields.pushable_eq(column)
        }
        fn pushable_range(&self, column: &str) -> bool {
            CommonFields.pushable_range(column)
        }
        fn pushable_columnar(&self, column: &str) -> bool {
            matches!(
                column,
                "task_id"
                    | "workflow_id"
                    | "activity_id"
                    | "hostname"
                    | "status"
                    | "started_at"
                    | "ended_at"
                    | "duration"
            )
        }
        fn pushable_sort(&self, column: &str) -> bool {
            // Mirrors prov_db: whatever lives columnar can be ordered.
            self.pushable_columnar(column)
        }
    }

    fn plan_columnar(text: &str) -> PipelinePlan {
        match plan(&parse(text).unwrap(), &ColumnarFields) {
            QueryPlan::Pipeline(p) => p,
            QueryPlan::Len(inner) => match *inner {
                QueryPlan::Pipeline(p) => p,
                other => panic!("expected pipeline, got {other:?}"),
            },
            other => panic!("expected pipeline, got {other:?}"),
        }
    }

    #[test]
    fn eq_conjunct_is_pushed_and_removed_from_residual() {
        let p = plan_text(r#"df[df["activity_id"] == "power"][["task_id", "y"]]"#);
        let QueryPlan::Pipeline(p) = p else {
            panic!("pipeline")
        };
        assert_eq!(
            p.scan.pushed,
            vec![PushedFilter {
                column: "activity_id".into(),
                op: PushOp::Eq,
                value: Value::from("power"),
            }]
        );
        assert_eq!(p.scan.residual, None);
        // The pushed conjunct's column is served by the store, so it is
        // not materialized into the projected frame.
        assert_eq!(
            p.scan.columns.as_deref(),
            Some(&["task_id".to_string(), "y".into()][..])
        );
        assert_eq!(
            p.ops,
            vec![PlanNode::Project(vec!["task_id".into(), "y".into()])]
        );
    }

    #[test]
    fn mixed_conjunction_splits() {
        let p = plan_text(r#"df[(df["started_at"] > 10) & (df["y"] > 3)]["y"].mean()"#);
        let QueryPlan::Pipeline(p) = p else {
            panic!("pipeline")
        };
        assert_eq!(p.scan.pushed.len(), 1);
        assert_eq!(p.scan.pushed[0].op, PushOp::Gt);
        assert_eq!(p.scan.residual, Some(col("y").gt(lit(3))));
    }

    #[test]
    fn flipped_comparison_normalizes() {
        let q = Query::pipeline(vec![
            Stage::Filter(lit(5).lt(col("started_at"))),
            Stage::Count,
        ]);
        let QueryPlan::Pipeline(p) = plan(&q, &CommonFields) else {
            panic!("pipeline")
        };
        assert_eq!(p.scan.pushed[0].op, PushOp::Gt);
        assert_eq!(p.scan.pushed[0].column, "started_at");
    }

    #[test]
    fn or_not_ne_and_contains_stay_residual() {
        for text in [
            r#"df[(df["activity_id"] == "a") | (df["activity_id"] == "b")].shape[0]"#,
            r#"df[df["activity_id"] != "a"].shape[0]"#,
            r#"df[~(df["activity_id"] == "a")].shape[0]"#,
            r#"df[df["hostname"].str.contains("n0")].shape[0]"#,
        ] {
            let QueryPlan::Pipeline(p) = plan_text(text) else {
                panic!("pipeline")
            };
            assert!(p.scan.pushed.is_empty(), "{text}");
            assert!(p.scan.residual.is_some(), "{text}");
        }
    }

    #[test]
    fn null_literals_are_never_pushed() {
        // A store compares present values against Null by kind-tag
        // ordering; the frame executor short-circuits to false. Pushing
        // would flip the answer, so Null conjuncts must stay residual.
        for text in [
            r#"df[df["started_at"] > None].shape[0]"#,
            r#"df[df["started_at"] == None].shape[0]"#,
            r#"df[df["activity_id"] == None].shape[0]"#,
        ] {
            let QueryPlan::Pipeline(p) = plan_text(text) else {
                panic!("pipeline")
            };
            assert!(p.scan.pushed.is_empty(), "{text}");
            assert!(p.scan.residual.is_some(), "{text}");
        }
    }

    #[test]
    fn unpushable_column_stays_residual() {
        // `duration` is computed at frame-build time; no store path.
        let QueryPlan::Pipeline(p) = plan_text(r#"df[df["duration"] > 1.0].shape[0]"#) else {
            panic!("pipeline")
        };
        assert!(p.scan.pushed.is_empty());
        assert_eq!(p.scan.residual, Some(col("duration").gt(lit(1.0))));
    }

    #[test]
    fn whole_frame_output_is_unbounded() {
        let QueryPlan::Pipeline(p) = plan_text(r#"df[df["activity_id"] == "a"]"#) else {
            panic!("pipeline")
        };
        assert_eq!(p.scan.columns, None);
        // But the filter is still pushed: an executor with full-width
        // materialization could use it.
        assert!(p.has_pushdown());
    }

    #[test]
    fn len_wrapping_tightens_projection() {
        let p = plan_text(r#"len(df[df["status"] == "FINISHED"])"#);
        let QueryPlan::Len(inner) = p else {
            panic!("len")
        };
        let QueryPlan::Pipeline(p) = *inner else {
            panic!("pipeline")
        };
        // The status conjunct is pushed; only the row count is observed,
        // so the scan materializes no columns at all.
        assert_eq!(p.scan.columns, Some(Vec::new()));
    }

    #[test]
    fn len_of_subsetless_dedup_stays_unbounded() {
        let p = plan_text(r#"len(df.drop_duplicates())"#);
        let QueryPlan::Len(inner) = p else {
            panic!("len")
        };
        let QueryPlan::Pipeline(p) = *inner else {
            panic!("pipeline")
        };
        assert_eq!(p.scan.columns, None, "full-width dedup changes row count");
    }

    #[test]
    fn groupby_and_loc_cell_bound_the_columns() {
        let QueryPlan::Pipeline(p) = plan_text(r#"df.groupby("activity_id")["duration"].mean()"#)
        else {
            panic!("pipeline")
        };
        assert_eq!(
            p.scan.columns.as_deref(),
            Some(&["activity_id".to_string(), "duration".into()][..])
        );
        let QueryPlan::Pipeline(p) = plan_text(r#"df.loc[df["y"].idxmax(), "task_id"]"#) else {
            panic!("pipeline")
        };
        assert_eq!(
            p.scan.columns.as_deref(),
            Some(&["y".to_string(), "task_id".into()][..])
        );
        // Whole-row loc needs every column.
        let QueryPlan::Pipeline(p) = plan_text(r#"df.loc[df["y"].idxmax()]"#) else {
            panic!("pipeline")
        };
        assert_eq!(p.scan.columns, None);
    }

    #[test]
    fn limit_pushdown_requires_clean_prefix() {
        let QueryPlan::Pipeline(p) =
            plan_text(r#"df[df["workflow_id"] == "wf-1"][["task_id"]].head(3)"#)
        else {
            panic!("pipeline")
        };
        assert_eq!(p.scan.limit, Some(3));
        // A sort in front blocks the limit; a residual filter does too.
        let QueryPlan::Pipeline(p) =
            plan_text(r#"df.sort_values("started_at")[["task_id"]].head(3)"#)
        else {
            panic!("pipeline")
        };
        assert_eq!(p.scan.limit, None);
        let QueryPlan::Pipeline(p) = plan_text(r#"df[df["y"] > 1][["task_id"]].head(3)"#) else {
            panic!("pipeline")
        };
        assert_eq!(p.scan.limit, None);
    }

    #[test]
    fn unindexed_and_ne_conjuncts_go_columnar() {
        // `duration` has no index (derived at decode time) and `!=` can
        // never probe a hash index; with a columnar layer both become
        // scan-evaluated conjuncts instead of residual frame filters.
        let p = plan_columnar(
            r#"df[(df["duration"] > 1.0) & (df["status"] != "ERROR")]["duration"].mean()"#,
        );
        assert!(p.scan.pushed.is_empty());
        assert_eq!(
            p.scan.columnar,
            vec![
                ColumnarFilter {
                    column: "duration".into(),
                    op: CmpOp::Gt,
                    value: Value::Float(1.0),
                },
                ColumnarFilter {
                    column: "status".into(),
                    op: CmpOp::Ne,
                    value: Value::from("ERROR"),
                },
            ]
        );
        assert_eq!(p.scan.residual, None);
        // Columnar conjuncts are evaluated pre-frame: their columns are
        // not dragged into the projection (status is absent).
        assert_eq!(
            p.scan.columns.as_deref(),
            Some(&["duration".to_string()][..])
        );
        assert!(p.scan.columnar_only);
    }

    #[test]
    fn columnar_only_requires_every_referenced_column() {
        let p = plan_columnar(r#"df.groupby("activity_id")["duration"].mean()"#);
        assert!(p.scan.columnar_only, "all-columnar aggregate");
        let p = plan_columnar(r#"df.groupby("activity_id")["y"].mean()"#);
        assert!(!p.scan.columnar_only, "y has no column vector");
        let p = plan_columnar(r#"df[df["status"] == "ERROR"]"#);
        assert!(!p.scan.columnar_only, "whole-width output");
    }

    #[test]
    fn columnar_conjuncts_do_not_block_limit_pushdown() {
        // Scan-evaluated conjuncts filter before the limit counts, unlike
        // a residual frame filter.
        let p = plan_columnar(r#"df[df["status"] != "PENDING"][["task_id"]].head(3)"#);
        assert!(p.scan.residual.is_none());
        assert_eq!(p.scan.columnar.len(), 1);
        assert_eq!(p.scan.limit, Some(3));
        // A genuinely residual filter still blocks it.
        let p = plan_columnar(r#"df[df["y"] > 1][["task_id"]].head(3)"#);
        assert_eq!(p.scan.limit, None);
    }

    #[test]
    fn pushed_sort_unblocks_limit_pushdown() {
        // A leading sort over a pushable key no longer blocks the head():
        // the pair becomes a top-k scan. Both nodes stay downstream.
        let p = plan_columnar(
            r#"df.sort_values("started_at", ascending=False)[["task_id", "started_at"]].head(3)"#,
        );
        assert_eq!(p.scan.sort, vec![("started_at".to_string(), false)]);
        assert_eq!(p.scan.limit, Some(3));
        assert!(matches!(p.ops[0], PlanNode::Sort(_)));
        assert!(matches!(p.ops[2], PlanNode::Limit(3)));
        // A projection between sort and head is column-preserving and
        // order-preserving; the walk steps over it.
        let p = plan_columnar(r#"df.sort_values("duration")[["task_id"]].head(5)"#);
        assert_eq!(p.scan.sort, vec![("duration".to_string(), true)]);
        assert_eq!(p.scan.limit, Some(5));
        // A bare pushable sort (no head) is still pushed.
        let p = plan_columnar(r#"df.sort_values("started_at")[["task_id", "started_at"]]"#);
        assert_eq!(p.scan.sort, vec![("started_at".to_string(), true)]);
        assert_eq!(p.scan.limit, None);
    }

    #[test]
    fn unpushable_sort_key_still_blocks_limit() {
        // `y` has no column vector: the sort stays frame-side and, as
        // before, blocks the limit behind it.
        let p = plan_columnar(r#"df.sort_values("y")[["task_id"]].head(3)"#);
        assert!(p.scan.sort.is_empty());
        assert_eq!(p.scan.limit, None);
        // Multi-key sorts push only when *every* key is orderable.
        let p = plan_columnar(r#"df.sort_values(["duration", "y"])[["task_id"]].head(3)"#);
        assert!(p.scan.sort.is_empty());
        assert_eq!(p.scan.limit, None);
        let p = plan_columnar(r#"df.sort_values(["duration", "started_at"])[["task_id"]].head(3)"#);
        assert_eq!(
            p.scan.sort,
            vec![
                ("duration".to_string(), true),
                ("started_at".to_string(), true)
            ]
        );
        assert_eq!(p.scan.limit, Some(3));
    }

    #[test]
    fn residual_filter_or_second_sort_blocks_sort_pushdown() {
        // A residual filter in front drops rows the scan would order.
        let p = plan_columnar(r#"df[df["y"] > 1].sort_values("started_at")[["task_id"]].head(2)"#);
        assert!(p.scan.sort.is_empty());
        assert_eq!(p.scan.limit, None);
        // Columnar conjuncts are applied by the scan itself, so they do
        // not block the pair.
        let p = plan_columnar(
            r#"df[df["status"] != "ERROR"].sort_values("started_at")[["task_id"]].head(2)"#,
        );
        assert_eq!(p.scan.sort.len(), 1);
        assert_eq!(p.scan.limit, Some(2));
        // A second sort re-orders: the walk stops, the limit stays put,
        // and the first sort is retracted — its ordering would be
        // computed by the scan only to be discarded.
        let p = plan_columnar(
            r#"df.sort_values("started_at").sort_values("duration")[["task_id"]].head(2)"#,
        );
        assert!(p.scan.sort.is_empty());
        assert_eq!(p.scan.limit, None);
        // A pushed sort ahead of an order-sensitive stage is kept: the
        // group-by's first-seen group order depends on it.
        let p = plan_columnar(
            r#"df.sort_values("duration").groupby("activity_id")["duration"].mean()"#,
        );
        assert_eq!(p.scan.sort, vec![("duration".to_string(), true)]);
    }

    #[test]
    fn sort_pushdown_needs_the_capability() {
        // CommonFields advertises no sort capability: the PR 3 behavior —
        // sorts block limits — is exactly preserved.
        let QueryPlan::Pipeline(p) =
            plan_text(r#"df.sort_values("started_at")[["task_id"]].head(3)"#)
        else {
            panic!("pipeline")
        };
        assert!(p.scan.sort.is_empty());
        assert_eq!(p.scan.limit, None);
    }

    #[test]
    fn null_literals_stay_residual_even_with_columnar() {
        let p = plan_columnar(r#"df[df["status"] == None].shape[0]"#);
        assert!(p.scan.columnar.is_empty());
        assert!(p.scan.residual.is_some());
    }

    #[test]
    fn isin_conjunct_goes_to_the_scan() {
        let p = plan_columnar(r#"df[df["status"].isin(["FINISHED", "ERROR"])]["duration"].mean()"#);
        assert_eq!(
            p.scan.isin,
            vec![InListFilter {
                column: "status".into(),
                values: vec![Value::from("FINISHED"), Value::from("ERROR")],
            }]
        );
        assert_eq!(p.scan.residual, None);
        // The scan serves the membership test over codes; the status
        // column is not dragged into the materialized frame.
        assert_eq!(
            p.scan.columns.as_deref(),
            Some(&["duration".to_string()][..])
        );
        assert!(p.scan.columnar_only);
    }

    #[test]
    fn isin_with_null_element_or_unpushable_column_stays_residual() {
        // A null list element would make the pushed literal set contain
        // Null; keep the whole conjunct residual, like `== None`.
        let p = plan_columnar(r#"df[df["status"].isin(["FINISHED", None])].shape[0]"#);
        assert!(p.scan.isin.is_empty());
        assert!(p.scan.residual.is_some());
        // No column vector for `y`: nothing to probe codes against.
        let p = plan_columnar(r#"df[df["y"].isin([1, 2])].shape[0]"#);
        assert!(p.scan.isin.is_empty());
        assert!(p.scan.residual.is_some());
    }

    #[test]
    fn isin_does_not_block_limit_or_sort_pushdown() {
        let p = plan_columnar(
            r#"df[df["hostname"].isin(["n0", "n1"])].sort_values("started_at")[["task_id"]].head(3)"#,
        );
        assert_eq!(p.scan.isin.len(), 1);
        assert!(p.scan.residual.is_none());
        assert_eq!(p.scan.sort, vec![("started_at".to_string(), true)]);
        assert_eq!(p.scan.limit, Some(3));
    }

    #[test]
    fn binary_query_plans_both_sides() {
        let p = plan_text(r#"df["ended_at"].max() - df["started_at"].min()"#);
        assert_eq!(p.pipelines().len(), 2);
        assert!(p.fully_projected());
    }

    #[test]
    fn nodes_round_trip_to_stages() {
        let QueryPlan::Pipeline(p) = plan_text(
            r#"df[df["y"] > 1].sort_values("y", ascending=False)[["task_id", "y"]].head(2)"#,
        ) else {
            panic!("pipeline")
        };
        let stages: Vec<Stage> = p.ops.iter().map(PlanNode::to_stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::SortValues(vec![("y".into(), false)]),
                Stage::Select(vec!["task_id".into(), "y".into()]),
                Stage::Head(2),
            ]
        );
    }

    // ---- cache-key canonicalization ------------------------------------

    fn fp(text: &str) -> u64 {
        fingerprint(&plan_text(text))
    }

    #[test]
    fn fingerprint_ignores_conjunct_order() {
        // Both conjuncts push down; the scan's pushed list sorts.
        assert_eq!(
            fp(r#"df[(df["activity_id"] == "power") & (df["started_at"] > 10)]["y"].mean()"#),
            fp(r#"df[(df["started_at"] > 10) & (df["activity_id"] == "power")]["y"].mean()"#),
        );
        // Neither conjunct pushes; the residual And chain sorts.
        assert_eq!(
            fp(r#"df[(df["x"] > 1) & (df["y"] > 2)]["y"].mean()"#),
            fp(r#"df[(df["y"] > 2) & (df["x"] > 1)]["y"].mean()"#),
        );
    }

    #[test]
    fn fingerprint_canonicalizes_numeric_literal_spellings() {
        // Pushed position.
        assert_eq!(
            fp(r#"df[df["started_at"] == 5]["y"].mean()"#),
            fp(r#"df[df["started_at"] == 5.0]["y"].mean()"#),
        );
        // Residual comparison position.
        assert_eq!(
            fp(r#"df[df["y"] > 3]["y"].mean()"#),
            fp(r#"df[df["y"] > 3.0]["y"].mean()"#),
        );
        // Inexactly-representable floats keep their own spelling.
        assert_ne!(
            fp(r#"df[df["y"] > 3]["y"].mean()"#),
            fp(r#"df[df["y"] > 3.5]["y"].mean()"#),
        );
    }

    #[test]
    fn fingerprint_ignores_isin_order_and_duplicates() {
        assert_eq!(
            fp(r#"df[df["hostname"].isin(["a", "b"])]["y"].mean()"#),
            fp(r#"df[df["hostname"].isin(["b", "a", "b"])]["y"].mean()"#),
        );
        assert_ne!(
            fp(r#"df[df["hostname"].isin(["a", "b"])]["y"].mean()"#),
            fp(r#"df[df["hostname"].isin(["a", "c"])]["y"].mean()"#),
        );
    }

    #[test]
    fn fingerprint_distinguishes_semantics() {
        // Different comparison op.
        assert_ne!(
            fp(r#"df[df["y"] > 3]["y"].mean()"#),
            fp(r#"df[df["y"] >= 3]["y"].mean()"#),
        );
        // Different literal.
        assert_ne!(
            fp(r#"df[df["y"] > 3]["y"].mean()"#),
            fp(r#"df[df["y"] > 4]["y"].mean()"#),
        );
        // Sort direction and limit are order-sensitive.
        assert_ne!(
            fp(r#"df.sort_values("started_at").head(3)"#),
            fp(r#"df.sort_values("started_at", ascending=False).head(3)"#),
        );
        assert_ne!(
            fp(r#"df.sort_values("started_at").head(3)"#),
            fp(r#"df.sort_values("started_at").head(4)"#),
        );
        // Arithmetic does NOT collapse Int/Float: 5 and 5.0 can yield
        // differently-typed derived values.
        assert_ne!(
            fp(r#"df[df["y"] + 5 > 10]["y"].mean()"#),
            fp(r#"df[df["y"] + 5.0 > 10]["y"].mean()"#),
        );
    }

    #[test]
    fn cache_key_is_stable_across_reparses() {
        let text = r#"df[(df["started_at"] > 10) & (df["hostname"] == "n0")]["duration"].mean()"#;
        assert_eq!(cache_key(&plan_text(text)), cache_key(&plan_text(text)));
    }
}
