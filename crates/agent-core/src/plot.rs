//! Chart data and terminal rendering (the GUI's plot responses, Fig 10).

use dataframe::DataFrame;
use prov_model::Value;

/// A bar chart extracted from a query result.
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Bar labels.
    pub labels: Vec<String>,
    /// Bar values.
    pub values: Vec<f64>,
    /// Y-axis unit, if known.
    pub unit: Option<String>,
}

impl BarChart {
    /// Build from a two-column frame (label column + numeric column).
    /// Falls back to the first string-ish and first numeric column.
    pub fn from_frame(title: impl Into<String>, frame: &DataFrame) -> Option<BarChart> {
        let names = frame.column_names();
        let label_col = names.iter().find(|n| {
            frame
                .column(n)
                .is_some_and(|c| matches!(c.dtype(), dataframe::DType::Str))
        })?;
        let value_col = names
            .iter()
            .find(|n| frame.column(n).is_some_and(|c| c.dtype().is_numeric()))?;
        let labels: Vec<String> = frame
            .column(label_col)
            .expect("found above")
            .values()
            .iter()
            .map(Value::display_plain)
            .collect();
        let values: Vec<f64> = frame
            .column(value_col)
            .expect("found above")
            .values()
            .iter()
            .map(|v| v.as_f64().unwrap_or(0.0))
            .collect();
        Some(BarChart {
            title: title.into(),
            labels,
            values,
            unit: None,
        })
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Render as a horizontal ASCII bar chart.
    pub fn render_ascii(&self, width: usize) -> String {
        let width = width.clamp(10, 200);
        let mut out = String::new();
        out.push_str(&self.title);
        if let Some(u) = &self.unit {
            out.push_str(&format!(" [{u}]"));
        }
        out.push('\n');
        if self.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let max = self
            .values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            .max(1e-12);
        let label_w = self
            .labels
            .iter()
            .map(|l| l.chars().count())
            .max()
            .unwrap_or(0)
            .min(24);
        for (label, value) in self.labels.iter().zip(&self.values) {
            let clipped: String = label.chars().take(label_w).collect();
            let bar_len = ((value / max) * width as f64).round().max(0.0) as usize;
            out.push_str(&format!(
                "{clipped:<label_w$} | {} {value:.2}\n",
                "█".repeat(bar_len.min(width))
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "bond_id",
                vec![
                    Value::from("C-C_1"),
                    Value::from("C-H_1"),
                    Value::from("O-H_1"),
                ],
            ),
            (
                "bd_enthalpy",
                vec![Value::Float(88.9), Value::Float(100.5), Value::Float(106.3)],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn chart_from_frame() {
        let c = BarChart::from_frame("BDE by bond", &frame()).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.labels[2], "O-H_1");
        assert_eq!(c.values[1], 100.5);
    }

    #[test]
    fn ascii_render_scales_bars() {
        let c = BarChart::from_frame("BDE by bond", &frame()).unwrap();
        let text = c.render_ascii(40);
        assert!(text.contains("BDE by bond"));
        let lines: Vec<&str> = text.lines().skip(1).collect();
        let bars: Vec<usize> = lines.iter().map(|l| l.matches('█').count()).collect();
        // O-H (largest value) has the longest bar.
        assert!(bars[2] >= bars[1] && bars[1] >= bars[0]);
        assert_eq!(bars[2], 40);
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let c = BarChart {
            title: "empty".into(),
            labels: vec![],
            values: vec![],
            unit: None,
        };
        assert!(c.render_ascii(30).contains("(no data)"));
    }

    #[test]
    fn non_plottable_frame_returns_none() {
        let numeric_only = DataFrame::from_columns(vec![("x", vec![Value::Int(1)])]).unwrap();
        assert!(BarChart::from_frame("t", &numeric_only).is_none());
    }
}
