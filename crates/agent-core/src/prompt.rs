//! Prompt generation — the RAG pipeline of §3/§4.2.
//!
//! A [`PromptBuilder`] assembles the system prompt from the components of
//! Table 2 (role, job, DataFrame description, output format, few-shot
//! examples, dynamic dataflow schema, domain values, query guidelines),
//! each under the section markers the simulated models parse.
//! [`RagStrategy`] names the seven cumulative configurations evaluated in
//! §5.2 (Figs 8–9).

use crate::context::ContextManager;
use llm_sim::markers;

/// The seven prompt+RAG configurations of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RagStrategy {
    /// Zero-shot: the raw user query only.
    Nothing,
    /// Role + job + DataFrame format + output formatting.
    Baseline,
    /// Baseline + few-shot examples.
    BaselineFs,
    /// Baseline + few-shot + dynamic dataflow schema.
    BaselineFsSchema,
    /// Baseline + few-shot + schema + domain values.
    BaselineFsSchemaValues,
    /// Baseline + few-shot + query guidelines (no schema).
    BaselineFsGuidelines,
    /// Everything.
    Full,
}

impl RagStrategy {
    /// All configurations in Table 2 order.
    pub fn all() -> [RagStrategy; 7] {
        [
            RagStrategy::Nothing,
            RagStrategy::Baseline,
            RagStrategy::BaselineFs,
            RagStrategy::BaselineFsSchema,
            RagStrategy::BaselineFsSchemaValues,
            RagStrategy::BaselineFsGuidelines,
            RagStrategy::Full,
        ]
    }

    /// The six evaluated cumulative configurations (zero-shot was excluded
    /// from Figs 8–9 "due to consistently poor scores").
    pub fn evaluated() -> [RagStrategy; 6] {
        [
            RagStrategy::Baseline,
            RagStrategy::BaselineFs,
            RagStrategy::BaselineFsSchema,
            RagStrategy::BaselineFsSchemaValues,
            RagStrategy::BaselineFsGuidelines,
            RagStrategy::Full,
        ]
    }

    /// Table 2 label.
    pub fn label(self) -> &'static str {
        match self {
            RagStrategy::Nothing => "Nothing",
            RagStrategy::Baseline => "Baseline",
            RagStrategy::BaselineFs => "Baseline+FS",
            RagStrategy::BaselineFsSchema => "Baseline+FS+Schema",
            RagStrategy::BaselineFsSchemaValues => "Baseline+FS+Schema+Values",
            RagStrategy::BaselineFsGuidelines => "Baseline+FS+Guidelines",
            RagStrategy::Full => "Full",
        }
    }

    /// Table 2 description of the context composition.
    pub fn description(self) -> &'static str {
        match self {
            RagStrategy::Nothing => "Zero-shot",
            RagStrategy::Baseline => "Role + Job + DataFrame format + Output Formatting",
            RagStrategy::BaselineFs => "Baseline + Few shot",
            RagStrategy::BaselineFsSchema => "Baseline + Few Shot + Dynamic Dataflow Schema",
            RagStrategy::BaselineFsSchemaValues => {
                "Baseline + Few Shot + Dynamic Dataflow Schema + Domain Values"
            }
            RagStrategy::BaselineFsGuidelines => "Baseline + Few Shot + Query Guidelines",
            RagStrategy::Full => {
                "Baseline + Few Shot + Dynamic Dataflow Schema + Domain Values + Query Guidelines"
            }
        }
    }

    /// Component switches: (baseline, few_shot, schema, values, guidelines).
    pub fn components(self) -> (bool, bool, bool, bool, bool) {
        match self {
            RagStrategy::Nothing => (false, false, false, false, false),
            RagStrategy::Baseline => (true, false, false, false, false),
            RagStrategy::BaselineFs => (true, true, false, false, false),
            RagStrategy::BaselineFsSchema => (true, true, true, false, false),
            RagStrategy::BaselineFsSchemaValues => (true, true, true, true, false),
            RagStrategy::BaselineFsGuidelines => (true, true, false, false, true),
            RagStrategy::Full => (true, true, true, true, true),
        }
    }
}

impl std::fmt::Display for RagStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Assembles system prompts from the live context.
pub struct PromptBuilder;

impl PromptBuilder {
    /// Build the system prompt for a strategy over the current context.
    pub fn system(strategy: RagStrategy, ctx: &ContextManager) -> String {
        let (baseline, few_shot, schema, values, guidelines) = strategy.components();
        let mut out = String::with_capacity(16 * 1024);
        if baseline {
            out.push_str(&Self::baseline_sections());
        }
        if few_shot {
            out.push_str(&Self::few_shot_section());
        }
        if schema {
            out.push_str(&ctx.render_schema_section());
            out.push('\n');
        }
        if values {
            out.push_str(&ctx.render_values_section());
            out.push('\n');
        }
        if guidelines {
            out.push_str(&ctx.guidelines.render());
        }
        out
    }

    /// Role + job + DataFrame description + output formatting (§5.2's
    /// "prompt elements").
    fn baseline_sections() -> String {
        format!(
            "{role}\nYou are a workflow provenance specialist embedded in a live scientific \
             computing campaign that spans edge, cloud, and HPC resources. You answer \
             questions about the tasks that are executing right now by inspecting their \
             runtime provenance records.\n\
             {job}\nYour job is to interpret the user's natural-language question and provide \
             a structured query over the live in-memory provenance buffer. You never fetch \
             raw data yourself; you only write the query that retrieves exactly what was \
             asked, choosing appropriate filters, groupings, aggregations, and orderings.\n\
             {df}\nThe buffer is a pandas DataFrame named df. Each row represents one task \
             execution captured from the workflow: its identifiers, timestamps, status, the \
             executing host, telemetry samples, and the application-specific input and output \
             fields flattened into columns. New rows stream in continuously while the \
             workflow runs, so the same query may return more rows later.\n\
             {fmt}\nReturn a single executable pandas expression rooted at df, with no \
             surrounding prose, no code fences, no imports, and no intermediate variables. \
             The expression must be one line. Use double quotes for string literals. If the \
             question asks for a count, return a number via len(...). If it asks for a \
             single item, return one row or one scalar rather than the full table.\n",
            role = markers::ROLE,
            job = markers::JOB,
            df = markers::DATAFRAME,
            fmt = markers::OUTPUT_FORMAT,
        )
    }

    /// Few-shot examples: natural-language + DataFrame code pairs (§5.2).
    fn few_shot_section() -> String {
        format!(
            "{fs}\nQ: How many tasks failed?\n\
             A: len(df[df[\"status\"] == \"ERROR\"])\n\
             Q: What is the average duration per activity?\n\
             A: df.groupby(\"activity_id\")[\"duration\"].mean()\n\
             Q: Show the five most recent tasks with their status.\n\
             A: df.sort_values(\"started_at\", ascending=False)[[\"task_id\", \"status\"]].head(5)\n\
             Q: Which task ran the longest?\n\
             A: df.loc[df[\"duration\"].idxmax()]\n\
             Q: List the distinct activities executed so far.\n\
             A: df[\"activity_id\"].unique()\n",
            fs = markers::FEW_SHOT,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextManager;
    use llm_sim::{count_tokens, PromptSections};
    use prov_model::TaskMessageBuilder;

    fn ctx_with_data() -> std::sync::Arc<ContextManager> {
        let ctx = ContextManager::default_sized();
        for i in 0..20 {
            ctx.ingest(
                TaskMessageBuilder::new(format!("t{i}"), "wf", "power")
                    .uses("exponent", 2.0)
                    .generates("y", i as f64)
                    .span(i as f64, i as f64 + 1.0)
                    .build(),
            );
        }
        ctx
    }

    #[test]
    fn nothing_strategy_is_empty() {
        let ctx = ctx_with_data();
        assert!(PromptBuilder::system(RagStrategy::Nothing, &ctx).is_empty());
    }

    #[test]
    fn component_monotonicity_in_tokens() {
        let ctx = ctx_with_data();
        let mut last = 0;
        for strategy in RagStrategy::all() {
            let tokens = count_tokens(&PromptBuilder::system(strategy, &ctx));
            // Guidelines-only config is allowed to be smaller than
            // schema+values configs; check only the cumulative chain.
            if matches!(
                strategy,
                RagStrategy::Nothing
                    | RagStrategy::Baseline
                    | RagStrategy::BaselineFs
                    | RagStrategy::BaselineFsSchema
                    | RagStrategy::BaselineFsSchemaValues
            ) {
                assert!(tokens >= last, "{strategy}: {tokens} < {last}");
                last = tokens;
            }
        }
        let full = count_tokens(&PromptBuilder::system(RagStrategy::Full, &ctx));
        assert!(full >= last);
    }

    #[test]
    fn baseline_magnitude_matches_fig8() {
        let ctx = ContextManager::default_sized();
        let t = count_tokens(&PromptBuilder::system(RagStrategy::Baseline, &ctx));
        // Paper: ~293 input tokens at Baseline (plus the user query).
        assert!((180..420).contains(&t), "baseline tokens {t}");
    }

    #[test]
    fn sections_parse_back() {
        let ctx = ctx_with_data();
        let full = PromptBuilder::system(RagStrategy::Full, &ctx);
        let sections = PromptSections::parse(&full);
        assert!(sections.has_baseline());
        assert!(sections.few_shot_examples >= 4);
        assert!(sections.has_schema());
        assert!(sections.has_values());
        assert!(sections.has_guidelines());
        assert!(sections.schema_columns.contains(&"exponent".to_string()));
    }

    #[test]
    fn table2_labels() {
        assert_eq!(RagStrategy::all().len(), 7);
        assert_eq!(RagStrategy::evaluated().len(), 6);
        assert_eq!(RagStrategy::Full.label(), "Full");
        assert!(RagStrategy::BaselineFsSchemaValues
            .description()
            .contains("Domain Values"));
    }
}
