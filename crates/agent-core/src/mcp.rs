//! A minimal Model Context Protocol (MCP) server surface (§2.2, §4.1).
//!
//! "Adopting MCP ensures interoperability with other MCP-compliant agents
//! and systems." This module exposes the agent's tools, prompts and
//! resources through JSON-RPC-shaped envelopes — the subset of MCP the
//! architecture actually uses (tools / prompts / resources / context).

use crate::prompt::RagStrategy;
use crate::tools::{ToolContext, ToolRegistry};
use prov_model::{obj, Map, Value};

/// Protocol version string reported by `initialize`.
pub const PROTOCOL_VERSION: &str = "2024-11-05";

/// A JSON-RPC-shaped MCP server over a tool registry.
pub struct McpServer {
    registry: ToolRegistry,
    ctx: ToolContext,
    server_name: String,
}

impl McpServer {
    /// Wrap a registry and tool context.
    pub fn new(registry: ToolRegistry, ctx: ToolContext, server_name: impl Into<String>) -> Self {
        Self {
            registry,
            ctx,
            server_name: server_name.into(),
        }
    }

    /// The registry (e.g. to register BYOT tools).
    pub fn registry_mut(&mut self) -> &mut ToolRegistry {
        &mut self.registry
    }

    /// Handle one JSON-RPC request value, producing the response value.
    pub fn handle(&self, request: &Value) -> Value {
        let id = request.get("id").cloned().unwrap_or(Value::Null);
        let Some(method) = request.get("method").and_then(Value::as_str) else {
            return error_response(id, -32600, "missing method");
        };
        let params = request.get("params").cloned().unwrap_or(Value::Null);
        match method {
            "initialize" => ok_response(
                id,
                obj! {
                    "protocolVersion" => PROTOCOL_VERSION,
                    "serverInfo" => obj! {"name" => self.server_name.as_str(), "version" => env!("CARGO_PKG_VERSION")},
                    "capabilities" => obj! {"tools" => obj! {}, "prompts" => obj! {}, "resources" => obj! {}},
                },
            ),
            "tools/list" => {
                let tools: Vec<Value> = self
                    .registry
                    .list()
                    .into_iter()
                    .map(|(name, description, requires_llm)| {
                        obj! {
                            "name" => name,
                            "description" => description,
                            "annotations" => obj! {"requiresLlm" => requires_llm},
                        }
                    })
                    .collect();
                ok_response(id, obj! {"tools" => Value::array(tools)})
            }
            "tools/call" => {
                let Some(name) = params.get("name").and_then(Value::as_str) else {
                    return error_response(id, -32602, "missing tool name");
                };
                let args = params.get("arguments").cloned().unwrap_or(Value::Null);
                match self.registry.call(name, &args, &self.ctx) {
                    Ok(out) => ok_response(
                        id,
                        obj! {
                            "content" => Value::array(vec![obj! {"type" => "text", "text" => out.rendered.as_str()}]),
                            "structuredContent" => out.content,
                            "isError" => false,
                        },
                    ),
                    Err(e) => ok_response(
                        id,
                        obj! {
                            "content" => Value::array(vec![obj! {"type" => "text", "text" => e.to_string()}]),
                            "isError" => true,
                        },
                    ),
                }
            }
            "prompts/list" => {
                let prompts: Vec<Value> = RagStrategy::all()
                    .into_iter()
                    .map(|s| {
                        obj! {
                            "name" => s.label(),
                            "description" => s.description(),
                        }
                    })
                    .collect();
                ok_response(id, obj! {"prompts" => Value::array(prompts)})
            }
            "resources/list" => ok_response(
                id,
                obj! {
                    "resources" => Value::array(vec![
                        obj! {"uri" => "context://schema", "name" => "Dynamic dataflow schema"},
                        obj! {"uri" => "context://values", "name" => "Representative domain values"},
                        obj! {"uri" => "context://guidelines", "name" => "Query guidelines"},
                    ]),
                },
            ),
            "resources/read" => {
                let Some(uri) = params.get("uri").and_then(Value::as_str) else {
                    return error_response(id, -32602, "missing uri");
                };
                let text = match uri {
                    "context://schema" => self.ctx.context.render_schema_section(),
                    "context://values" => self.ctx.context.render_values_section(),
                    "context://guidelines" => self.ctx.context.guidelines.render(),
                    _ => return error_response(id, -32602, "unknown resource"),
                };
                ok_response(
                    id,
                    obj! {"contents" => Value::array(vec![obj! {"uri" => uri, "text" => text.as_str()}])},
                )
            }
            _ => error_response(id, -32601, "method not found"),
        }
    }
}

fn ok_response(id: Value, result: Value) -> Value {
    obj! {"jsonrpc" => "2.0", "id" => id, "result" => result}
}

fn error_response(id: Value, code: i64, message: &str) -> Value {
    obj! {"jsonrpc" => "2.0", "id" => id, "error" => obj! {"code" => code, "message" => message}}
}

/// Build a JSON-RPC request value.
pub fn request(id: i64, method: &str, params: Value) -> Value {
    let mut m = Map::new();
    m.insert("jsonrpc".into(), Value::from("2.0"));
    m.insert("id".into(), Value::Int(id));
    m.insert("method".into(), Value::from(method));
    if !params.is_null() {
        m.insert("params".into(), params);
    }
    Value::object(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextManager;
    use prov_model::TaskMessageBuilder;
    use prov_stream::StreamingHub;

    fn server() -> McpServer {
        let ctx = ContextManager::default_sized();
        for i in 0..10 {
            ctx.ingest(
                TaskMessageBuilder::new(format!("t{i}"), "wf", "a")
                    .generates("v", i as f64)
                    .build(),
            );
        }
        McpServer::new(
            ToolRegistry::with_builtins(),
            ToolContext {
                context: ctx,
                db: None,
                hub: StreamingHub::in_memory(),
            },
            "provenance-agent",
        )
    }

    #[test]
    fn initialize_reports_capabilities() {
        let s = server();
        let resp = s.handle(&request(1, "initialize", Value::Null));
        assert_eq!(
            resp.get_path("result.protocolVersion")
                .and_then(Value::as_str),
            Some(PROTOCOL_VERSION)
        );
        assert!(resp.get_path("result.capabilities.tools").is_some());
    }

    #[test]
    fn tools_list_and_call() {
        let s = server();
        let resp = s.handle(&request(2, "tools/list", Value::Null));
        let tools = resp
            .get_path("result.tools")
            .and_then(Value::as_array)
            .unwrap();
        assert!(tools.len() >= 6);
        // Every built-in — including the graph-traversal tool — is listed.
        let names: Vec<&str> = tools
            .iter()
            .filter_map(|t| t.get("name").and_then(Value::as_str))
            .collect();
        for expected in [
            "in_memory_query",
            "provdb_query",
            "plot",
            "anomaly_scan",
            "add_guideline",
            "graph_query",
        ] {
            assert!(names.contains(&expected), "{expected} missing: {names:?}");
        }

        let resp = s.handle(&request(
            3,
            "tools/call",
            obj! {"name" => "in_memory_query", "arguments" => obj! {"code" => "len(df)"}},
        ));
        assert_eq!(
            resp.get_path("result.structuredContent")
                .and_then(Value::as_i64),
            Some(10)
        );
        assert_eq!(
            resp.get_path("result.isError").and_then(Value::as_bool),
            Some(false)
        );
    }

    #[test]
    fn tool_errors_are_in_band() {
        let s = server();
        let resp = s.handle(&request(
            4,
            "tools/call",
            obj! {"name" => "in_memory_query", "arguments" => obj! {"code" => "garbage("}},
        ));
        assert_eq!(
            resp.get_path("result.isError").and_then(Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn prompts_and_resources() {
        let s = server();
        let resp = s.handle(&request(5, "prompts/list", Value::Null));
        assert_eq!(
            resp.get_path("result.prompts")
                .and_then(Value::as_array)
                .map(|a| a.len()),
            Some(7)
        );
        let resp = s.handle(&request(
            6,
            "resources/read",
            obj! {"uri" => "context://schema"},
        ));
        let text = resp
            .get_path("result.contents.0.text")
            .and_then(Value::as_str)
            .unwrap();
        assert!(text.contains("Dataflow Schema"));
    }

    #[test]
    fn unknown_method_errors() {
        let s = server();
        let resp = s.handle(&request(7, "frobnicate", Value::Null));
        assert_eq!(
            resp.get_path("error.code").and_then(Value::as_i64),
            Some(-32601)
        );
        let resp = s.handle(&obj! {"id" => 8});
        assert_eq!(
            resp.get_path("error.code").and_then(Value::as_i64),
            Some(-32600)
        );
    }

    #[test]
    fn roundtrips_through_json_text() {
        let s = server();
        let req_text = prov_model::json_to_string(&request(9, "tools/list", Value::Null));
        let req = prov_model::json_from_str(&req_text).unwrap();
        let resp = s.handle(&req);
        let resp_text = prov_model::json_to_string(&resp);
        assert!(resp_text.contains("in_memory_query"));
    }
}
