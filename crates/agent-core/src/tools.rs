//! MCP-style tools and the tool registry (§4.2).
//!
//! "Monitoring and Post-hoc Query Tools … the architecture is designed to
//! support the addition of new tools ('Bring your own tool') … without
//! requiring changes to the core components." Tools receive JSON arguments
//! and the agent's internal context structures; not all tools require LLM
//! interaction (the anomaly detector does not).

use crate::anomaly::{AnomalyConfig, AnomalyDetector};
use crate::context::ContextManager;
use crate::plot::BarChart;
use dataframe::DataFrame;
use parking_lot::Mutex;
use prov_db::{ProvenanceDatabase, StoreSnapshot};
use prov_model::{obj, Map, Value};
use prov_stream::StreamingHub;
use provql::{execute, parse, QueryOutput};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything a tool may touch.
pub struct ToolContext {
    /// The agent's live context.
    pub context: Arc<ContextManager>,
    /// The persistent provenance database (offline queries).
    pub db: Option<Arc<ProvenanceDatabase>>,
    /// The streaming hub (for republishing, e.g. anomaly tags).
    pub hub: StreamingHub,
}

/// Structured output of one tool call.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolOutput {
    /// Machine-readable result.
    pub content: Value,
    /// Human-readable rendering (what the GUI shows).
    pub rendered: String,
    /// Table result, when the tool produced one.
    pub table: Option<DataFrame>,
    /// Chart result, when the tool produced one.
    pub chart: Option<BarChart>,
    /// Execution metadata (not part of the answer): cache behavior, the
    /// store generation the answer is exact as of, etc. Eval runs assert
    /// on this; the GUI may surface it as diagnostics.
    pub meta: Option<Value>,
}

impl ToolOutput {
    fn text(content: Value, rendered: impl Into<String>) -> Self {
        Self {
            content,
            rendered: rendered.into(),
            table: None,
            chart: None,
            meta: None,
        }
    }
}

/// Tool errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ToolError {
    /// No tool registered under that name.
    UnknownTool(String),
    /// Arguments malformed.
    BadArgs(String),
    /// Execution failed (parse/execute errors carry the message the GUI
    /// displays so the user can correct the query, §5.4).
    Exec(String),
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolError::UnknownTool(n) => write!(f, "unknown tool '{n}'"),
            ToolError::BadArgs(m) => write!(f, "bad arguments: {m}"),
            ToolError::Exec(m) => write!(f, "execution failed: {m}"),
        }
    }
}

impl std::error::Error for ToolError {}

/// An MCP-shaped tool.
pub trait Tool: Send + Sync {
    /// Registry name.
    fn name(&self) -> &'static str;
    /// Human description (listed via MCP `tools/list`).
    fn description(&self) -> &'static str;
    /// Whether invoking this tool involves an LLM call.
    fn requires_llm(&self) -> bool {
        false
    }
    /// Invoke with JSON arguments.
    fn call(&self, args: &Value, ctx: &ToolContext) -> Result<ToolOutput, ToolError>;
}

fn arg_str<'a>(args: &'a Value, key: &str) -> Result<&'a str, ToolError> {
    args.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| ToolError::BadArgs(format!("missing string argument '{key}'")))
}

fn run_code_on(frame: &DataFrame, code: &str) -> Result<(QueryOutput, Value), ToolError> {
    let query = parse(code).map_err(|e| ToolError::Exec(format!("query parse error: {e}")))?;
    let out = execute(&query, frame).map_err(|e| ToolError::Exec(e.to_string()))?;
    let content = output_to_value(&out);
    Ok((out, content))
}

fn output_to_value(out: &QueryOutput) -> Value {
    match out {
        QueryOutput::Scalar(v) => v.clone(),
        QueryOutput::Row(m) => Value::object(m.clone()),
        QueryOutput::Series { name, values } => obj! {
            "series" => name.as_str(),
            "values" => Value::array(values.iter().take(100).cloned().collect()),
        },
        QueryOutput::Frame(f) => {
            let rows: Vec<Value> = f.iter_rows().take(100).map(Value::object).collect();
            obj! {"rows" => Value::array(rows), "row_count" => f.len()}
        }
    }
}

/// Executes generated queries against the live in-memory context
/// (the online/monitoring path).
pub struct InMemoryQueryTool;

impl Tool for InMemoryQueryTool {
    fn name(&self) -> &'static str {
        "in_memory_query"
    }
    fn description(&self) -> &'static str {
        "Run a pandas-style query against the in-memory buffer of recent workflow task provenance"
    }
    fn requires_llm(&self) -> bool {
        true
    }
    fn call(&self, args: &Value, ctx: &ToolContext) -> Result<ToolOutput, ToolError> {
        let code = arg_str(args, "code")?;
        let frame = ctx.context.frame();
        let (out, content) = run_code_on(&frame, code)?;
        let table = match &out {
            QueryOutput::Frame(f) => Some(f.clone()),
            _ => None,
        };
        Ok(ToolOutput {
            rendered: out.render(),
            content,
            table,
            chart: None,
            meta: None,
        })
    }
}

/// Executes generated queries against the persistent provenance database
/// (the offline/post-hoc path).
///
/// Snapshot-first: the tool pins a [`StoreSnapshot`] and re-pins only
/// when the store generation moves (or the tool is pointed at a different
/// database), so a conversation's worth of queries between ingest bursts
/// never flushes and never waits on the write locks ingest holds. Query
/// execution itself lives in [`StoreSnapshot::query`]: selective plans
/// (every pipeline pushes an index-servable conjunct, a row limit, or a
/// fully-columnar column set) go through the bounded pushdown executor,
/// everything else runs on the snapshot's shared oracle frame, and both
/// routes consult the database-wide plan-keyed result cache
/// ([`prov_db::PlanCache`]) — repeated dashboard queries cost one
/// execution per store generation, across *all* tools and serve workers
/// sharing the database. Cache behavior (hit/miss, counters) and the
/// answer's generation are reported in [`ToolOutput::meta`].
#[derive(Default)]
pub struct ProvDbQueryTool {
    /// The pinned snapshot, refreshed when the generation moves.
    snapshot: Mutex<Option<Arc<StoreSnapshot>>>,
}

impl ProvDbQueryTool {
    /// Fresh tool with no pinned snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current snapshot of `db`: reuse the pinned one while it is
    /// fresh (same database, same generation — the generation probe is
    /// one atomic load), otherwise pin a new one. Pointer identity is
    /// sound here because the pinned snapshot holds the database `Arc`
    /// alive: its address cannot be reused while the pin exists.
    fn snapshot(&self, db: &Arc<ProvenanceDatabase>) -> Arc<StoreSnapshot> {
        let mut pinned = self.snapshot.lock();
        if let Some(s) = pinned.as_ref() {
            if Arc::ptr_eq(s.database(), db) && s.generation() == db.generation() {
                return s.clone();
            }
        }
        let s = db.snapshot();
        *pinned = Some(s.clone());
        s
    }
}

impl Tool for ProvDbQueryTool {
    fn name(&self) -> &'static str {
        "provdb_query"
    }
    fn description(&self) -> &'static str {
        "Run a pandas-style query against the persistent provenance database (historical data)"
    }
    fn requires_llm(&self) -> bool {
        true
    }
    fn call(&self, args: &Value, ctx: &ToolContext) -> Result<ToolOutput, ToolError> {
        let code = arg_str(args, "code")?;
        let db = ctx
            .db
            .as_ref()
            .ok_or_else(|| ToolError::Exec("no provenance database attached".to_string()))?;
        let query = parse(code).map_err(|e| ToolError::Exec(format!("query parse error: {e}")))?;
        let snap = self.snapshot(db);
        let (result, outcome) = snap.query(&query);
        let out = result.map_err(|e| ToolError::Exec(e.to_string()))?;
        let content = output_to_value(&out);
        let table = match &*out {
            QueryOutput::Frame(f) => Some(f.clone()),
            _ => None,
        };
        let stats = db.plan_cache().stats();
        let pager = db.pager_stats();
        let meta = obj! {
            "cache" => outcome.as_str(),
            "generation" => snap.generation() as i64,
            "cache_hits" => stats.hits as i64,
            "cache_misses" => stats.misses as i64,
            "cache_evictions" => stats.evictions as i64,
            "cache_entries" => stats.entries as i64,
            "cache_bytes" => stats.bytes as i64,
            "pager_hits" => pager.hits as i64,
            "pager_paged_in" => pager.paged_in as i64,
            "pager_evicted" => pager.evicted as i64,
            "pager_zone_skips" => pager.zone_skips as i64,
            "pager_resident_chunks" => pager.resident_chunks as i64,
            "pager_resident_bytes" => pager.resident_bytes as i64,
        };
        Ok(ToolOutput {
            rendered: out.render(),
            content,
            table,
            chart: None,
            meta: Some(meta),
        })
    }
}

/// Runs a data query and renders the result as a bar chart (Fig 10).
pub struct PlotTool;

impl Tool for PlotTool {
    fn name(&self) -> &'static str {
        "plot"
    }
    fn description(&self) -> &'static str {
        "Run a query and render the result as a bar chart"
    }
    fn requires_llm(&self) -> bool {
        true
    }
    fn call(&self, args: &Value, ctx: &ToolContext) -> Result<ToolOutput, ToolError> {
        let code = arg_str(args, "code")?;
        let title = args
            .get("title")
            .and_then(Value::as_str)
            .unwrap_or("Query result")
            .to_string();
        let frame = ctx.context.frame();
        let (out, content) = run_code_on(&frame, code)?;
        let chart_frame = out
            .into_frame()
            .map_err(|e| ToolError::Exec(e.to_string()))?;
        let chart = BarChart::from_frame(title, &chart_frame)
            .ok_or_else(|| ToolError::Exec("result is not plottable".to_string()))?;
        Ok(ToolOutput {
            rendered: chart.render_ascii(48),
            content,
            table: Some(chart_frame),
            chart: Some(chart),
            meta: None,
        })
    }
}

/// Scans the context for anomalies and republishes tagged messages —
/// an MCP tool with no LLM involvement (§4.2).
pub struct AnomalyScanTool;

impl Tool for AnomalyScanTool {
    fn name(&self) -> &'static str {
        "anomaly_scan"
    }
    fn description(&self) -> &'static str {
        "Detect statistical anomalies in recent telemetry and dataflow values"
    }
    fn call(&self, args: &Value, ctx: &ToolContext) -> Result<ToolOutput, ToolError> {
        let threshold = args
            .get("z_threshold")
            .and_then(Value::as_f64)
            .unwrap_or(3.5);
        let detector = AnomalyDetector::new(AnomalyConfig {
            z_threshold: threshold,
            ..AnomalyConfig::default()
        });
        let frame = ctx.context.frame();
        let recent = ctx.context.recent(frame.len());
        let anomalies = detector.scan_and_publish(&frame, &recent, &ctx.hub);
        let rows: Vec<Value> = anomalies
            .iter()
            .map(|a| {
                obj! {
                    "task_id" => a.task_id.as_str(),
                    "metric" => a.column.as_str(),
                    "value" => a.value,
                    "z_score" => a.z_score,
                }
            })
            .collect();
        let rendered = if anomalies.is_empty() {
            "No anomalies detected.".to_string()
        } else {
            let mut s = format!("{} anomalies detected:\n", anomalies.len());
            for a in &anomalies {
                s.push_str(&format!(
                    "- task {} has {} = {:.3} (z = {:.2})\n",
                    a.task_id, a.column, a.value, a.z_score
                ));
            }
            s
        };
        Ok(ToolOutput::text(
            obj! {"anomalies" => Value::array(rows)},
            rendered,
        ))
    }
}

/// Stores a user-supplied query guideline in the session context (§4.2's
/// dynamic, user-defined guidelines).
pub struct GuidelineTool;

impl Tool for GuidelineTool {
    fn name(&self) -> &'static str {
        "add_guideline"
    }
    fn description(&self) -> &'static str {
        "Store a user-provided query guideline; it overrides conflicting earlier guidance"
    }
    fn call(&self, args: &Value, ctx: &ToolContext) -> Result<ToolOutput, ToolError> {
        let text = arg_str(args, "text")?;
        ctx.context.guidelines.add_user(text);
        Ok(ToolOutput::text(
            obj! {"stored" => true, "total_user_guidelines" => ctx.context.guidelines.user_count()},
            format!("Understood — I will apply this from now on: {text}"),
        ))
    }
}

/// Multi-hop lineage queries over the persistent PROV graph — the deep
/// graph traversals §5.4 lists as an open challenge for DataFrame-bound
/// agents. Rule-based (no LLM): the task id is located in the question by
/// matching tokens against graph nodes, the traversal direction is chosen
/// from causal keywords, and the result is the `prov:wasInformedBy`
/// closure (upstream lineage), its inverse (downstream impact), or the
/// shortest path between two tasks.
///
/// Snapshot-first like [`ProvDbQueryTool`]: the tool pins a
/// [`StoreSnapshot`] per store generation and runs every probe and
/// traversal on the snapshot's CSR graph compaction
/// ([`StoreSnapshot::graph_csr`]) — token probing and multi-hop kernels
/// never take the adjacency `RwLock` and never flush, so lineage
/// questions run in parallel with ingest bursts.
#[derive(Default)]
pub struct GraphQueryTool {
    /// The pinned snapshot, refreshed when the generation moves.
    snapshot: Mutex<Option<Arc<StoreSnapshot>>>,
}

/// Traversal direction understood by [`GraphQueryTool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GraphOp {
    Upstream,
    Downstream,
    Path,
}

impl GraphQueryTool {
    /// Default traversal depth when the question does not bound it.
    pub const DEFAULT_DEPTH: usize = 16;

    /// Fresh tool with no pinned snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Same pin-while-fresh rule as [`ProvDbQueryTool::snapshot`].
    fn snapshot(&self, db: &Arc<ProvenanceDatabase>) -> Arc<StoreSnapshot> {
        let mut pinned = self.snapshot.lock();
        if let Some(s) = pinned.as_ref() {
            if Arc::ptr_eq(s.database(), db) && s.generation() == db.generation() {
                return s.clone();
            }
        }
        let s = db.snapshot();
        *pinned = Some(s.clone());
        s
    }

    fn infer_op(question: &str) -> GraphOp {
        let q = question.to_lowercase();
        if q.contains("path") || q.contains(" to task") || q.contains("between") {
            GraphOp::Path
        } else if q.contains("downstream")
            || q.contains("impact")
            || q.contains("affected")
            || q.contains("informed by it")
            || q.contains("consumed")
        {
            GraphOp::Downstream
        } else {
            // lineage / upstream / derived from / caused / came from
            GraphOp::Upstream
        }
    }

    /// Tokens of the question that name nodes actually present in the
    /// graph, in question order (deduped). Membership probes the pinned
    /// CSR compaction — a hash probe against interned ids, no adjacency
    /// lock, no per-token `GraphNode` clone.
    fn task_ids_in(question: &str, csr: &prov_db::CsrGraph) -> Vec<String> {
        let mut ids = Vec::new();
        for raw in question.split(|c: char| c.is_whitespace() || c == ',' || c == '?') {
            let token = raw.trim_matches(|c: char| {
                c == '\'' || c == '"' || c == '`' || c == '.' || c == ':' || c == ';'
            });
            if token.len() < 2 {
                continue;
            }
            if csr.contains_node(token) && !ids.iter().any(|i| i == token) {
                ids.push(token.to_string());
            }
        }
        ids
    }
}

impl Tool for GraphQueryTool {
    fn name(&self) -> &'static str {
        "graph_query"
    }
    fn description(&self) -> &'static str {
        "Multi-hop causal/lineage traversal over the persistent PROV graph \
         (upstream lineage, downstream impact, shortest path)"
    }
    fn call(&self, args: &Value, ctx: &ToolContext) -> Result<ToolOutput, ToolError> {
        let question = arg_str(args, "question")?;
        let db = ctx
            .db
            .as_ref()
            .ok_or_else(|| ToolError::Exec("no provenance database attached".to_string()))?;
        let depth = args
            .get("depth")
            .and_then(Value::as_i64)
            .map(|d| d.max(1) as usize)
            .unwrap_or(Self::DEFAULT_DEPTH);
        // One pinned snapshot per store generation; every probe and
        // traversal below runs on its CSR compaction — no adjacency lock,
        // no flushing, and repeatable reads across the whole call.
        let snap = self.snapshot(db);
        let csr = snap.graph_csr();
        let ids = Self::task_ids_in(question, csr);
        let first = ids.first().ok_or_else(|| {
            ToolError::Exec(
                "no task id found in the question; mention a task id recorded in the \
                 provenance graph"
                    .to_string(),
            )
        })?;
        let op = Self::infer_op(question);

        let describe = |id: &str| -> Value {
            let activity = csr
                .node_props(id)
                .and_then(|p| p.get("activity_id").cloned())
                .unwrap_or(Value::Null);
            obj! {"task_id" => id, "activity_id" => activity}
        };

        match op {
            GraphOp::Path => {
                let second = ids.get(1).ok_or_else(|| {
                    ToolError::Exec(
                        "a path query needs two task ids; only one was found".to_string(),
                    )
                })?;
                // PROV edges point effect → cause (wasInformedBy), so try
                // both directions before giving up. The exact kernel keeps
                // the legacy traversal's tie-breaking (BFS discovery
                // order), so answers are stable across this refactor.
                let path = csr
                    .shortest_path(first, second)
                    .or_else(|| csr.shortest_path(second, first));
                match path {
                    Some(p) => {
                        let hops: Vec<&str> = p.iter().map(|s| s.as_str()).collect();
                        let rendered = format!(
                            "Dependency path ({} hops): {}",
                            hops.len().saturating_sub(1),
                            hops.join(" -> ")
                        );
                        let nodes: Vec<Value> = hops.iter().map(|id| describe(id)).collect();
                        Ok(ToolOutput::text(
                            obj! {"op" => "path", "path" => Value::array(nodes)},
                            rendered,
                        ))
                    }
                    None => Ok(ToolOutput::text(
                        obj! {"op" => "path", "path" => Value::array(vec![])},
                        format!("No dependency path connects {first} and {second}."),
                    )),
                }
            }
            GraphOp::Upstream | GraphOp::Downstream => {
                let hops = if op == GraphOp::Upstream {
                    csr.upstream(first, depth)
                } else {
                    csr.downstream(first, depth)
                };
                let direction = if op == GraphOp::Upstream {
                    "upstream lineage"
                } else {
                    "downstream impact"
                };
                let rows: Vec<Value> = hops
                    .iter()
                    .map(|(id, d)| {
                        let mut v = describe(id);
                        v.insert("depth", *d as i64);
                        v
                    })
                    .collect();
                let mut rendered = format!(
                    "{} of {first}: {} task(s) within {depth} hops",
                    direction,
                    hops.len()
                );
                if !hops.is_empty() {
                    rendered.push('\n');
                    for (id, d) in &hops {
                        let act = csr
                            .node_props(id)
                            .and_then(|p| p.get("activity_id").cloned())
                            .map(|v| v.display_plain())
                            .unwrap_or_default();
                        rendered.push_str(&format!("  [{d}] {id} ({act})\n"));
                    }
                }
                Ok(ToolOutput::text(
                    obj! {
                        "op" => if op == GraphOp::Upstream { "upstream" } else { "downstream" },
                        "root" => first.as_str(),
                        "tasks" => Value::array(rows),
                    },
                    rendered,
                ))
            }
        }
    }
}

/// The tool registry ("Bring your own tool").
#[derive(Default)]
pub struct ToolRegistry {
    tools: BTreeMap<&'static str, Box<dyn Tool>>,
}

impl ToolRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry preloaded with the built-in tools of §4.2.
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register(Box::new(InMemoryQueryTool));
        r.register(Box::new(ProvDbQueryTool::new()));
        r.register(Box::new(PlotTool));
        r.register(Box::new(AnomalyScanTool));
        r.register(Box::new(GuidelineTool));
        r.register(Box::new(GraphQueryTool::new()));
        r
    }

    /// Register (or replace) a tool.
    pub fn register(&mut self, tool: Box<dyn Tool>) {
        self.tools.insert(tool.name(), tool);
    }

    /// `(name, description, requires_llm)` listing.
    pub fn list(&self) -> Vec<(&'static str, &'static str, bool)> {
        self.tools
            .values()
            .map(|t| (t.name(), t.description(), t.requires_llm()))
            .collect()
    }

    /// Dispatch a call by name.
    pub fn call(
        &self,
        name: &str,
        args: &Value,
        ctx: &ToolContext,
    ) -> Result<ToolOutput, ToolError> {
        self.tools
            .get(name)
            .ok_or_else(|| ToolError::UnknownTool(name.to_string()))?
            .call(args, ctx)
    }

    /// Number of registered tools.
    pub fn len(&self) -> usize {
        self.tools.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }
}

/// Helper to build tool argument objects.
pub fn args(pairs: &[(&str, Value)]) -> Value {
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(prov_model::Sym::from(*k), v.clone());
    }
    Value::object(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::TaskMessageBuilder;

    fn tool_ctx() -> ToolContext {
        let ctx = ContextManager::default_sized();
        for i in 0..20 {
            ctx.ingest(
                TaskMessageBuilder::new(format!("t{i}"), "wf", if i % 2 == 0 { "a" } else { "b" })
                    .generates("v", i as f64)
                    .span(i as f64, i as f64 + 1.5)
                    .build(),
            );
        }
        let db = ProvenanceDatabase::shared();
        for i in 0..5 {
            db.insert(
                &TaskMessageBuilder::new(format!("h{i}"), "old-wf", "historical")
                    .generates("v", i as f64)
                    .build(),
            );
        }
        ToolContext {
            context: ctx,
            db: Some(db),
            hub: StreamingHub::in_memory(),
        }
    }

    #[test]
    fn in_memory_query_tool_runs_code() {
        let ctx = tool_ctx();
        let registry = ToolRegistry::with_builtins();
        let out = registry
            .call(
                "in_memory_query",
                &args(&[("code", Value::from(r#"len(df[df["activity_id"] == "a"])"#))]),
                &ctx,
            )
            .unwrap();
        assert_eq!(out.content, Value::Int(10));
    }

    #[test]
    fn parse_errors_surface_to_user() {
        let ctx = tool_ctx();
        let registry = ToolRegistry::with_builtins();
        let err = registry
            .call(
                "in_memory_query",
                &args(&[("code", Value::from("SELECT * FROM df"))]),
                &ctx,
            )
            .unwrap_err();
        assert!(matches!(err, ToolError::Exec(_)));
        assert!(err.to_string().contains("parse"));
    }

    #[test]
    fn provdb_tool_sees_historical_data() {
        let ctx = tool_ctx();
        let registry = ToolRegistry::with_builtins();
        let out = registry
            .call(
                "provdb_query",
                &args(&[("code", Value::from("len(df)"))]),
                &ctx,
            )
            .unwrap();
        assert_eq!(out.content, Value::Int(5)); // db rows, not buffer rows
    }

    #[test]
    fn provdb_tool_pushes_selective_queries() {
        let ctx = tool_ctx();
        let registry = ToolRegistry::with_builtins();
        let code = r#"df[df["task_id"] == "h3"]["v"].sum()"#;
        // The query must actually be servable by the pushdown executor —
        // if planning regresses, this query would silently fall back to
        // the oracle and the assertion below would stop meaning anything.
        let db = ctx.db.as_ref().unwrap();
        let query = parse(code).unwrap();
        let plan = provql::plan(&query, db.as_ref());
        assert!(plan.pipelines().iter().all(|p| p.has_pushdown()));
        assert!(matches!(
            prov_db::execute_plan(db, &plan),
            prov_db::Pushdown::Executed(Ok(_))
        ));
        // Selective equality served straight from the store; the answer
        // must match the oracle's.
        let out = registry
            .call("provdb_query", &args(&[("code", Value::from(code))]), &ctx)
            .unwrap();
        assert_eq!(out.content, Value::Float(3.0));
    }

    /// The `meta.cache` outcome string of a tool output.
    fn cache_outcome(out: &ToolOutput) -> &str {
        out.meta
            .as_ref()
            .and_then(|m| m.get("cache"))
            .and_then(Value::as_str)
            .expect("provdb tool reports cache metadata")
    }

    #[test]
    fn provdb_tool_serves_columnar_aggregates_without_the_oracle() {
        let ctx = tool_ctx();
        let db = ctx.db.as_ref().unwrap();
        let tool = ProvDbQueryTool::new();
        // A corpus-wide group-by over columnar fields: no pushed conjunct,
        // no limit — pre-columnar this rebuilt (then cached) the oracle
        // frame; now the scan serves it from the column vectors.
        let out = tool
            .call(
                &args(&[(
                    "code",
                    Value::from(r#"df.groupby("activity_id")["duration"].mean()"#),
                )]),
                &ctx,
            )
            .unwrap();
        assert!(out.table.is_some());
        let snap = tool.snapshot(db);
        assert!(
            !snap.oracle_built(),
            "columnar-servable aggregate should not build the oracle frame"
        );
        // And the answer matches the oracle's.
        let oracle = execute(
            &parse(r#"df.groupby("activity_id")["duration"].mean()"#).unwrap(),
            &snap.oracle_frame(),
        )
        .unwrap();
        assert_eq!(out.table.unwrap(), *oracle.as_frame().unwrap());
    }

    #[test]
    fn provdb_tool_serves_topk_without_the_oracle() {
        let ctx = tool_ctx();
        let db = ctx.db.as_ref().unwrap();
        let tool = ProvDbQueryTool::new();
        // "latest N tasks": a leading sort over an orderable key plus a
        // head — pre-PR5 the sort blocked limit pushdown and this rebuilt
        // (then sorted) the whole oracle frame; now it executes as a
        // streaming top-k scan.
        let code =
            r#"df.sort_values("started_at", ascending=False)[["task_id", "started_at"]].head(2)"#;
        let query = parse(code).unwrap();
        let plan = provql::plan(&query, db.as_ref());
        for p in plan.pipelines() {
            assert!(!p.scan.sort.is_empty(), "sort should push");
            assert_eq!(p.scan.limit, Some(2), "head should push through the sort");
        }
        let out = tool
            .call(&args(&[("code", Value::from(code))]), &ctx)
            .unwrap();
        let snap = tool.snapshot(db);
        assert!(
            !snap.oracle_built(),
            "top-k should not build the oracle frame"
        );
        let oracle = execute(&query, &snap.oracle_frame()).unwrap();
        assert_eq!(out.table.unwrap(), *oracle.as_frame().unwrap());
    }

    #[test]
    fn provdb_tool_caches_results_per_generation() {
        let ctx = tool_ctx();
        let db = ctx.db.as_ref().unwrap();
        let tool = ProvDbQueryTool::new();
        let run = |code: &str| {
            tool.call(&args(&[("code", Value::from(code))]), &ctx)
                .unwrap()
        };
        // First execution misses, the identical repeat hits the shared
        // plan cache — including an equivalent spelling of the same plan
        // (commuted conjuncts share one canonical key).
        let first = run(r#"df[(df["v"] >= 1) & (df["task_id"] == "h3")][["v"]]"#);
        assert_eq!(cache_outcome(&first), "miss");
        let repeat = run(r#"df[(df["v"] >= 1) & (df["task_id"] == "h3")][["v"]]"#);
        assert_eq!(cache_outcome(&repeat), "hit");
        // An equivalent spelling — commuted conjuncts, float literal —
        // shares the canonical key and hits too.
        let commuted = run(r#"df[(df["task_id"] == "h3") & (df["v"] >= 1.0)][["v"]]"#);
        assert_eq!(cache_outcome(&commuted), "hit");
        assert_eq!(first.content, commuted.content);

        // The pinned snapshot is reused while the generation holds…
        let before = tool.snapshot(db);
        assert!(Arc::ptr_eq(&before, &tool.snapshot(db)));
        // …and an insert bumps the generation: new snapshot, cache miss,
        // and the new row is visible through the query path.
        db.insert(&TaskMessageBuilder::new("h9", "old-wf", "historical").build());
        let out = run("len(df)");
        assert_eq!(out.content, Value::Int(6));
        let after = tool.snapshot(db);
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(after.generation(), before.generation() + 1);
    }

    #[test]
    fn plot_tool_builds_chart() {
        let ctx = tool_ctx();
        let registry = ToolRegistry::with_builtins();
        let out = registry
            .call(
                "plot",
                &args(&[
                    (
                        "code",
                        Value::from(r#"df.groupby("activity_id")["v"].mean()"#),
                    ),
                    ("title", Value::from("mean v per activity")),
                ]),
                &ctx,
            )
            .unwrap();
        let chart = out.chart.expect("chart");
        assert_eq!(chart.len(), 2);
        assert!(out.rendered.contains("mean v per activity"));
    }

    #[test]
    fn guideline_tool_stores() {
        let ctx = tool_ctx();
        let registry = ToolRegistry::with_builtins();
        registry
            .call(
                "add_guideline",
                &args(&[(
                    "text",
                    Value::from("use the field lr to filter learning rates"),
                )]),
                &ctx,
            )
            .unwrap();
        assert_eq!(ctx.context.guidelines.user_count(), 1);
    }

    #[test]
    fn anomaly_tool_needs_no_llm() {
        let registry = ToolRegistry::with_builtins();
        let listing = registry.list();
        let anomaly = listing
            .iter()
            .find(|(n, _, _)| *n == "anomaly_scan")
            .unwrap();
        assert!(!anomaly.2);
        let query = listing
            .iter()
            .find(|(n, _, _)| *n == "in_memory_query")
            .unwrap();
        assert!(query.2);
    }

    #[test]
    fn unknown_tool_and_byot() {
        let ctx = tool_ctx();
        let mut registry = ToolRegistry::with_builtins();
        assert!(matches!(
            registry.call("nope", &Value::Null, &ctx),
            Err(ToolError::UnknownTool(_))
        ));
        // Bring your own tool.
        struct RowCount;
        impl Tool for RowCount {
            fn name(&self) -> &'static str {
                "row_count"
            }
            fn description(&self) -> &'static str {
                "rows in the buffer"
            }
            fn call(&self, _: &Value, ctx: &ToolContext) -> Result<ToolOutput, ToolError> {
                Ok(ToolOutput::text(
                    Value::Int(ctx.context.len() as i64),
                    "rows",
                ))
            }
        }
        let before = registry.len();
        registry.register(Box::new(RowCount));
        assert_eq!(registry.len(), before + 1);
        let out = registry.call("row_count", &Value::Null, &ctx).unwrap();
        assert_eq!(out.content, Value::Int(20));
    }
}
