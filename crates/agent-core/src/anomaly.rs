//! The Anomaly Detector tool (§4.2): inspects buffered data, flags
//! abnormal telemetry or domain values with statistical tests, tags the
//! offending messages and republishes them to the streaming hub so
//! downstream services can react. Notably, this MCP tool requires **no LLM
//! interaction** — the paper calls it out as an example of exactly that.

use dataframe::DataFrame;
use prov_model::{obj, TaskMessage, Value};
use prov_stream::{topics, StreamingHub};

/// Configuration for the detector.
#[derive(Debug, Clone)]
pub struct AnomalyConfig {
    /// |z| threshold beyond which a value is anomalous.
    pub z_threshold: f64,
    /// Minimum sample size before testing a column.
    pub min_samples: usize,
    /// Numeric columns to inspect (empty = all numeric columns except
    /// identifiers/timestamps).
    pub columns: Vec<String>,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        Self {
            z_threshold: 3.5,
            min_samples: 8,
            columns: Vec::new(),
        }
    }
}

/// One detected anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Task whose value is abnormal.
    pub task_id: String,
    /// Column holding the abnormal value.
    pub column: String,
    /// The abnormal value.
    pub value: f64,
    /// Its z-score against the column distribution.
    pub z_score: f64,
}

/// Statistical anomaly detector over the in-memory context.
#[derive(Debug, Default)]
pub struct AnomalyDetector {
    config: AnomalyConfig,
}

impl AnomalyDetector {
    /// Detector with a config.
    pub fn new(config: AnomalyConfig) -> Self {
        Self { config }
    }

    /// Columns skipped by default (identifiers and clocks are not load
    /// metrics even though they are numeric).
    fn skip_column(name: &str) -> bool {
        name.ends_with("_id")
            || name == "started_at"
            || name == "ended_at"
            || name.starts_with("telemetry_at") && name.contains("bytes")
    }

    /// Scan a frame for anomalies (z-score test per numeric column).
    pub fn scan(&self, frame: &DataFrame) -> Vec<Anomaly> {
        let mut out = Vec::new();
        let Some(task_ids) = frame.column("task_id") else {
            return out;
        };
        for name in frame.column_names() {
            if !self.config.columns.is_empty() && !self.config.columns.iter().any(|c| c == name) {
                continue;
            }
            if self.config.columns.is_empty() && Self::skip_column(name) {
                continue;
            }
            let col = frame.column(name).expect("listed");
            if !col.dtype().is_numeric() {
                continue;
            }
            let values = col.values();
            let nums: Vec<(usize, f64)> = values
                .iter()
                .enumerate()
                .filter_map(|(i, v)| v.as_f64().map(|f| (i, f)))
                .collect();
            if nums.len() < self.config.min_samples {
                continue;
            }
            let n = nums.len() as f64;
            let mean = nums.iter().map(|(_, f)| f).sum::<f64>() / n;
            let var = nums.iter().map(|(_, f)| (f - mean).powi(2)).sum::<f64>() / (n - 1.0);
            let std = var.sqrt();
            if std < 1e-12 {
                continue;
            }
            for (row, value) in nums {
                let z = (value - mean) / std;
                if z.abs() >= self.config.z_threshold {
                    out.push(Anomaly {
                        task_id: task_ids
                            .get(row)
                            .and_then(Value::as_str)
                            .unwrap_or("<unknown>")
                            .to_string(),
                        column: name.to_string(),
                        value,
                        z_score: z,
                    });
                }
            }
        }
        out
    }

    /// Scan, then tag + republish each anomalous message to the anomalies
    /// topic (§4.2). Returns the detected anomalies.
    pub fn scan_and_publish(
        &self,
        frame: &DataFrame,
        recent: &[TaskMessage],
        hub: &StreamingHub,
    ) -> Vec<Anomaly> {
        let anomalies = self.scan(frame);
        for a in &anomalies {
            if let Some(msg) = recent.iter().find(|m| m.task_id.as_str() == a.task_id) {
                let tagged = msg.clone().with_tag(
                    "anomaly",
                    obj! {
                        "metric" => a.column.as_str(),
                        "value" => a.value,
                        "z_score" => a.z_score,
                        "detector" => "zscore",
                    },
                );
                let _ = hub.publish(topics::ANOMALIES, tagged);
            }
        }
        anomalies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::TaskMessageBuilder;

    fn frame_with_outlier() -> (DataFrame, Vec<TaskMessage>) {
        let mut msgs: Vec<TaskMessage> = (0..20)
            .map(|i| {
                TaskMessageBuilder::new(format!("t{i}"), "wf", "step")
                    .generates("energy", -155.0 + (i % 3) as f64 * 0.01)
                    .span(i as f64, i as f64 + 1.0)
                    .build()
            })
            .collect();
        msgs.push(
            TaskMessageBuilder::new("t-outlier", "wf", "step")
                .generates("energy", 40.0) // wildly off
                .span(21.0, 22.0)
                .build(),
        );
        (DataFrame::from_messages(&msgs), msgs)
    }

    #[test]
    fn detects_outlier() {
        let (frame, _) = frame_with_outlier();
        let det = AnomalyDetector::new(AnomalyConfig::default());
        let anomalies = det.scan(&frame);
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].task_id, "t-outlier");
        assert_eq!(anomalies[0].column, "energy");
        assert!(anomalies[0].z_score.abs() > 3.5);
    }

    #[test]
    fn clean_data_has_no_anomalies() {
        let msgs: Vec<TaskMessage> = (0..20)
            .map(|i| {
                TaskMessageBuilder::new(format!("t{i}"), "wf", "step")
                    .generates("energy", -155.0 + (i % 5) as f64 * 0.02)
                    .build()
            })
            .collect();
        let frame = DataFrame::from_messages(&msgs);
        let det = AnomalyDetector::new(AnomalyConfig::default());
        assert!(det.scan(&frame).is_empty());
    }

    #[test]
    fn small_samples_skipped() {
        let msgs: Vec<TaskMessage> = (0..3)
            .map(|i| {
                TaskMessageBuilder::new(format!("t{i}"), "wf", "step")
                    .generates("v", if i == 2 { 1e9 } else { 1.0 })
                    .build()
            })
            .collect();
        let frame = DataFrame::from_messages(&msgs);
        let det = AnomalyDetector::new(AnomalyConfig::default());
        assert!(det.scan(&frame).is_empty());
    }

    #[test]
    fn publishes_tagged_messages() {
        let (frame, msgs) = frame_with_outlier();
        let hub = StreamingHub::in_memory();
        let sub = hub.subscribe(topics::ANOMALIES);
        let det = AnomalyDetector::new(AnomalyConfig::default());
        let found = det.scan_and_publish(&frame, &msgs, &hub);
        assert_eq!(found.len(), 1);
        let published = sub.drain();
        assert_eq!(published.len(), 1);
        let tag = published[0].tags.get("anomaly").expect("tagged");
        assert_eq!(tag.get("metric").and_then(Value::as_str), Some("energy"));
    }

    #[test]
    fn column_allowlist_respected() {
        let (frame, _) = frame_with_outlier();
        let det = AnomalyDetector::new(AnomalyConfig {
            columns: vec!["duration".to_string()],
            ..AnomalyConfig::default()
        });
        assert!(det.scan(&frame).is_empty());
    }
}
