//! The Context Monitor (§4.2): "periodically inspects the in-memory buffer
//! maintained by the Context Manager and dispatches tools based on
//! configurable rules."

use crate::tools::{ToolContext, ToolError, ToolOutput, ToolRegistry};
use parking_lot::Mutex;
use prov_model::Value;

/// One monitoring rule: run `tool` whenever at least `every_n_messages`
/// new messages arrived since the rule last fired.
#[derive(Debug, Clone)]
pub struct MonitorRule {
    /// Rule name (for reports).
    pub name: String,
    /// Message-count trigger.
    pub every_n_messages: u64,
    /// Tool to dispatch.
    pub tool: String,
    /// Arguments for the tool.
    pub args: Value,
}

/// Result of one monitor tick.
#[derive(Debug)]
pub struct TickReport {
    /// `(rule name, tool result)` for every rule that fired.
    pub fired: Vec<(String, Result<ToolOutput, ToolError>)>,
}

/// The periodic inspector.
pub struct ContextMonitor {
    rules: Vec<MonitorRule>,
    /// Ingestion counter at each rule's last firing.
    last_fired: Mutex<Vec<u64>>,
}

impl ContextMonitor {
    /// Monitor with a rule set.
    pub fn new(rules: Vec<MonitorRule>) -> Self {
        let n = rules.len();
        Self {
            rules,
            last_fired: Mutex::new(vec![0; n]),
        }
    }

    /// The default configuration: anomaly scan every 50 messages.
    pub fn default_rules() -> Self {
        Self::new(vec![MonitorRule {
            name: "periodic-anomaly-scan".to_string(),
            every_n_messages: 50,
            tool: "anomaly_scan".to_string(),
            args: Value::Null,
        }])
    }

    /// Registered rules.
    pub fn rules(&self) -> &[MonitorRule] {
        &self.rules
    }

    /// Inspect the buffer once, dispatching any due rules.
    pub fn tick(&self, registry: &ToolRegistry, ctx: &ToolContext) -> TickReport {
        let ingested = ctx.context.ingested();
        let mut fired = Vec::new();
        let mut last = self.last_fired.lock();
        for (i, rule) in self.rules.iter().enumerate() {
            if ingested.saturating_sub(last[i]) >= rule.every_n_messages {
                last[i] = ingested;
                let result = registry.call(&rule.tool, &rule.args, ctx);
                fired.push((rule.name.clone(), result));
            }
        }
        TickReport { fired }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextManager;
    use prov_model::TaskMessageBuilder;
    use prov_stream::StreamingHub;

    fn tool_ctx(n: usize) -> ToolContext {
        let ctx = ContextManager::default_sized();
        for i in 0..n {
            ctx.ingest(
                TaskMessageBuilder::new(format!("t{i}"), "wf", "a")
                    .generates("v", if i == n - 1 && n > 10 { 1e6 } else { i as f64 })
                    .build(),
            );
        }
        ToolContext {
            context: ctx,
            db: None,
            hub: StreamingHub::in_memory(),
        }
    }

    #[test]
    fn fires_when_threshold_reached() {
        let monitor = ContextMonitor::default_rules();
        let registry = ToolRegistry::with_builtins();
        let ctx = tool_ctx(60);
        let report = monitor.tick(&registry, &ctx);
        assert_eq!(report.fired.len(), 1);
        assert!(report.fired[0].1.is_ok());
        // Immediately ticking again: not enough new messages.
        let report2 = monitor.tick(&registry, &ctx);
        assert!(report2.fired.is_empty());
    }

    #[test]
    fn does_not_fire_below_threshold() {
        let monitor = ContextMonitor::default_rules();
        let registry = ToolRegistry::with_builtins();
        let ctx = tool_ctx(10);
        assert!(monitor.tick(&registry, &ctx).fired.is_empty());
    }

    #[test]
    fn multiple_rules_independent() {
        let monitor = ContextMonitor::new(vec![
            MonitorRule {
                name: "fast".into(),
                every_n_messages: 5,
                tool: "anomaly_scan".into(),
                args: Value::Null,
            },
            MonitorRule {
                name: "slow".into(),
                every_n_messages: 500,
                tool: "anomaly_scan".into(),
                args: Value::Null,
            },
        ]);
        let registry = ToolRegistry::with_builtins();
        let ctx = tool_ctx(20);
        let report = monitor.tick(&registry, &ctx);
        assert_eq!(report.fired.len(), 1);
        assert_eq!(report.fired[0].0, "fast");
    }

    #[test]
    fn unknown_tool_reports_error() {
        let monitor = ContextMonitor::new(vec![MonitorRule {
            name: "broken".into(),
            every_n_messages: 1,
            tool: "no_such_tool".into(),
            args: Value::Null,
        }]);
        let registry = ToolRegistry::with_builtins();
        let ctx = tool_ctx(5);
        let report = monitor.tick(&registry, &ctx);
        assert!(report.fired[0].1.is_err());
    }
}
