//! # agent-core
//!
//! The paper's primary contribution: the provenance AI agent reference
//! architecture (§4) —
//!
//! * [`context::ContextManager`] — subscribes to the streaming hub and
//!   maintains the in-memory context (a DataFrame of recent task messages),
//!   the [`schema::DynamicDataflowSchema`], and the session
//!   [`guidelines::Guidelines`];
//! * [`prompt::PromptBuilder`] / [`prompt::RagStrategy`] — the RAG pipeline
//!   assembling Table-2 prompt configurations;
//! * [`tools`] — MCP-shaped tools (in-memory query, provenance-DB query,
//!   plot, anomaly scan, guideline store, PROV-graph traversal) behind a
//!   BYOT registry;
//! * [`autofix::AutoFixer`] — the feedback-driven query auto-fixer of
//!   §5.4's future work: diagnose → repair → re-execute → suggest
//!   guideline;
//! * [`monitor::ContextMonitor`] + [`anomaly::AnomalyDetector`] — rule-driven
//!   inspection and anomaly tagging/republish;
//! * [`dashboard::Dashboard`] — the Grafana-style live status board over
//!   the same context (Fig 2's dashboard consumer);
//! * [`mcp::McpServer`] — JSON-RPC MCP surface (tools/prompts/resources);
//! * [`agent::ProvenanceAgent`] — the chat loop: route → prompt → LLM →
//!   parse → execute → summarize, with the agent's own tool executions and
//!   LLM interactions recorded as W3C-PROV task messages.

#![warn(missing_docs)]

pub mod agent;
pub mod anomaly;
pub mod autofix;
pub mod context;
pub mod dashboard;
pub mod guidelines;
pub mod mcp;
pub mod monitor;
pub mod plot;
pub mod prompt;
pub mod schema;
pub mod tools;

pub use agent::{AgentConfig, AgentReply, ProvenanceAgent};
pub use anomaly::{Anomaly, AnomalyConfig, AnomalyDetector};
pub use autofix::{AutoFixer, Diagnosis, FixProposal};
pub use context::{ContextConfig, ContextFeeder, ContextManager};
pub use dashboard::{Dashboard, DashboardSnapshot};
pub use guidelines::{Guidelines, STATIC_GUIDELINES};
pub use mcp::{request as mcp_request, McpServer};
pub use monitor::{ContextMonitor, MonitorRule, TickReport};
pub use plot::BarChart;
pub use prompt::{PromptBuilder, RagStrategy};
pub use schema::{ActivitySchema, DynamicDataflowSchema, FieldInfo};
pub use tools::{args as tool_args, Tool, ToolContext, ToolError, ToolOutput, ToolRegistry};
