//! The Provenance AI Agent (§4): natural-language chat over live workflow
//! provenance, with routed tools, RAG prompts, and self-provenance.
//!
//! Every tool invocation is recorded as a workflow task (a subclass of
//! `prov:Activity`) and every LLM interaction likewise, linked via
//! `wasInformedBy`, with the agent registered as `prov:Agent` (§4.2).

use crate::context::ContextManager;
use crate::plot::BarChart;
use crate::prompt::{PromptBuilder, RagStrategy};
use crate::tools::{args, ToolContext, ToolRegistry};
use dataframe::DataFrame;
use llm_sim::{classify, ChatRequest, IntentKind, LlmServer, Route};
use prov_db::ProvenanceDatabase;
use prov_model::{obj, MessageType, SharedClock, TaskMessageBuilder, Value};
use prov_stream::{topics, StreamingHub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Agent configuration.
pub struct AgentConfig {
    /// RAG strategy used to build prompts (default: Full).
    pub strategy: RagStrategy,
    /// Experiment seed threaded into the LLM service.
    pub seed: u64,
    /// Record the agent's own tool/LLM provenance to the hub.
    pub record_provenance: bool,
    /// Agent identity registered as `prov:Agent`.
    pub agent_id: String,
    /// Enable the feedback-driven auto-fixer (§5.4 future work): failed
    /// queries are diagnosed, repaired, re-executed, and generalized into
    /// session guidelines. Off by default — the paper's baseline flow
    /// surfaces the error to the user instead.
    pub autofix: bool,
}

impl Default for AgentConfig {
    fn default() -> Self {
        Self {
            strategy: RagStrategy::Full,
            seed: 0x5EED,
            record_provenance: true,
            agent_id: "provenance-agent".to_string(),
            autofix: false,
        }
    }
}

/// One chat reply.
#[derive(Debug)]
pub struct AgentReply {
    /// Routing decision taken.
    pub route: Route,
    /// Natural-language answer/summary.
    pub text: String,
    /// The generated query code, when the LLM produced one (the GUI always
    /// displays it for transparency, §5.4).
    pub code: Option<String>,
    /// Tabular result, when produced.
    pub table: Option<DataFrame>,
    /// Chart, when produced.
    pub chart: Option<BarChart>,
    /// Execution/parse error surfaced to the user, when any.
    pub error: Option<String>,
    /// Simulated LLM latency (ms); 0 for LLM-free paths.
    pub latency_ms: f64,
    /// Total LLM tokens consumed (input + output); 0 for LLM-free paths.
    pub tokens: usize,
}

/// The provenance agent.
pub struct ProvenanceAgent {
    /// Live context handle.
    pub context: Arc<ContextManager>,
    hub: StreamingHub,
    llm: Box<dyn LlmServer>,
    registry: ToolRegistry,
    tool_ctx: ToolContext,
    config: AgentConfig,
    clock: SharedClock,
    interactions: AtomicU64,
}

impl ProvenanceAgent {
    /// Assemble an agent over a context, hub, LLM endpoint and optional
    /// persistent database.
    pub fn new(
        context: Arc<ContextManager>,
        hub: StreamingHub,
        llm: Box<dyn LlmServer>,
        db: Option<Arc<ProvenanceDatabase>>,
        clock: SharedClock,
        config: AgentConfig,
    ) -> Self {
        let tool_ctx = ToolContext {
            context: context.clone(),
            db,
            hub: hub.clone(),
        };
        Self {
            context,
            hub,
            llm,
            registry: ToolRegistry::with_builtins(),
            tool_ctx,
            config,
            clock,
            interactions: AtomicU64::new(0),
        }
    }

    /// Register an additional tool (BYOT).
    pub fn register_tool(&mut self, tool: Box<dyn crate::tools::Tool>) {
        self.registry.register(tool);
    }

    /// The model behind this agent.
    pub fn model(&self) -> llm_sim::ModelId {
        self.llm.model()
    }

    /// Handle one user message.
    pub fn chat(&self, user: &str) -> AgentReply {
        let route = classify(user);
        match route {
            Route::Greeting => AgentReply {
                route,
                text: "Hello! I am the provenance agent. Ask me about the tasks, telemetry, \
                       and data of your running workflow."
                    .to_string(),
                code: None,
                table: None,
                chart: None,
                error: None,
                latency_ms: 0.0,
                tokens: 0,
            },
            Route::GuidelineAddition => {
                let out = self
                    .registry
                    .call(
                        "add_guideline",
                        &args(&[("text", Value::from(user))]),
                        &self.tool_ctx,
                    )
                    .expect("builtin guideline tool");
                self.record_tool_execution("add_guideline", user, &out.rendered, None);
                AgentReply {
                    route,
                    text: out.rendered,
                    code: None,
                    table: None,
                    chart: None,
                    error: None,
                    latency_ms: 0.0,
                    tokens: 0,
                }
            }
            Route::GraphQuery => self.graph_flow(user),
            Route::MonitorQuery | Route::HistoricalQuery | Route::Plot => {
                self.query_flow(user, route)
            }
        }
    }

    /// Multi-hop lineage/impact/path queries: rule-based, LLM-free, served
    /// by the graph tool over the persistent PROV graph (§5.4's "deep graph
    /// traversals over persistent provenance databases").
    fn graph_flow(&self, user: &str) -> AgentReply {
        let tool_args = args(&[("question", Value::from(user))]);
        match self
            .registry
            .call("graph_query", &tool_args, &self.tool_ctx)
        {
            Ok(out) => {
                self.record_tool_execution("graph_query", user, &out.rendered, None);
                AgentReply {
                    route: Route::GraphQuery,
                    text: out.rendered,
                    code: None,
                    table: out.table,
                    chart: None,
                    error: None,
                    latency_ms: 0.0,
                    tokens: 0,
                }
            }
            Err(e) => {
                self.record_tool_execution("graph_query", user, &e.to_string(), None);
                AgentReply {
                    route: Route::GraphQuery,
                    text: format!(
                        "I could not run that graph traversal: {e}. Mention a task id that \
                         exists in the provenance database (historical queries need the \
                         persistent database attached)."
                    ),
                    code: None,
                    table: None,
                    chart: None,
                    error: Some(e.to_string()),
                    latency_ms: 0.0,
                    tokens: 0,
                }
            }
        }
    }

    fn query_flow(&self, user: &str, route: Route) -> AgentReply {
        let system = PromptBuilder::system(self.config.strategy, &self.context);
        let request = ChatRequest {
            system,
            user: user.to_string(),
            temperature: 0.0,
            run: 0,
            seed: self.config.seed,
        };
        let response = self.llm.chat(&request);
        let llm_task_id = self.record_llm_interaction(user, &response);
        let (latency_ms, tokens) = (response.latency_ms, response.total_tokens());

        if !response.is_code {
            return AgentReply {
                route,
                text: response.text,
                code: None,
                table: None,
                chart: None,
                error: None,
                latency_ms,
                tokens,
            };
        }

        let tool = match route {
            Route::Plot => "plot",
            // Historical questions go to the persistent database, where
            // the query is planned and pushed into the store's indexes
            // (`provql::plan` + `prov_db::try_execute`) instead of
            // re-materializing the whole corpus per question.
            Route::HistoricalQuery => "provdb_query",
            _ => "in_memory_query",
        };
        let tool_args = args(&[
            ("code", Value::from(response.text.as_str())),
            ("title", Value::from(user)),
        ]);
        match self.registry.call(tool, &tool_args, &self.tool_ctx) {
            Ok(out) => {
                self.record_tool_execution(
                    tool,
                    &response.text,
                    &out.rendered,
                    llm_task_id.as_deref(),
                );
                let text = summarize(user, response.intent, &out.content, out.chart.is_some());
                AgentReply {
                    route,
                    text,
                    code: Some(response.text),
                    table: out.table,
                    chart: out.chart,
                    error: None,
                    latency_ms,
                    tokens,
                }
            }
            Err(e) => {
                // §5.4: the GUI shows the generated code and the runtime
                // error so the user can correct it or add a guideline.
                self.record_tool_execution(
                    tool,
                    &response.text,
                    &e.to_string(),
                    llm_task_id.as_deref(),
                );
                if self.config.autofix {
                    if let Some(reply) =
                        self.autofix_flow(user, route, tool, &response, &e, llm_task_id.as_deref())
                    {
                        return reply;
                    }
                }
                AgentReply {
                    route,
                    text: format!(
                        "I generated a query but it failed to run. You can rephrase, correct \
                         the code, or teach me a guideline. Error: {e}"
                    ),
                    code: Some(response.text),
                    table: None,
                    chart: None,
                    error: Some(e.to_string()),
                    latency_ms,
                    tokens,
                }
            }
        }
    }

    /// The feedback-driven auto-fixer pass (§5.4): diagnose the failed
    /// query, repair it, re-execute, and store the generalized guideline so
    /// future prompts avoid the mistake. Returns `None` when no mechanical
    /// repair applies (the baseline error reply is used instead).
    fn autofix_flow(
        &self,
        user: &str,
        route: Route,
        tool: &str,
        response: &llm_sim::ChatResponse,
        error: &crate::tools::ToolError,
        llm_task_id: Option<&str>,
    ) -> Option<AgentReply> {
        let columns = self.context.columns();
        let fixer = crate::autofix::AutoFixer::new();
        // Iterative repair: a chatty response may hide a second defect
        // (e.g. prose wrapping *and* a hallucinated column), so diagnose →
        // repair → re-execute up to three rounds.
        let mut code = response.text.clone();
        let mut err = error.to_string();
        let mut notes: Vec<String> = Vec::new();
        let mut guidelines: Vec<String> = Vec::new();
        for _round in 0..3 {
            let proposal = fixer.propose(&code, &err, &columns)?;
            notes.push(proposal.note.clone());
            if let Some(g) = &proposal.guideline {
                guidelines.push(g.clone());
            }
            code = proposal.fixed_code;
            let retry_args = args(&[
                ("code", Value::from(code.as_str())),
                ("title", Value::from(user)),
            ]);
            match self.registry.call(tool, &retry_args, &self.tool_ctx) {
                Ok(out) => {
                    self.record_tool_execution(
                        "auto_fixer",
                        &format!("code: {} | error: {error}", response.text),
                        &notes.join("; "),
                        llm_task_id,
                    );
                    self.record_tool_execution(tool, &code, &out.rendered, llm_task_id);
                    // Generalize the repairs into session guidelines:
                    // subsequent prompts carry them, so the LLM stops
                    // making these mistakes.
                    for g in &guidelines {
                        self.context.guidelines.add_user(g);
                    }
                    let summary =
                        summarize(user, response.intent, &out.content, out.chart.is_some());
                    return Some(AgentReply {
                        route,
                        text: format!("{} ({})", summary, notes.join("; ")),
                        code: Some(code),
                        table: out.table,
                        chart: out.chart,
                        error: None,
                        latency_ms: response.latency_ms,
                        tokens: response.total_tokens(),
                    });
                }
                Err(e) => err = e.to_string(),
            }
        }
        None
    }

    /// Record an LLM interaction as a task-shaped provenance message with
    /// prompts in `used` and the response in `generated` (§4.2).
    fn record_llm_interaction(
        &self,
        user: &str,
        response: &llm_sim::ChatResponse,
    ) -> Option<String> {
        if !self.config.record_provenance {
            return None;
        }
        let n = self.interactions.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now();
        let task_id = format!("agent-llm-{n}");
        let msg = TaskMessageBuilder::new(task_id.clone(), "agent-session", "llm_chat")
            .msg_type(MessageType::LlmInteraction)
            .agent(self.config.agent_id.as_str())
            .used(obj! {
                "user_query" => user,
                "model" => self.llm.model().name(),
                "strategy" => self.config.strategy.label(),
                "input_tokens" => response.input_tokens,
            })
            .generated(obj! {
                "response" => response.text.as_str(),
                "is_code" => response.is_code,
                "output_tokens" => response.output_tokens,
            })
            .span(now, now + response.latency_ms / 1000.0)
            .host("agent-node")
            .build();
        let _ = self.hub.publish(topics::AGENT, msg);
        Some(task_id)
    }

    /// Record a tool execution, linked to the LLM interaction that informed
    /// it via `wasInformedBy` (`depends_on` in the message schema).
    fn record_tool_execution(
        &self,
        tool: &str,
        input: &str,
        output: &str,
        informed_by: Option<&str>,
    ) {
        if !self.config.record_provenance {
            return;
        }
        let n = self.interactions.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now();
        let mut builder = TaskMessageBuilder::new(format!("agent-tool-{n}"), "agent-session", tool)
            .msg_type(MessageType::ToolExecution)
            .agent(self.config.agent_id.as_str())
            .used(obj! {"input" => input})
            .generated(obj! {"output" => output.chars().take(500).collect::<String>()})
            .span(now, now + 0.002)
            .host("agent-node");
        if let Some(llm_id) = informed_by {
            builder = builder.depends_on(llm_id);
        }
        let _ = self.hub.publish(topics::AGENT, builder.build());
    }
}

/// Unit implied by a snake_case identifier's suffix, when the question
/// names a field verbatim (`melt_pool_temp_c` → °C, `energy_density_j_mm3`
/// → J/mm³).
fn unit_from_identifier(text: &str) -> Option<&'static str> {
    for token in text.split(|c: char| !(c.is_alphanumeric() || c == '_')) {
        if !token.contains('_') {
            continue;
        }
        let unit = if token.ends_with("_j_mm3") {
            Some("J/mm³")
        } else if token.ends_with("_temp_c") || token.ends_with("_deviation_c") {
            Some("°C")
        } else if token.ends_with("_um") {
            Some("µm")
        } else if token.ends_with("_pct") {
            Some("%")
        } else if token.ends_with("_mm_s") {
            Some("mm/s")
        } else if token.ends_with("_mm") {
            Some("mm")
        } else if token.ends_with("_khz") {
            Some("kHz")
        } else if token.ends_with("_mb") || token.ends_with("_mb_end") {
            Some("MB")
        } else {
            None
        };
        if unit.is_some() {
            return unit;
        }
    }
    None
}

/// Produce the textual summary accompanying a result.
///
/// Chemistry enrichment mirrors §5.3: multiplicity/charge answers gain
/// "singlet state" / "neutral charge" terminology (Q6); energy scalars
/// carry a unit — inferred correctly when row context identified the value
/// (Q1), but guessed wrong (kJ/mol) when the query returned a bare scalar
/// without its bond (the Q3 behavior).
fn summarize(user: &str, intent: IntentKind, content: &Value, charted: bool) -> String {
    let u = user.to_lowercase();
    if charted {
        return "Here is the chart you asked for, built from the live provenance buffer."
            .to_string();
    }
    match content {
        Value::Int(n) if intent == IntentKind::Count => {
            format!("There are {n} matching tasks.")
        }
        v if v.is_number() => {
            let x = v.as_f64().unwrap_or(0.0);
            // Self-describing field names win: a verbatim identifier with a
            // unit suffix (…_j_mm3, …_um) pins the unit mechanically, the
            // same metadata-driven inference the schema enables (§5.3 Q1).
            if let Some(unit) = unit_from_identifier(&u) {
                return format!("The answer is {x:.4} {unit}.");
            }
            let unit = if u.contains("energy") || u.contains("enthalpy") {
                if intent == IntentKind::ExtremeValue {
                    // Bare scalar: no row context to pin the unit — the
                    // agent guesses and gets it wrong (Q3).
                    " kJ/mol"
                } else {
                    " kcal/mol"
                }
            } else if u.contains("duration") || u.contains("long") || u.contains("span") {
                " seconds"
            } else if u.contains("memory") {
                " MB"
            } else if u.contains("cpu") || u.contains("gpu") {
                " %"
            } else {
                ""
            };
            format!("The answer is {x:.4}{unit}.")
        }
        Value::Object(m) if m.contains_key("rows") => {
            let count = m.get("row_count").and_then(Value::as_i64).unwrap_or(0);
            // A single-row table reads like one record; summarize it as
            // such so chemistry enrichment (Q6) applies.
            if count == 1 {
                if let Some(Value::Object(row)) =
                    m.get("rows").and_then(|r| r.get_index(0)).cloned()
                {
                    return summarize(user, intent, &Value::Object(row), charted);
                }
            }
            format!("I found {count} matching rows; the table is shown below.")
        }
        Value::Object(m) => {
            let mut text = String::from("Here is the matching record: ");
            let shown: Vec<String> = m
                .iter()
                .filter(|(k, _)| !k.starts_with("telemetry"))
                .take(8)
                .map(|(k, v)| format!("{k} = {}", v.display_plain()))
                .collect();
            text.push_str(&shown.join(", "));
            // Chemistry enrichment (Q6): spin/charge terminology.
            let mult = m.get("multiplicity").and_then(Value::as_i64);
            let charge = m.get("charge").and_then(Value::as_i64);
            if mult == Some(1) && charge == Some(0) {
                text.push_str(
                    ". This corresponds to a singlet state with neutral charge, as expected \
                     for a closed-shell molecule.",
                );
            }
            text
        }
        Value::Str(s) => format!("The answer is {s}."),
        other => format!("Result: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_sim::{ModelId, SimLlmServer};
    use prov_model::sim_clock;
    use prov_model::TaskMessageBuilder;

    fn agent_with_data(model: ModelId) -> (ProvenanceAgent, prov_stream::Subscription) {
        let hub = StreamingHub::in_memory();
        let agent_sub = hub.subscribe(topics::AGENT);
        let ctx = ContextManager::default_sized();
        for i in 0..30 {
            ctx.ingest(
                TaskMessageBuilder::new(
                    format!("t{i}"),
                    "wf",
                    if i % 2 == 0 {
                        "power"
                    } else {
                        "average_results"
                    },
                )
                .uses("exponent", 2.0)
                .generates("y", i as f64)
                .span(100.0 + i as f64, 101.0 + i as f64 + (i % 5) as f64)
                .host(format!("frontier0008{}", i % 3))
                .build(),
            );
        }
        let agent = ProvenanceAgent::new(
            ctx,
            hub,
            Box::new(SimLlmServer::new(model)),
            None,
            sim_clock(),
            AgentConfig::default(),
        );
        (agent, agent_sub)
    }

    #[test]
    fn greeting_needs_no_llm() {
        let (agent, _sub) = agent_with_data(ModelId::Gpt);
        let reply = agent.chat("Hello!");
        assert_eq!(reply.route, Route::Greeting);
        assert_eq!(reply.tokens, 0);
        assert!(reply.code.is_none());
    }

    #[test]
    fn monitor_query_end_to_end() {
        let (agent, _sub) = agent_with_data(ModelId::Gpt);
        let reply = agent.chat("How many tasks have finished so far?");
        assert_eq!(reply.route, Route::MonitorQuery);
        assert!(reply.code.is_some());
        assert!(reply.error.is_none(), "error: {:?}", reply.error);
        assert!(reply.text.contains("30"), "text: {}", reply.text);
        assert!(reply.tokens > 500);
        assert!(reply.latency_ms > 0.0);
    }

    #[test]
    fn agent_records_its_own_provenance() {
        let (agent, sub) = agent_with_data(ModelId::Gpt);
        agent.chat("How many tasks have finished so far?");
        let msgs = sub.drain();
        assert_eq!(msgs.len(), 2);
        let llm = msgs
            .iter()
            .find(|m| m.msg_type == MessageType::LlmInteraction)
            .expect("llm interaction recorded");
        let tool = msgs
            .iter()
            .find(|m| m.msg_type == MessageType::ToolExecution)
            .expect("tool execution recorded");
        // Tool execution wasInformedBy the LLM interaction (§4.2).
        assert_eq!(tool.depends_on[0], llm.task_id);
        assert_eq!(
            tool.agent_id.as_ref().map(|a| a.as_str()),
            Some("provenance-agent")
        );
    }

    #[test]
    fn guideline_route_stores_and_acknowledges() {
        let (agent, _sub) = agent_with_data(ModelId::Gpt);
        let reply = agent.chat("use the field lr to filter learning rates");
        assert_eq!(reply.route, Route::GuidelineAddition);
        assert_eq!(agent.context.guidelines.user_count(), 1);
        assert!(reply.text.contains("from now on"));
    }

    #[test]
    fn plot_route_produces_chart() {
        let (agent, _sub) = agent_with_data(ModelId::Gpt);
        let reply = agent.chat("Plot a bar graph of the average duration per activity.");
        assert_eq!(reply.route, Route::Plot);
        if reply.error.is_none() {
            let chart = reply.chart.expect("chart");
            assert_eq!(chart.len(), 2);
        }
    }

    /// Stub endpoint that always emits a fixed piece of query code —
    /// deterministic harness for the auto-fixer loop.
    struct FixedCodeServer(&'static str);
    impl llm_sim::LlmServer for FixedCodeServer {
        fn model(&self) -> ModelId {
            ModelId::Llama8B
        }
        fn chat(&self, _req: &llm_sim::ChatRequest) -> llm_sim::ChatResponse {
            llm_sim::ChatResponse {
                text: self.0.to_string(),
                is_code: true,
                intent: llm_sim::IntentKind::GroupAgg,
                input_tokens: 100,
                output_tokens: 20,
                latency_ms: 50.0,
                truncated: false,
            }
        }
    }

    fn agent_with_fixed_code(code: &'static str, autofix: bool) -> ProvenanceAgent {
        let hub = StreamingHub::in_memory();
        let ctx = ContextManager::default_sized();
        for i in 0..10 {
            ctx.ingest(
                TaskMessageBuilder::new(format!("t{i}"), "wf", "power")
                    .generates("y", i as f64)
                    .span(i as f64, i as f64 + 1.0)
                    .host(format!("frontier0008{}", i % 2))
                    .build(),
            );
        }
        ProvenanceAgent::new(
            ctx,
            hub,
            Box::new(FixedCodeServer(code)),
            None,
            sim_clock(),
            AgentConfig {
                autofix,
                ..AgentConfig::default()
            },
        )
    }

    #[test]
    fn autofix_repairs_hallucinated_column_and_learns_guideline() {
        // `node` is the §5.2 hallucination; `hostname` is the real column.
        let agent = agent_with_fixed_code(r#"df.groupby("node")["duration"].mean()"#, true);
        let reply = agent.chat("What is the average duration per host?");
        assert!(
            reply.error.is_none(),
            "autofix should recover: {:?}",
            reply.error
        );
        let code = reply.code.expect("fixed code");
        assert!(code.contains("\"hostname\""), "{code}");
        assert!(reply.text.contains("auto-fixed"), "{}", reply.text);
        // The repair was generalized into a session guideline.
        assert_eq!(agent.context.guidelines.user_count(), 1);
        assert!(agent
            .context
            .guidelines
            .all()
            .iter()
            .any(|g| g.contains("hostname") && g.contains("node")));
    }

    #[test]
    fn autofix_disabled_surfaces_error() {
        let agent = agent_with_fixed_code(r#"df.groupby("node")["duration"].mean()"#, false);
        let reply = agent.chat("What is the average duration per host?");
        assert!(reply.error.is_some());
        assert!(reply.text.contains("failed to run"));
        assert_eq!(agent.context.guidelines.user_count(), 0);
    }

    #[test]
    fn autofix_repairs_truncated_syntax() {
        let agent = agent_with_fixed_code(r#"df["duration"].mean("#, true);
        let reply = agent.chat("What is the average duration?");
        assert!(reply.error.is_none(), "{:?}", reply.error);
        assert_eq!(reply.code.as_deref(), Some(r#"df["duration"].mean()"#));
        // Syntax repairs are one-off: no guideline to generalize.
        assert_eq!(agent.context.guidelines.user_count(), 0);
    }

    #[test]
    fn autofix_iterates_through_prose_and_hallucination() {
        // Two defects at once: prose wrapping AND a hallucinated column —
        // the iterative loop must peel both.
        let agent = agent_with_fixed_code(
            "Sure thing!\n```python\ndf['node'].value_counts()\n```\nEnjoy.",
            true,
        );
        let reply = agent.chat("How many tasks ran on each host?");
        assert!(reply.error.is_none(), "{:?}", reply.error);
        assert_eq!(reply.code.as_deref(), Some("df['hostname'].value_counts()"));
        assert!(reply.text.contains("extracted"), "{}", reply.text);
        assert!(reply.text.contains("hostname"), "{}", reply.text);
        // Both repairs generalized: output-format + field guideline.
        assert_eq!(agent.context.guidelines.user_count(), 2);
    }

    #[test]
    fn autofix_falls_back_when_unrepairable() {
        let agent = agent_with_fixed_code(r#"df["qqq_zzz_www"].mean()"#, true);
        let reply = agent.chat("What is the average of the mystery column?");
        assert!(reply.error.is_some());
        assert!(reply.text.contains("failed to run"));
    }

    #[test]
    fn multi_turn_guideline_teaching_changes_generation() {
        // §4.2's running example end-to-end: an ML-ish workflow carries an
        // `lr` field the heuristics know nothing about. Before teaching,
        // the query misses it; after the user teaches the guideline in
        // natural language, the *same* question compiles against lr.
        let hub = StreamingHub::in_memory();
        let ctx = ContextManager::default_sized();
        for i in 0..20 {
            ctx.ingest(
                TaskMessageBuilder::new(format!("t{i}"), "wf", "train_epoch")
                    .uses("lr", 0.001 * (1 + i % 3) as f64)
                    .generates("loss", 1.0 / (i + 1) as f64)
                    .span(i as f64, i as f64 + 1.0)
                    .build(),
            );
        }
        let agent = ProvenanceAgent::new(
            ctx.clone(),
            hub,
            Box::new(SimLlmServer::new(ModelId::Gpt)),
            None,
            sim_clock(),
            AgentConfig::default(),
        );
        let question = "What is the average learning rate per activity?";

        let before = agent.chat(question);
        let code_before = before.code.clone().expect("code");
        assert!(
            !code_before.contains("\"lr\""),
            "pre-teaching generation should miss lr: {code_before}"
        );

        let teach = agent.chat("use the field lr to filter learning rates");
        assert_eq!(teach.route, Route::GuidelineAddition);

        let after = agent.chat(question);
        let code_after = after.code.clone().expect("code");
        assert!(
            code_after.contains("\"lr\""),
            "post-teaching generation should use lr: {code_after}"
        );
        assert!(after.error.is_none(), "{:?}", after.error);
    }

    #[test]
    fn graph_route_traverses_lineage() {
        let hub = StreamingHub::in_memory();
        let ctx = ContextManager::default_sized();
        let db = ProvenanceDatabase::shared();
        // Chain a -> b -> c (c depends on b depends on a).
        db.insert(
            &TaskMessageBuilder::new("task-a", "wf", "ingest")
                .span(0.0, 1.0)
                .build(),
        );
        db.insert(
            &TaskMessageBuilder::new("task-b", "wf", "transform")
                .depends_on("task-a")
                .span(1.0, 2.0)
                .build(),
        );
        db.insert(
            &TaskMessageBuilder::new("task-c", "wf", "report")
                .depends_on("task-b")
                .span(2.0, 3.0)
                .build(),
        );
        let agent = ProvenanceAgent::new(
            ctx,
            hub,
            Box::new(SimLlmServer::new(ModelId::Gpt)),
            Some(db),
            sim_clock(),
            AgentConfig::default(),
        );
        let reply = agent.chat("Trace the lineage of task-c");
        assert_eq!(reply.route, Route::GraphQuery);
        assert!(reply.error.is_none(), "{:?}", reply.error);
        assert!(reply.text.contains("task-b"), "{}", reply.text);
        assert!(reply.text.contains("task-a"), "{}", reply.text);
        assert_eq!(reply.tokens, 0, "graph traversal is LLM-free");

        let down = agent.chat("What is the downstream impact of task task-a?");
        assert!(down.text.contains("task-c"), "{}", down.text);

        let path = agent.chat("Is there a dependency path between task-a and task-c?");
        assert!(path.text.contains("2 hops"), "{}", path.text);
    }

    #[test]
    fn graph_route_without_db_explains() {
        let (agent, _sub) = agent_with_data(ModelId::Gpt);
        let reply = agent.chat("Trace the lineage of task t3");
        assert_eq!(reply.route, Route::GraphQuery);
        assert!(reply.error.is_some());
        assert!(reply.text.contains("database"));
    }

    #[test]
    fn failures_surface_code_and_error() {
        // A model with guaranteed degradation on a tiny prompt: use a
        // zero-ish strategy so the code references hallucinated fields.
        let hub = StreamingHub::in_memory();
        let ctx = ContextManager::default_sized();
        ctx.ingest(TaskMessageBuilder::new("t0", "wf", "a").build());
        let agent = ProvenanceAgent::new(
            ctx,
            hub,
            Box::new(SimLlmServer::new(ModelId::Llama8B)),
            None,
            sim_clock(),
            AgentConfig {
                strategy: RagStrategy::Baseline,
                ..AgentConfig::default()
            },
        );
        // "each host" without schema → hallucinated "node" column → error.
        let reply = agent.chat("How many tasks ran on each host?");
        if let Some(err) = reply.error {
            assert!(reply.code.is_some());
            assert!(
                err.contains("unknown column") || err.contains("parse"),
                "{err}"
            );
        }
    }
}
