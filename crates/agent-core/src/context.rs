//! The Context Manager (§4.2): subscribes to the streaming hub and keeps
//! the agent's in-memory structures current — the buffer of recent task
//! messages (a DataFrame), the dynamic dataflow schema, and the guidelines.

use crate::guidelines::Guidelines;
use crate::schema::DynamicDataflowSchema;
use dataframe::DataFrame;
use parking_lot::RwLock;
use prov_model::TaskMessage;
use prov_stream::{StreamingHub, Subscription};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of the in-memory context.
#[derive(Debug, Clone)]
pub struct ContextConfig {
    /// Maximum buffered task rows; older rows are evicted FIFO.
    pub max_rows: usize,
}

impl Default for ContextConfig {
    fn default() -> Self {
        Self { max_rows: 100_000 }
    }
}

struct Inner {
    messages: VecDeque<TaskMessage>,
    frame: DataFrame,
    schema: DynamicDataflowSchema,
    /// Frame rebuild needed (after eviction).
    dirty: bool,
}

/// Shared handle to the agent's live context.
pub struct ContextManager {
    config: ContextConfig,
    inner: RwLock<Inner>,
    /// Session guidelines.
    pub guidelines: Guidelines,
    ingested: AtomicU64,
}

impl ContextManager {
    /// Empty context.
    pub fn new(config: ContextConfig) -> Arc<Self> {
        Arc::new(Self {
            config,
            inner: RwLock::new(Inner {
                messages: VecDeque::new(),
                frame: DataFrame::new(),
                schema: DynamicDataflowSchema::new(),
                dirty: false,
            }),
            guidelines: Guidelines::new(),
            ingested: AtomicU64::new(0),
        })
    }

    /// Empty context with defaults.
    pub fn default_sized() -> Arc<Self> {
        Self::new(ContextConfig::default())
    }

    /// Fold one message into buffer + schema.
    pub fn ingest(&self, msg: TaskMessage) {
        let mut inner = self.inner.write();
        inner.schema.observe(&msg);
        if inner.messages.len() >= self.config.max_rows {
            inner.messages.pop_front();
            inner.dirty = true;
        }
        if inner.dirty {
            inner.messages.push_back(msg);
            let msgs: Vec<TaskMessage> = inner.messages.iter().cloned().collect();
            inner.frame = DataFrame::from_messages(&msgs);
            inner.dirty = false;
        } else {
            inner.frame.push_message(&msg);
            inner.messages.push_back(msg);
        }
        self.ingested.fetch_add(1, Ordering::Relaxed);
    }

    /// Ingest many messages.
    pub fn ingest_all<'a>(&self, msgs: impl IntoIterator<Item = &'a TaskMessage>) {
        for m in msgs {
            self.ingest(m.clone());
        }
    }

    /// Messages ingested since start.
    pub fn ingested(&self) -> u64 {
        self.ingested.load(Ordering::Relaxed)
    }

    /// Number of rows currently buffered.
    pub fn len(&self) -> usize {
        self.inner.read().frame.len()
    }

    /// True when no rows are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone of the current in-memory frame (the query substrate).
    pub fn frame(&self) -> DataFrame {
        self.inner.read().frame.clone()
    }

    /// Clone of the current schema.
    pub fn schema(&self) -> DynamicDataflowSchema {
        self.inner.read().schema.clone()
    }

    /// Current column names (ground truth for judges).
    pub fn columns(&self) -> Vec<String> {
        self.inner
            .read()
            .frame
            .column_names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// Rendered schema prompt section.
    pub fn render_schema_section(&self) -> String {
        let inner = self.inner.read();
        inner.schema.render_schema(&inner.frame)
    }

    /// Rendered domain-values prompt section.
    pub fn render_values_section(&self) -> String {
        let inner = self.inner.read();
        inner.schema.render_values(&inner.frame)
    }

    /// The most recent `n` messages (for the context monitor).
    pub fn recent(&self, n: usize) -> Vec<TaskMessage> {
        let inner = self.inner.read();
        inner.messages.iter().rev().take(n).rev().cloned().collect()
    }
}

/// A background feeder pumping a hub subscription into a context manager.
pub struct ContextFeeder {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ContextFeeder {
    /// Subscribe `ctx` to the hub's task topic and start feeding.
    pub fn start(hub: &StreamingHub, ctx: Arc<ContextManager>) -> ContextFeeder {
        Self::start_on(hub.subscribe_tasks(), ctx)
    }

    /// Feed from an explicit subscription (any topic).
    pub fn start_on(sub: Subscription, ctx: Arc<ContextManager>) -> ContextFeeder {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("context-feeder".into())
            .spawn(move || loop {
                match sub.recv_timeout(Duration::from_millis(20)) {
                    Ok(msg) => ctx.ingest((*msg).clone()),
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        if stop2.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            })
            .expect("spawn context feeder");
        ContextFeeder {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop and join.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ContextFeeder {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{obj, TaskMessageBuilder};

    fn msg(i: usize) -> TaskMessage {
        TaskMessageBuilder::new(format!("t{i}"), "wf", "act")
            .uses("x", i as i64)
            .generates("y", (i * 2) as i64)
            .span(i as f64, i as f64 + 1.0)
            .build()
    }

    #[test]
    fn ingest_builds_frame_and_schema() {
        let ctx = ContextManager::default_sized();
        ctx.ingest_all(&(0..10).map(msg).collect::<Vec<_>>());
        assert_eq!(ctx.len(), 10);
        assert!(ctx.columns().contains(&"y".to_string()));
        assert_eq!(ctx.schema().activity_count(), 1);
        assert_eq!(ctx.ingested(), 10);
    }

    #[test]
    fn eviction_keeps_recent_rows() {
        let ctx = ContextManager::new(ContextConfig { max_rows: 5 });
        ctx.ingest_all(&(0..12).map(msg).collect::<Vec<_>>());
        assert_eq!(ctx.len(), 5);
        let frame = ctx.frame();
        let ids: Vec<String> = frame
            .column("task_id")
            .unwrap()
            .values()
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect();
        assert_eq!(ids, vec!["t7", "t8", "t9", "t10", "t11"]);
        // Schema still remembers everything it observed.
        assert_eq!(ctx.schema().activity_count(), 1);
    }

    #[test]
    fn feeder_streams_from_hub() {
        let hub = StreamingHub::in_memory();
        let ctx = ContextManager::default_sized();
        let feeder = ContextFeeder::start(&hub, ctx.clone());
        for i in 0..25 {
            hub.publish_task(msg(i)).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ctx.len() < 25 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        feeder.stop();
        assert_eq!(ctx.len(), 25);
    }

    #[test]
    fn recent_returns_tail() {
        let ctx = ContextManager::default_sized();
        ctx.ingest_all(&(0..10).map(msg).collect::<Vec<_>>());
        let recent = ctx.recent(3);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[2].task_id.as_str(), "t9");
    }

    #[test]
    fn schema_sections_render() {
        let ctx = ContextManager::default_sized();
        ctx.ingest(
            TaskMessageBuilder::new("t", "wf", "run_dft")
                .uses("frags", obj! {"label" => "C-H_1"})
                .generates("bd_energy", 98.6)
                .build(),
        );
        let schema = ctx.render_schema_section();
        assert!(schema.contains("run_dft"));
        assert!(schema.contains("bd_energy"));
        let values = ctx.render_values_section();
        assert!(values.contains("C-H_1"));
    }
}
