//! Query guidelines (§4.2): "a dynamic and adaptable set combining
//! domain-agnostic with user-defined instructions that steer the LLM when
//! generating structured queries."
//!
//! User-supplied guidelines are "told in the internal prompt to override
//! any other conflicting guideline stated earlier": we render them *before*
//! the static set, and the simulated models resolve conventions by first
//! match, so later-session guidance wins.

use llm_sim::markers;
use parking_lot::RwLock;

/// Domain-agnostic default guidelines, iteratively refined on the
/// synthetic workflow (§5.4 "our initial system used a static set of query
/// guidelines"). Each follows the machine-readable convention shapes the
/// prompt contract defines, with enough prose to earn its token budget.
pub const STATIC_GUIDELINES: &[&str] = &[
    "For time ranges and questions about when a task started, use the column started_at, which holds seconds since the Unix epoch; never compare identifiers to reason about time.",
    "For completion times, use the column ended_at rather than any identifier ordering, and remember that ended_at minus started_at is already materialized as the duration column.",
    "For CPU usage, use the column cpu_percent_end, the mean per-core utilization sampled when the task finished; cpu_percent_start exists but end-of-task load answers most monitoring questions.",
    "For GPU usage, use the column gpu_percent_end, averaged across the node's GPUs at task end; nodes without accelerators report an empty sample.",
    "For memory, use the column mem_used_mb_end, the resident set size in megabytes at task end.",
    "For task duration or how long something took, use the column duration, which is measured in seconds.",
    "For host or node placement questions, use the column hostname; match partial node names with str.contains rather than equality because hostnames are fully qualified.",
    "For failed, use the value ERROR. For finished, use the value FINISHED. The status column only ever holds PENDING, RUNNING, FINISHED, or ERROR.",
    "When asked for the highest, slowest, or largest of something, sort descending or use idxmax; when asked for a single answer, return exactly one row or one scalar, not a whole table.",
    "For counting questions, wrap the filtered frame in len(...) so the result is a single number rather than a listing of rows.",
    "When grouping, group by the column that names the category in the question (activity_id for per-activity, hostname for per-host, workflow_id for per-run) and aggregate only the requested value column.",
    "Prefer concise single-expression queries on df; do not explain the code, do not import anything, and do not invent column names that are absent from the schema.",
];

/// Thread-safe guideline store.
#[derive(Default)]
pub struct Guidelines {
    user: RwLock<Vec<String>>,
}

impl Guidelines {
    /// Store with the static defaults only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a user guideline for the current session (§4.2: stored in the
    /// agent's overall context and incorporated into future prompts).
    ///
    /// Free-text like "use the field lr to filter learning rates" is
    /// normalized into the machine-readable convention shape.
    pub fn add_user(&self, text: &str) {
        let normalized = normalize_user_guideline(text);
        self.user.write().push(normalized);
    }

    /// Number of user-supplied guidelines this session.
    pub fn user_count(&self) -> usize {
        self.user.read().len()
    }

    /// All guidelines in precedence order (user-defined first so they
    /// override conflicting static conventions).
    pub fn all(&self) -> Vec<String> {
        let mut out = self.user.read().clone();
        out.extend(STATIC_GUIDELINES.iter().map(|s| s.to_string()));
        out
    }

    /// Render the guidelines prompt section.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(markers::GUIDELINES);
        out.push('\n');
        for g in self.all() {
            out.push_str("- ");
            out.push_str(&g);
            out.push('\n');
        }
        out
    }
}

/// Normalize "use the field lr to filter learning rates" into
/// "For learning rates, use the column lr." so the resolver can apply it.
fn normalize_user_guideline(text: &str) -> String {
    let t = text.trim().trim_end_matches('.');
    let lower = t.to_lowercase();
    for verb in ["use the field ", "use the column "] {
        if let Some(rest) = lower.strip_prefix(verb) {
            // "<col> to filter <phrase>" | "<col> for <phrase>"
            let original_rest = &t[verb.len()..];
            for sep in [" to filter ", " to sort by ", " for ", " when asked about "] {
                if let Some(idx) = rest.find(sep) {
                    let col = original_rest[..idx].trim();
                    let phrase = original_rest[idx + sep.len()..].trim();
                    if !col.is_empty() && !phrase.is_empty() {
                        return format!("For {phrase}, use the column {col}.");
                    }
                }
            }
        }
    }
    format!("{t}.")
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_sim::PromptSections;

    #[test]
    fn static_set_renders_machine_readably() {
        let g = Guidelines::new();
        let sections = PromptSections::parse(&g.render());
        assert_eq!(sections.guideline_count, STATIC_GUIDELINES.len());
        assert!(sections
            .guideline_mappings
            .iter()
            .any(|(p, c)| p.contains("time") && c == "started_at"));
        assert!(sections
            .guideline_literals
            .iter()
            .any(|(p, l)| p.contains("failed") && l == "ERROR"));
    }

    #[test]
    fn user_guideline_normalization() {
        assert_eq!(
            normalize_user_guideline("use the field lr to filter learning rates"),
            "For learning rates, use the column lr."
        );
        assert_eq!(
            normalize_user_guideline("Use the column bd_energy for bond strength"),
            "For bond strength, use the column bd_energy."
        );
        assert_eq!(
            normalize_user_guideline("Always answer in kcal/mol"),
            "Always answer in kcal/mol."
        );
    }

    #[test]
    fn user_guidelines_take_precedence() {
        let g = Guidelines::new();
        g.add_user("use the field lr to filter learning rates");
        let all = g.all();
        assert!(all[0].contains("lr"));
        assert_eq!(g.user_count(), 1);
        // The rendered section parses with the user mapping first.
        let sections = PromptSections::parse(&g.render());
        assert_eq!(sections.guideline_mappings[0].1, "lr");
    }
}
