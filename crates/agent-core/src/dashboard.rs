//! Live monitoring dashboard — the Grafana consumer of Fig 2's Query API,
//! rendered in the terminal.
//!
//! The reference architecture lets users consume provenance
//! "programmatically (e.g., via Jupyter), through dashboards such as
//! Grafana, or … via natural language". This module is the dashboard
//! path: a self-refreshing status board computed from the same in-memory
//! context the agent queries — per-activity progress, duration statistics,
//! telemetry sparklines, host placement, and the most recent anomaly tags.

use crate::anomaly::Anomaly;
use crate::context::ContextManager;
use prov_model::{TaskMessage, TaskStatus};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated per-activity row of the dashboard.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityRow {
    /// Activity id.
    pub activity: String,
    /// Finished task count.
    pub finished: usize,
    /// Running task count.
    pub running: usize,
    /// Errored task count.
    pub errors: usize,
    /// Mean duration (s) over finished tasks.
    pub mean_duration: f64,
    /// Max duration (s).
    pub max_duration: f64,
    /// Mean end-of-task CPU percent.
    pub mean_cpu: f64,
}

/// A snapshot of everything the board displays.
#[derive(Debug, Clone, Default)]
pub struct DashboardSnapshot {
    /// Total tasks in the buffer.
    pub total_tasks: usize,
    /// Distinct workflow executions observed.
    pub workflows: usize,
    /// Distinct hosts observed.
    pub hosts: usize,
    /// Whole-buffer time span (s).
    pub span_seconds: f64,
    /// Per-activity aggregates in name order.
    pub activities: Vec<ActivityRow>,
    /// CPU series (end-of-task, buffer order) for the sparkline.
    pub cpu_series: Vec<f64>,
    /// Recent anomalies (task, metric, value, z).
    pub anomalies: Vec<Anomaly>,
}

/// The dashboard: computes [`DashboardSnapshot`]s from a context and
/// renders them as a fixed-width text board.
pub struct Dashboard {
    /// How many sparkline buckets to render.
    pub sparkline_width: usize,
    /// How many anomaly lines to keep.
    pub max_anomalies: usize,
}

impl Default for Dashboard {
    fn default() -> Self {
        Self {
            sparkline_width: 32,
            max_anomalies: 5,
        }
    }
}

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Map a series onto a fixed-width block-character sparkline.
pub fn sparkline(series: &[f64], width: usize) -> String {
    if series.is_empty() || width == 0 {
        return String::new();
    }
    let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let bucket = (series.len() as f64 / width as f64).max(1.0);
    let mut out = String::new();
    let mut i = 0.0;
    while (i as usize) < series.len() && out.chars().count() < width {
        let start = i as usize;
        let end = ((i + bucket) as usize).min(series.len()).max(start + 1);
        let mean = series[start..end].iter().sum::<f64>() / (end - start) as f64;
        let t = if hi > lo {
            (mean - lo) / (hi - lo)
        } else {
            0.5
        };
        let idx = ((t * (SPARKS.len() - 1) as f64).round() as usize).min(SPARKS.len() - 1);
        out.push(SPARKS[idx]);
        i += bucket;
    }
    out
}

impl Dashboard {
    /// Dashboard with default layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute a snapshot from the live context (plus optional anomaly
    /// feed, typically the anomaly detector's latest scan).
    pub fn snapshot(&self, ctx: &ContextManager, anomalies: &[Anomaly]) -> DashboardSnapshot {
        let msgs = ctx.recent(ctx.len());
        self.snapshot_from(&msgs, anomalies)
    }

    /// Compute a snapshot from raw messages.
    pub fn snapshot_from(&self, msgs: &[TaskMessage], anomalies: &[Anomaly]) -> DashboardSnapshot {
        // Per-activity accumulator: durations, CPU means, and
        // finished/error/total counters.
        type ActivityAcc = (Vec<f64>, Vec<f64>, usize, usize, usize);
        let mut per: BTreeMap<&str, ActivityAcc> = BTreeMap::new();
        let mut workflows: Vec<&str> = Vec::new();
        let mut hosts: Vec<&str> = Vec::new();
        let mut cpu_series = Vec::with_capacity(msgs.len());
        let (mut t_min, mut t_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for m in msgs {
            let e = per.entry(m.activity_id.as_str()).or_default();
            match m.status {
                TaskStatus::Finished => {
                    e.2 += 1;
                    e.0.push(m.duration());
                }
                // Pending (prospective) tasks count as in-flight.
                TaskStatus::Running | TaskStatus::Pending => e.3 += 1,
                TaskStatus::Error => e.4 += 1,
            }
            if let Some(t) = &m.telemetry_at_end {
                e.1.push(t.cpu_mean());
                cpu_series.push(t.cpu_mean());
            }
            if !workflows.contains(&m.workflow_id.as_str()) {
                workflows.push(m.workflow_id.as_str());
            }
            if !hosts.contains(&m.hostname.as_str()) {
                hosts.push(m.hostname.as_str());
            }
            t_min = t_min.min(m.started_at);
            t_max = t_max.max(m.ended_at);
        }
        let activities = per
            .into_iter()
            .map(|(activity, (durs, cpus, finished, running, errors))| {
                let mean = |v: &[f64]| {
                    if v.is_empty() {
                        0.0
                    } else {
                        v.iter().sum::<f64>() / v.len() as f64
                    }
                };
                ActivityRow {
                    activity: activity.to_string(),
                    finished,
                    running,
                    errors,
                    mean_duration: mean(&durs),
                    max_duration: durs.iter().copied().fold(0.0, f64::max),
                    mean_cpu: mean(&cpus),
                }
            })
            .collect();
        let mut kept: Vec<Anomaly> = anomalies.to_vec();
        kept.truncate(self.max_anomalies);
        DashboardSnapshot {
            total_tasks: msgs.len(),
            workflows: workflows.len(),
            hosts: hosts.len(),
            span_seconds: if t_max > t_min { t_max - t_min } else { 0.0 },
            activities,
            cpu_series,
            anomalies: kept,
        }
    }

    /// Render the board as fixed-width text.
    pub fn render(&self, snap: &DashboardSnapshot) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "┌─ provenance monitor ─ {} tasks · {} workflows · {} hosts · span {:.1}s",
            snap.total_tasks, snap.workflows, snap.hosts, snap.span_seconds
        );
        let _ = writeln!(
            out,
            "│ {:<22} {:>6} {:>6} {:>5} {:>9} {:>9} {:>7}",
            "activity", "done", "run", "err", "mean s", "max s", "cpu %"
        );
        for row in &snap.activities {
            let _ = writeln!(
                out,
                "│ {:<22} {:>6} {:>6} {:>5} {:>9.3} {:>9.3} {:>7.1}",
                truncate(&row.activity, 22),
                row.finished,
                row.running,
                row.errors,
                row.mean_duration,
                row.max_duration,
                row.mean_cpu
            );
        }
        if !snap.cpu_series.is_empty() {
            let _ = writeln!(
                out,
                "│ cpu  {}",
                sparkline(&snap.cpu_series, self.sparkline_width)
            );
        }
        if snap.anomalies.is_empty() {
            let _ = writeln!(out, "│ anomalies: none");
        } else {
            let _ = writeln!(out, "│ anomalies ({}):", snap.anomalies.len());
            for a in &snap.anomalies {
                let _ = writeln!(
                    out,
                    "│   task {} {} = {:.3} (z = {:.2})",
                    a.task_id, a.column, a.value, a.z_score
                );
            }
        }
        out.push_str("└─");
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let mut t: String = s.chars().take(n.saturating_sub(1)).collect();
        t.push('…');
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{obj, TaskMessageBuilder, TelemetrySynth};

    fn messages() -> Vec<TaskMessage> {
        (0..20)
            .map(|i| {
                let tel = TelemetrySynth::frontier(7).snapshot(i, 1, 0.5);
                TaskMessageBuilder::new(
                    format!("t{i}"),
                    format!("wf-{}", i % 2),
                    if i % 3 == 0 {
                        "laser_scan"
                    } else {
                        "monitor_melt_pool"
                    },
                )
                .span(i as f64, i as f64 + 1.0 + (i % 4) as f64 * 0.5)
                .host(format!("frontier0008{}", i % 3))
                .telemetry(tel.clone(), tel)
                .status(if i == 19 {
                    prov_model::TaskStatus::Error
                } else {
                    prov_model::TaskStatus::Finished
                })
                .generates("v", i as f64)
                .build()
            })
            .collect()
    }

    #[test]
    fn snapshot_aggregates_per_activity() {
        let d = Dashboard::new();
        let snap = d.snapshot_from(&messages(), &[]);
        assert_eq!(snap.total_tasks, 20);
        assert_eq!(snap.workflows, 2);
        assert_eq!(snap.hosts, 3);
        assert!(snap.span_seconds > 0.0);
        assert_eq!(snap.activities.len(), 2);
        let scan = snap
            .activities
            .iter()
            .find(|r| r.activity == "laser_scan")
            .unwrap();
        assert_eq!(scan.finished, 7); // i = 0,3,6,9,12,15,18
        assert_eq!(scan.errors, 0);
        let monitor = snap
            .activities
            .iter()
            .find(|r| r.activity == "monitor_melt_pool")
            .unwrap();
        assert_eq!(monitor.errors, 1); // i = 19
        assert!(monitor.mean_duration > 0.0);
        assert!(monitor.max_duration >= monitor.mean_duration);
    }

    #[test]
    fn render_contains_every_section() {
        let d = Dashboard::new();
        let anomaly = Anomaly {
            task_id: "t19".into(),
            column: "duration".into(),
            value: 99.0,
            z_score: 4.2,
        };
        let text = d.render(&d.snapshot_from(&messages(), &[anomaly]));
        assert!(text.contains("provenance monitor"));
        assert!(text.contains("laser_scan"));
        assert!(text.contains("monitor_melt_pool"));
        assert!(text.contains("cpu  "));
        assert!(text.contains("anomalies (1):"));
        assert!(text.contains("z = 4.20"));
    }

    #[test]
    fn render_handles_empty_context() {
        let d = Dashboard::new();
        let text = d.render(&d.snapshot_from(&[], &[]));
        assert!(text.contains("0 tasks"));
        assert!(text.contains("anomalies: none"));
    }

    #[test]
    fn sparkline_shape() {
        assert_eq!(sparkline(&[], 10), "");
        let flat = sparkline(&[5.0; 40], 8);
        assert_eq!(flat.chars().count(), 8);
        // Monotone ramp: first bucket must be the lowest glyph, the last
        // the highest.
        let ramp: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let s = sparkline(&ramp, 8);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.first(), Some(&SPARKS[0]));
        assert_eq!(chars.last(), Some(&SPARKS[7]));
        // Never exceeds the requested width.
        assert!(sparkline(&ramp, 5).chars().count() <= 5);
    }

    #[test]
    fn anomalies_capped() {
        let d = Dashboard {
            max_anomalies: 2,
            ..Dashboard::default()
        };
        let anomalies: Vec<Anomaly> = (0..5)
            .map(|i| Anomaly {
                task_id: format!("t{i}"),
                column: "v".into(),
                value: i as f64,
                z_score: 5.0,
            })
            .collect();
        let snap = d.snapshot_from(&messages(), &anomalies);
        assert_eq!(snap.anomalies.len(), 2);
    }

    #[test]
    fn long_activity_names_truncate() {
        let msg = TaskMessageBuilder::new("t", "wf", "a_very_long_activity_name_indeed_yes")
            .generates("v", obj! {"x" => 1})
            .span(0.0, 1.0)
            .build();
        let d = Dashboard::new();
        let text = d.render(&d.snapshot_from(&[msg], &[]));
        assert!(text.contains('…'));
    }
}
