//! The Dynamic Dataflow Schema (§4.1–4.2) — the paper's key mechanism.
//!
//! "Rather than submitting raw provenance records directly to the LLM
//! service, the system automatically maintains a schema that summarizes how
//! data flow between tasks, what parameters and outputs are captured, and
//! how workflows evolve over time … incrementally inferred at runtime from
//! live provenance streams." Its size depends on workflow *complexity*
//! (number and diversity of activities and fields), never on task count —
//! the property behind the paper's scale-independence claim.

use dataframe::{DType, DataFrame};
use llm_sim::markers;
use prov_model::{schema::render_common_schema, TaskMessage, Value};
use std::collections::BTreeMap;

/// Maximum example values retained per field.
const MAX_EXAMPLES: usize = 3;

/// Inferred description of one dataflow field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldInfo {
    /// Inferred dtype (unified across observations).
    pub dtype: DType,
    /// Up to [`MAX_EXAMPLES`] distinct example values.
    pub examples: Vec<Value>,
}

impl FieldInfo {
    fn observe(&mut self, value: &Value) {
        self.dtype = self.dtype.unify(DType::of(value));
        if !self.examples.contains(value) && self.examples.len() < MAX_EXAMPLES {
            self.examples.push(value.clone());
        }
    }
}

/// Per-activity input/output field maps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActivitySchema {
    /// Fields observed under `used`.
    pub used: BTreeMap<String, FieldInfo>,
    /// Fields observed under `generated`.
    pub generated: BTreeMap<String, FieldInfo>,
    /// How many task messages this activity has produced.
    pub task_count: u64,
}

/// The dynamic dataflow schema: incrementally built, bounded by workflow
/// complexity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DynamicDataflowSchema {
    activities: BTreeMap<String, ActivitySchema>,
}

impl DynamicDataflowSchema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one provenance message into the schema.
    pub fn observe(&mut self, msg: &TaskMessage) {
        let act = self
            .activities
            .entry(msg.activity_id.as_str().to_string())
            .or_default();
        act.task_count += 1;
        for (key, value) in msg.used.flatten() {
            act.used
                .entry(key)
                .or_insert_with(|| FieldInfo {
                    dtype: DType::Null,
                    examples: Vec::new(),
                })
                .observe(&value);
        }
        for (key, value) in msg.generated.flatten() {
            act.generated
                .entry(key)
                .or_insert_with(|| FieldInfo {
                    dtype: DType::Null,
                    examples: Vec::new(),
                })
                .observe(&value);
        }
    }

    /// Number of distinct activities seen.
    pub fn activity_count(&self) -> usize {
        self.activities.len()
    }

    /// Total distinct dataflow fields across activities.
    pub fn field_count(&self) -> usize {
        self.activities
            .values()
            .map(|a| a.used.len() + a.generated.len())
            .sum()
    }

    /// Iterate activities.
    pub fn activities(&self) -> impl Iterator<Item = (&String, &ActivitySchema)> {
        self.activities.iter()
    }

    /// Render the schema prompt section: the common fields (static, §4.2),
    /// then the per-activity dataflow structure. `frame` supplies the
    /// authoritative flattened column names so generated queries always
    /// reference real columns.
    pub fn render_schema(&self, frame: &DataFrame) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(markers::SCHEMA);
        out.push('\n');
        out.push_str(
            "Workflow task provenance rows, one per task execution. The dataflow below was \
             inferred incrementally from the live stream; field lists are per activity.\n",
        );
        for (name, dtype) in frame.dtypes() {
            let desc = prov_model::schema::common_field(&name)
                .map(|f| f.description.to_string())
                .unwrap_or_else(|| self.describe_dataflow_column(&name));
            out.push_str(&format!("- {name} ({dtype}): {desc}\n"));
        }
        out.push_str("\nActivity dataflow structure (inputs -> outputs):\n");
        for (activity, a) in &self.activities {
            let used: Vec<&str> = a.used.keys().map(String::as_str).collect();
            let generated: Vec<&str> = a.generated.keys().map(String::as_str).collect();
            out.push_str(&format!(
                "* {activity} [{} tasks]: uses({}) -> generates({})\n",
                a.task_count,
                used.join(", "),
                generated.join(", ")
            ));
        }
        out.push_str(&render_common_schema());
        out
    }

    fn describe_dataflow_column(&self, column: &str) -> String {
        // Strip a possible section prefix applied on collision.
        let bare = column
            .trim_start_matches("used.")
            .trim_start_matches("generated.");
        let mut producers: Vec<&str> = Vec::new();
        let mut consumed = false;
        for (activity, a) in &self.activities {
            if a.generated.contains_key(bare) {
                producers.push(activity);
            }
            if a.used.contains_key(bare) {
                consumed = true;
            }
        }
        if !producers.is_empty() {
            format!(
                "application dataflow field generated by {}{}",
                producers.join(", "),
                if consumed {
                    "; also consumed downstream"
                } else {
                    ""
                }
            )
        } else if consumed {
            "application dataflow input parameter".to_string()
        } else if column.starts_with("telemetry_at") {
            "raw telemetry sample".to_string()
        } else {
            "derived provenance field".to_string()
        }
    }

    /// Render the domain-values prompt section ("representative data" /
    /// partial-data RAG strategy, §3): up to three example values per
    /// column of the live frame.
    pub fn render_values(&self, frame: &DataFrame) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(markers::VALUES);
        out.push('\n');
        out.push_str(
            "Representative values observed in the live stream (at most three per field) — \
             use them to infer plausible literals, units, and value ranges:\n",
        );
        for name in frame.column_names() {
            let col = frame.column(name).expect("listed column");
            let mut seen: Vec<String> = Vec::new();
            for v in col.values().iter().filter(|v| !v.is_null()) {
                let rendered = match v {
                    Value::Float(f) => format!("{f:.4}"),
                    other => other.display_plain(),
                };
                let clipped: String = rendered.chars().take(40).collect();
                if !seen.contains(&clipped) {
                    seen.push(clipped);
                    if seen.len() == MAX_EXAMPLES {
                        break;
                    }
                }
            }
            if !seen.is_empty() {
                out.push_str(&format!("- {name}: {}\n", seen.join(" | ")));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_sim::PromptSections;
    use prov_model::{obj, TaskMessageBuilder};

    fn msg(i: i64, act: &str) -> TaskMessage {
        TaskMessageBuilder::new(format!("t{i}"), "wf", act)
            .uses("x", i as f64)
            .uses("frags", obj! {"label" => format!("C-H_{i}")})
            .generates("y", i * 2)
            .build()
    }

    #[test]
    fn schema_grows_with_diversity_not_volume() {
        let mut s = DynamicDataflowSchema::new();
        for i in 0..1000 {
            s.observe(&msg(i, "step_a"));
        }
        assert_eq!(s.activity_count(), 1);
        let fields_after_1000 = s.field_count();
        let mut s2 = DynamicDataflowSchema::new();
        s2.observe(&msg(0, "step_a"));
        // 1000 messages of the same activity add no fields beyond 1 message.
        assert_eq!(fields_after_1000, s2.field_count());
        // A new activity does grow it.
        s.observe(&msg(0, "step_b"));
        assert_eq!(s.activity_count(), 2);
        assert!(s.field_count() > fields_after_1000);
    }

    #[test]
    fn examples_bounded_and_distinct() {
        let mut s = DynamicDataflowSchema::new();
        for i in 0..50 {
            s.observe(&msg(i, "a"));
        }
        let (_, act) = s.activities().next().unwrap();
        let x = act.used.get("x").unwrap();
        assert_eq!(x.examples.len(), MAX_EXAMPLES);
        assert_eq!(x.dtype, DType::Float);
        // Nested field flattened.
        assert!(act.used.contains_key("frags.label"));
    }

    #[test]
    fn rendered_schema_parses_into_sections() {
        let msgs: Vec<TaskMessage> = (0..5).map(|i| msg(i, "step_a")).collect();
        let frame = DataFrame::from_messages(&msgs);
        let mut s = DynamicDataflowSchema::new();
        for m in &msgs {
            s.observe(m);
        }
        let text = format!("{}\n{}", s.render_schema(&frame), s.render_values(&frame));
        let sections = PromptSections::parse(&text);
        assert!(sections.has_schema());
        assert!(sections.has_values());
        // Schema columns are exactly the frame's columns.
        for col in frame.column_names() {
            assert!(
                sections.schema_columns.iter().any(|c| c == col),
                "missing column {col}"
            );
        }
        // Example values present for the label field.
        assert!(sections.example_values.contains_key("frags.label"));
    }

    #[test]
    fn dtype_unification_across_messages() {
        let mut s = DynamicDataflowSchema::new();
        let int_msg = TaskMessageBuilder::new("t1", "wf", "a")
            .uses("v", 1)
            .build();
        let float_msg = TaskMessageBuilder::new("t2", "wf", "a")
            .uses("v", 1.5)
            .build();
        s.observe(&int_msg);
        s.observe(&float_msg);
        let (_, act) = s.activities().next().unwrap();
        assert_eq!(act.used.get("v").unwrap().dtype, DType::Float);
    }
}
