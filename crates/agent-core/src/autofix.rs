//! The feedback-driven auto-fixer (§5.4 future work, implemented).
//!
//! "In the future, we envision replacing this manual flow with a
//! feedback-driven 'auto-fixer' agent specialized in diagnosing query
//! failures, proposing corrected versions, and automatically suggesting
//! new guidelines." This module is that agent: it consumes the same
//! artifacts the paper's GUI exposes to the human (the generated query
//! code and the runtime error text), diagnoses the failure, rewrites the
//! query, and generalizes the fix into a reusable session guideline —
//! closing the loop between user feedback and prompt adaptation.
//!
//! The fixer is deliberately LLM-free: it is a transparent, rule-based
//! repair pass (the same trade-off §3 discusses for rule-based
//! evaluation), so every repair is auditable. The repaired query is
//! re-executed by the caller; when the repair also produces a guideline,
//! the guideline feeds every subsequent prompt, so the *LLM itself* stops
//! making the mistake in later turns.

/// What the fixer concluded about a failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diagnosis {
    /// The query referenced a column that does not exist; carries the
    /// offending name and the schema column chosen as replacement.
    UnknownColumn {
        /// Column the LLM hallucinated.
        missing: String,
        /// Closest real column.
        replacement: String,
    },
    /// The query did not parse; carries the repair description.
    Syntax(String),
    /// Failure understood but not mechanically fixable.
    Unfixable(String),
}

/// A proposed repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixProposal {
    /// The corrected query code, ready to re-execute.
    pub fixed_code: String,
    /// What was wrong.
    pub diagnosis: Diagnosis,
    /// A reusable guideline generalizing the fix, when the failure class
    /// warrants one (fed into the session guidelines).
    pub guideline: Option<String>,
    /// One-line human-readable note (shown in the GUI next to the result).
    pub note: String,
}

/// Hallucinated-field aliases observed in the evaluation (§5.2 names
/// `node` and `execution_id`; the rest are the llm-sim error model's
/// plausible-but-wrong fallbacks). Applied only when the real column is
/// actually present in the schema.
const HALLUCINATION_ALIASES: &[(&str, &str)] = &[
    ("node", "hostname"),
    ("execution_id", "task_id"),
    ("start_time", "started_at"),
    ("end_time", "ended_at"),
    ("runtime", "duration"),
    ("cpu_usage", "cpu_percent_end"),
    ("gpu_usage", "gpu_percent_end"),
    ("memory_usage", "mem_used_mb_end"),
    ("parent_tasks", "depends_on"),
    ("bond", "bond_id"),
    ("bond_energy", "bd_energy"),
    ("enthalpy_value", "bd_enthalpy"),
    ("free_energy", "bd_free_energy"),
    ("num_atoms", "n_atoms"),
];

/// Levenshtein edit distance (iterative two-row DP).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The rule-based auto-fixer agent.
#[derive(Debug, Clone, Default)]
pub struct AutoFixer;

impl AutoFixer {
    /// Fresh fixer.
    pub fn new() -> Self {
        Self
    }

    /// Pick the closest real column for a hallucinated one: exact alias
    /// first, then normalized containment (`meltpool` ⊂ `melt_pool_temp_c`),
    /// then bounded edit distance.
    pub fn nearest_column(&self, missing: &str, columns: &[String]) -> Option<String> {
        let has = |c: &str| columns.iter().any(|x| x == c);
        for (bad, good) in HALLUCINATION_ALIASES {
            if missing == *bad && has(good) {
                return Some((*good).to_string());
            }
        }
        let norm = |s: &str| s.to_lowercase().replace(['_', '-', '.'], "");
        let m = norm(missing);
        // Containment either way, on normalized names.
        let mut contained: Vec<&String> = columns
            .iter()
            .filter(|c| {
                let n = norm(c);
                (n.contains(&m) || m.contains(&n)) && !m.is_empty() && n.len() > 2
            })
            .collect();
        contained.sort_by_key(|c| c.len());
        if let Some(c) = contained.first() {
            return Some((*c).to_string());
        }
        // Edit distance bounded by half the name length (prevents wild
        // rewrites like `frags` → `flags` on short names being too eager).
        let budget = (missing.chars().count() / 2).max(2);
        columns
            .iter()
            .map(|c| (edit_distance(&m, &norm(c)), c))
            .filter(|(d, _)| *d <= budget)
            .min_by_key(|(d, c)| (*d, c.len()))
            .map(|(_, c)| c.clone())
    }

    /// Diagnose a failure and propose a repair, given the generated code,
    /// the runtime error text (exactly what the GUI shows), and the live
    /// schema columns.
    pub fn propose(&self, code: &str, error: &str, columns: &[String]) -> Option<FixProposal> {
        if let Some(missing) = extract_unknown_column(error) {
            let replacement = self.nearest_column(&missing, columns)?;
            if replacement == missing {
                return None;
            }
            // The generation may quote columns either way (LLaMA favors
            // single quotes); replace whichever form appears.
            let mut fixed_code = code.to_string();
            let mut replaced = false;
            for (bad, good) in [
                (format!("\"{missing}\""), format!("\"{replacement}\"")),
                (format!("'{missing}'"), format!("'{replacement}'")),
            ] {
                if fixed_code.contains(&bad) {
                    fixed_code = fixed_code.replace(&bad, &good);
                    replaced = true;
                }
            }
            if !replaced {
                return None;
            }
            return Some(FixProposal {
                fixed_code,
                guideline: Some(format!(
                    "use the field {replacement} (there is no field named {missing})"
                )),
                note: format!(
                    "auto-fixed: replaced non-existent column '{missing}' with '{replacement}'"
                ),
                diagnosis: Diagnosis::UnknownColumn {
                    missing,
                    replacement,
                },
            });
        }
        if error.contains("parse") {
            if let Some(p) = self.extract_code(code) {
                return Some(p);
            }
            return self.repair_syntax(code);
        }
        None
    }

    /// Pull the actual query out of a chatty response: fenced markdown
    /// blocks first, then the first line that looks like a DataFrame
    /// expression. Weak models wrap code in prose despite the output-format
    /// instructions; the extraction generalizes into a reusable guideline.
    fn extract_code(&self, code: &str) -> Option<FixProposal> {
        let extracted = if let Some(start) = code.find("```") {
            let after = &code[start + 3..];
            let body_start = after.find('\n').map(|i| i + 1).unwrap_or(0);
            let body = &after[body_start..];
            let end = body.find("```")?;
            Some(body[..end].trim().to_string())
        } else {
            code.lines()
                .map(str::trim)
                .find(|l| l.starts_with("df") || l.starts_with("len(") || l.starts_with("(df"))
                .map(str::to_string)
        }?;
        if extracted.is_empty() || extracted == code.trim() {
            return None;
        }
        Some(FixProposal {
            fixed_code: extracted,
            guideline: Some(
                "return only a single pandas expression, with no prose or markdown around it"
                    .to_string(),
            ),
            note: "auto-fixed: extracted the query from a prose-wrapped response".to_string(),
            diagnosis: Diagnosis::Syntax("extracted code from prose".to_string()),
        })
    }

    /// Mechanical syntax repairs: unbalanced parentheses/brackets and
    /// dangling quotes. Anything beyond that is the LLM's to regenerate.
    fn repair_syntax(&self, code: &str) -> Option<FixProposal> {
        let mut fixed = code.trim().to_string();
        let mut repairs: Vec<&str> = Vec::new();
        let quotes = fixed.matches('"').count();
        if quotes % 2 == 1 {
            fixed.push('"');
            repairs.push("closed a dangling string literal");
        }
        let open_b = fixed.matches('[').count();
        let close_b = fixed.matches(']').count();
        if open_b > close_b {
            fixed.push_str(&"]".repeat(open_b - close_b));
            repairs.push("closed unbalanced brackets");
        }
        let open_p = fixed.matches('(').count();
        let close_p = fixed.matches(')').count();
        if open_p > close_p {
            fixed.push_str(&")".repeat(open_p - close_p));
            repairs.push("closed unbalanced parentheses");
        }
        if repairs.is_empty() || fixed == code {
            return None;
        }
        let what = repairs.join(", ");
        Some(FixProposal {
            fixed_code: fixed,
            guideline: None,
            note: format!("auto-fixed: {what}"),
            diagnosis: Diagnosis::Syntax(what.to_string()),
        })
    }
}

/// Pull the column name out of a `FrameError::UnknownColumn` rendering
/// (`unknown column 'x'; available: …`).
fn extract_unknown_column(error: &str) -> Option<String> {
    let idx = error.find("unknown column '")?;
    let rest = &error[idx + "unknown column '".len()..];
    let end = rest.find('\'')?;
    Some(rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Vec<String> {
        [
            "task_id",
            "activity_id",
            "hostname",
            "started_at",
            "ended_at",
            "duration",
            "cpu_percent_end",
            "melt_pool_temp_c",
            "bd_enthalpy",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("hostname", "hostname"), 0);
    }

    #[test]
    fn alias_hallucinations_resolve() {
        let f = AutoFixer::new();
        assert_eq!(
            f.nearest_column("node", &schema()).as_deref(),
            Some("hostname")
        );
        assert_eq!(
            f.nearest_column("execution_id", &schema()).as_deref(),
            Some("task_id")
        );
        assert_eq!(
            f.nearest_column("cpu_usage", &schema()).as_deref(),
            Some("cpu_percent_end")
        );
    }

    #[test]
    fn containment_and_distance_fallbacks() {
        let f = AutoFixer::new();
        // Containment on normalized names.
        assert_eq!(
            f.nearest_column("meltpooltemp", &schema()).as_deref(),
            Some("melt_pool_temp_c")
        );
        // Typo within edit budget.
        assert_eq!(
            f.nearest_column("duratoin", &schema()).as_deref(),
            Some("duration")
        );
        // Nothing plausible.
        assert_eq!(f.nearest_column("xyzzy_quux", &schema()), None);
    }

    #[test]
    fn proposes_column_fix_with_guideline() {
        let f = AutoFixer::new();
        let code = r#"df.groupby("node")["duration"].mean()"#;
        let err = "unknown column 'node'; available: [\"hostname\", ...]";
        let p = f.propose(code, err, &schema()).expect("fix proposed");
        assert_eq!(p.fixed_code, r#"df.groupby("hostname")["duration"].mean()"#);
        assert!(p.guideline.as_deref().unwrap().contains("hostname"));
        assert!(matches!(p.diagnosis, Diagnosis::UnknownColumn { .. }));
    }

    #[test]
    fn no_fix_when_column_is_unmatchable() {
        let f = AutoFixer::new();
        let code = r#"df["qqq_zzz"].mean()"#;
        let err = "unknown column 'qqq_zzz'; available: []";
        assert!(f.propose(code, err, &schema()).is_none());
    }

    #[test]
    fn repairs_unbalanced_syntax() {
        let f = AutoFixer::new();
        let p = f
            .propose(
                r#"len(df[df["status"] == "FINISHED"]"#,
                "query parse error: unexpected end of input",
                &schema(),
            )
            .expect("syntax repair");
        assert_eq!(p.fixed_code, r#"len(df[df["status"] == "FINISHED"])"#);
        assert!(p.guideline.is_none());
        assert!(matches!(p.diagnosis, Diagnosis::Syntax(_)));
    }

    #[test]
    fn repairs_dangling_quote_and_bracket() {
        let f = AutoFixer::new();
        let p = f
            .propose(
                r#"df["duration"].mean("#,
                "query parse error: unexpected end of input",
                &schema(),
            )
            .expect("repair");
        assert!(p.fixed_code.ends_with(')'));
        let p2 = f
            .propose(
                r#"df["duration"#,
                "query parse error: unterminated string",
                &schema(),
            )
            .expect("repair");
        assert_eq!(p2.fixed_code, r#"df["duration"]"#);
    }

    #[test]
    fn prose_is_not_repairable() {
        let f = AutoFixer::new();
        assert!(f
            .propose("SELECT 1", "query parse error: expected 'df'", &schema())
            .is_none());
    }

    #[test]
    fn extracts_fenced_code_from_chatty_response() {
        let f = AutoFixer::new();
        let chatty = "Sure! You can answer that with:\n```python\ndf['duration'].mean()\n```\nHope that helps.";
        let p = f
            .propose(
                chatty,
                "query parse error: unexpected character '!'",
                &schema(),
            )
            .expect("extraction");
        assert_eq!(p.fixed_code, "df['duration'].mean()");
        assert!(p
            .guideline
            .as_deref()
            .unwrap()
            .contains("single pandas expression"));
    }

    #[test]
    fn extracts_bare_df_line_without_fences() {
        let f = AutoFixer::new();
        let chatty = "Here is the query you need:\ndf[\"duration\"].max()\nLet me know!";
        let p = f
            .propose(chatty, "query parse error: unexpected token", &schema())
            .expect("extraction");
        assert_eq!(p.fixed_code, "df[\"duration\"].max()");
    }

    #[test]
    fn single_quoted_columns_repairable() {
        let f = AutoFixer::new();
        let p = f
            .propose(
                "df['node'].value_counts()",
                "unknown column 'node'; available: [...]",
                &schema(),
            )
            .expect("fix");
        assert_eq!(p.fixed_code, "df['hostname'].value_counts()");
    }
}
