//! The Provenance Keeper service (§2.3): subscribes to the streaming hub,
//! converts incoming messages into the unified W3C-PROV-extension schema,
//! and persists them in the provenance database.
//!
//! Multiple keepers can run against the same hub (fan-out subscriptions) or
//! share a consumer group on a partitioned broker for horizontal scaling.

use crossbeam::channel::RecvTimeoutError;
use parking_lot::Mutex;
use prov_db::ProvenanceDatabase;
use prov_model::ProvDocument;
use prov_stream::{topics, PartitionedBroker, StreamingHub};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration for one keeper instance.
#[derive(Debug, Clone)]
pub struct KeeperConfig {
    /// Topics to subscribe to.
    pub topics: Vec<String>,
    /// Insert batch size (messages are buffered and inserted in bulk).
    pub batch_size: usize,
    /// Poll timeout before flushing a partial batch.
    pub poll_timeout: Duration,
    /// Deduplicate redeliveries by `(task_id, status, msg_type)`. Enable
    /// when the transport is at-least-once (duplicates on retry); the
    /// keeper then makes persistence idempotent. Off by default — the
    /// fire-and-forget Redis-like path never duplicates.
    pub dedup: bool,
    /// Flush database views after every persisted batch. On a durable
    /// store ([`ProvenanceDatabase::open`]) this hands each batch to the
    /// write-ahead log as soon as the keeper accepts it, bounding what a
    /// crash can lose to one in-flight batch; on an in-memory store it
    /// merely materializes eagerly. Off by default — the lazy
    /// flush-on-read path is faster when durability is not in play.
    pub durable_flush: bool,
}

impl Default for KeeperConfig {
    fn default() -> Self {
        Self {
            topics: vec![
                topics::TASKS.to_string(),
                topics::AGENT.to_string(),
                topics::ANOMALIES.to_string(),
            ],
            batch_size: 64,
            poll_timeout: Duration::from_millis(20),
            dedup: false,
            durable_flush: false,
        }
    }
}

/// Handle to a running keeper; stops and joins on [`KeeperHandle::stop`] or drop.
pub struct KeeperHandle {
    stop: Arc<AtomicBool>,
    processed: Arc<AtomicU64>,
    workers: Vec<JoinHandle<()>>,
    prov: Arc<Mutex<ProvDocument>>,
}

impl KeeperHandle {
    /// Messages persisted so far.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Snapshot of the accumulated PROV document.
    pub fn prov_document(&self) -> ProvDocument {
        self.prov.lock().clone()
    }

    /// Signal shutdown and join worker threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Block until at least `n` messages have been persisted or the timeout
    /// elapses; returns whether the target was reached.
    pub fn wait_for(&self, n: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.processed() < n {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }
}

impl Drop for KeeperHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a keeper: one worker thread per subscribed topic.
pub fn start(
    hub: &StreamingHub,
    db: Arc<ProvenanceDatabase>,
    config: KeeperConfig,
) -> KeeperHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let processed = Arc::new(AtomicU64::new(0));
    let prov = Arc::new(Mutex::new(ProvDocument::new()));
    let seen: Arc<Mutex<HashSet<String>>> = Arc::new(Mutex::new(HashSet::new()));
    let mut workers = Vec::new();
    for topic in &config.topics {
        let sub = hub.subscribe(topic);
        let stop = stop.clone();
        let processed = processed.clone();
        let db = db.clone();
        let prov = prov.clone();
        let seen = if config.dedup {
            Some(seen.clone())
        } else {
            None
        };
        let batch_size = config.batch_size.max(1);
        let poll_timeout = config.poll_timeout;
        let durable_flush = config.durable_flush;
        let name = format!("keeper-{topic}");
        workers.push(
            std::thread::Builder::new()
                .name(name)
                .spawn(move || {
                    let mut batch = Vec::with_capacity(batch_size);
                    loop {
                        match sub.recv_timeout(poll_timeout) {
                            Ok(msg) => {
                                if accept(seen.as_deref(), &msg) {
                                    batch.push(msg);
                                }
                                if batch.len() >= batch_size {
                                    persist(&db, &prov, &processed, &mut batch, durable_flush);
                                }
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                persist(&db, &prov, &processed, &mut batch, durable_flush);
                                if stop.load(Ordering::Relaxed) {
                                    break;
                                }
                            }
                            Err(RecvTimeoutError::Disconnected) => {
                                persist(&db, &prov, &processed, &mut batch, durable_flush);
                                break;
                            }
                        }
                    }
                })
                .expect("spawn keeper worker"),
        );
    }
    KeeperHandle {
        stop,
        processed,
        workers,
        prov,
    }
}

/// Redelivery filter: admits a message once per `(task_id, status,
/// msg_type)` when dedup is on (`seen` present), always otherwise. Status
/// and type participate so a later status transition or an anomaly tag for
/// the same task id is not mistaken for a duplicate.
fn accept(seen: Option<&Mutex<HashSet<String>>>, msg: &prov_model::TaskMessage) -> bool {
    match seen {
        None => true,
        Some(set) => set.lock().insert(format!(
            "{}\x1f{}\x1f{}",
            msg.task_id.as_str(),
            msg.status.as_str(),
            msg.msg_type.as_str()
        )),
    }
}

fn persist(
    db: &ProvenanceDatabase,
    prov: &Mutex<ProvDocument>,
    processed: &AtomicU64,
    batch: &mut Vec<prov_stream::Delivery>,
    durable_flush: bool,
) {
    if batch.is_empty() {
        return;
    }
    // Streaming fast path: hand the database the broker's own `Arc`
    // handles — view materialization is deferred and batched (one lock
    // acquisition per backend when it happens).
    db.insert_batch_shared(batch.iter().cloned());
    if durable_flush {
        // Materialize now so a durable store's WAL covers this batch
        // before the keeper acknowledges it via `processed`.
        db.flush_views();
    }
    {
        let mut doc = prov.lock();
        for m in batch.iter() {
            doc.ingest(m);
        }
    }
    processed.fetch_add(batch.len() as u64, Ordering::Relaxed);
    batch.clear();
}

/// Pull-mode keeper for partitioned brokers: drains a consumer group until
/// empty, persisting everything. Returns the number of messages persisted.
/// This is the horizontal-scaling path: several keepers sharing `group`
/// split the partitions' backlog between them.
pub fn drain_partitioned(
    broker: &PartitionedBroker,
    group: &str,
    topic: &str,
    db: &ProvenanceDatabase,
    batch_size: usize,
) -> usize {
    let mut total = 0;
    loop {
        let batch = broker.poll(group, topic, batch_size.max(1));
        if batch.is_empty() {
            return total;
        }
        total += db.insert_batch_shared(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{TaskMessage, TaskMessageBuilder};
    use prov_stream::{Broker, FlushStrategy};

    fn msg(i: usize) -> TaskMessage {
        TaskMessageBuilder::new(format!("t{i}"), "wf", "act")
            .generates("x", i as i64)
            .build()
    }

    #[test]
    fn keeper_persists_streamed_messages() {
        let hub = StreamingHub::in_memory();
        let db = ProvenanceDatabase::shared();
        let keeper = start(&hub, db.clone(), KeeperConfig::default());
        for i in 0..50 {
            hub.publish_task(msg(i)).unwrap();
        }
        assert!(keeper.wait_for(50, Duration::from_secs(5)));
        keeper.stop();
        assert_eq!(db.documents().len(), 50);
        assert!(db.get_task("t42").is_some());
    }

    #[test]
    fn keeper_builds_prov_document() {
        let hub = StreamingHub::in_memory();
        let db = ProvenanceDatabase::shared();
        let keeper = start(&hub, db.clone(), KeeperConfig::default());
        hub.publish_task(msg(0)).unwrap();
        assert!(keeper.wait_for(1, Duration::from_secs(5)));
        let doc = keeper.prov_document();
        assert!(doc.node("t0").is_some());
        keeper.stop();
    }

    #[test]
    fn keeper_sees_bulk_flushes() {
        let hub = StreamingHub::in_memory();
        let db = ProvenanceDatabase::shared();
        let keeper = start(&hub, db.clone(), KeeperConfig::default());
        let emitter = hub.task_emitter(FlushStrategy::by_count(16));
        for i in 0..100 {
            emitter.emit(msg(i)).unwrap();
        }
        emitter.flush().unwrap();
        assert!(keeper.wait_for(100, Duration::from_secs(5)));
        keeper.stop();
        assert_eq!(db.documents().len(), 100);
    }

    /// A `durable_flush` keeper over a durable store: once the keeper
    /// acknowledges the messages, they are in the WAL — dropping the
    /// store without any explicit flush and reopening must recover every
    /// acknowledged message.
    #[test]
    fn durable_flush_keeper_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("provdb-keeper-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let hub = StreamingHub::in_memory();
            let db = ProvenanceDatabase::open(&dir).expect("open durable");
            let keeper = start(
                &hub,
                db.clone(),
                KeeperConfig {
                    durable_flush: true,
                    ..KeeperConfig::default()
                },
            );
            for i in 0..40 {
                hub.publish_task(msg(i)).unwrap();
            }
            assert!(keeper.wait_for(40, Duration::from_secs(5)));
            keeper.stop();
        }
        let back = ProvenanceDatabase::open(&dir).expect("reopen");
        assert_eq!(back.insert_count(), 40);
        assert_eq!(back.documents().len(), 40);
        assert!(back.get_task("t39").is_some());
        drop(back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dedup_makes_persistence_idempotent_under_at_least_once_transport() {
        use prov_stream::{ChaosBroker, ChaosConfig, MemoryBroker};
        let chaos = Arc::new(ChaosBroker::new(
            Arc::new(MemoryBroker::new()),
            ChaosConfig {
                duplicate_p: 0.5,
                ..ChaosConfig::default()
            },
        ));
        let hub = StreamingHub::new(chaos.clone());
        let db = ProvenanceDatabase::shared();
        let keeper = start(
            &hub,
            db.clone(),
            KeeperConfig {
                dedup: true,
                ..KeeperConfig::default()
            },
        );
        for i in 0..100 {
            hub.publish_task(msg(i)).unwrap();
        }
        assert!(keeper.wait_for(100, Duration::from_secs(5)));
        keeper.stop();
        let (_, duplicated, _) = chaos.fault_counts();
        assert!(duplicated > 20, "chaos should have duplicated messages");
        assert_eq!(
            db.documents().len(),
            100,
            "dedup keeper must persist each message exactly once"
        );
    }

    #[test]
    fn without_dedup_duplicates_inflate_the_document_store() {
        use prov_stream::{ChaosBroker, ChaosConfig, MemoryBroker};
        let chaos = Arc::new(ChaosBroker::new(
            Arc::new(MemoryBroker::new()),
            ChaosConfig {
                duplicate_p: 0.5,
                ..ChaosConfig::default()
            },
        ));
        let hub = StreamingHub::new(chaos.clone());
        let db = ProvenanceDatabase::shared();
        let keeper = start(&hub, db.clone(), KeeperConfig::default());
        for i in 0..100 {
            hub.publish_task(msg(i)).unwrap();
        }
        let (_, duplicated, _) = chaos.fault_counts();
        assert!(keeper.wait_for(100 + duplicated, Duration::from_secs(5)));
        keeper.stop();
        assert!(
            db.documents().len() > 100,
            "without dedup, redeliveries appear twice ({} docs)",
            db.documents().len()
        );
        // The KV layer keys by task id, so it stays deduplicated either way.
        assert!(db.get_task("t42").is_some());
    }

    #[test]
    fn dedup_keeps_distinct_statuses_and_types() {
        let hub = StreamingHub::in_memory();
        let db = ProvenanceDatabase::shared();
        let keeper = start(
            &hub,
            db.clone(),
            KeeperConfig {
                dedup: true,
                ..KeeperConfig::default()
            },
        );
        // Same task id, different status: both must persist (a status
        // transition, not a redelivery).
        let running = TaskMessageBuilder::new("t0", "wf", "act")
            .status(prov_model::TaskStatus::Running)
            .build();
        let finished = TaskMessageBuilder::new("t0", "wf", "act")
            .status(prov_model::TaskStatus::Finished)
            .build();
        hub.publish_task(running.clone()).unwrap();
        hub.publish_task(finished).unwrap();
        // Exact redelivery: dropped.
        hub.publish_task(running).unwrap();
        assert!(keeper.wait_for(2, Duration::from_secs(5)));
        keeper.stop();
        assert_eq!(db.documents().len(), 2);
    }

    #[test]
    fn drain_partitioned_consumer_group() {
        let broker = PartitionedBroker::shared();
        for i in 0..30 {
            broker.publish(topics::TASKS, msg(i)).unwrap();
        }
        let db = ProvenanceDatabase::new();
        let n = drain_partitioned(&broker, "keepers", topics::TASKS, &db, 8);
        assert_eq!(n, 30);
        assert_eq!(db.documents().len(), 30);
        // Second drain of the same group sees nothing new.
        assert_eq!(
            drain_partitioned(&broker, "keepers", topics::TASKS, &db, 8),
            0
        );
    }

    #[test]
    fn two_keepers_both_receive_fanout() {
        let hub = StreamingHub::in_memory();
        let db1 = ProvenanceDatabase::shared();
        let db2 = ProvenanceDatabase::shared();
        let k1 = start(&hub, db1.clone(), KeeperConfig::default());
        let k2 = start(&hub, db2.clone(), KeeperConfig::default());
        for i in 0..10 {
            hub.publish_task(msg(i)).unwrap();
        }
        assert!(k1.wait_for(10, Duration::from_secs(5)));
        assert!(k2.wait_for(10, Duration::from_secs(5)));
        k1.stop();
        k2.stop();
        assert_eq!(db1.documents().len(), 10);
        assert_eq!(db2.documents().len(), 10);
    }
}
