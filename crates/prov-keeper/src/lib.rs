//! # prov-keeper
//!
//! The Provenance Keeper service (§2.3): one or more distributed workers
//! that subscribe to the streaming hub, normalize incoming task messages
//! into the unified W3C-PROV-extension schema, and persist them into the
//! backend-agnostic [`prov_db::ProvenanceDatabase`].
//!
//! Two consumption modes are provided: push (fan-out subscriptions on any
//! [`prov_stream::Broker`]) and pull ([`drain_partitioned`] consumer groups
//! on the Kafka-shaped broker for horizontal scaling).

#![warn(missing_docs)]

pub mod keeper;

pub use keeper::{drain_partitioned, start, KeeperConfig, KeeperHandle};
