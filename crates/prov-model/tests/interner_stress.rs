//! Concurrency and correctness stress tests for the global string
//! interner: many threads interning overlapping key sets must agree on
//! identity, content, and hashes, and the pre-seeded hot keys must stay
//! pointer-stable throughout.

use prov_model::{keys, Map, Sym, Value};
use std::collections::BTreeMap;
use std::sync::Barrier;

/// The overlapping vocabulary the worker threads fight over: every thread
/// interns every key, so each distinct string is raced by all threads.
fn vocabulary() -> Vec<String> {
    let mut v: Vec<String> = keys::HOT_KEYS.iter().map(|k| k.to_string()).collect();
    v.extend((0..64).map(|i| format!("stress_key_{i}")));
    v.extend((0..16).map(|i| format!("payload.field_{i}.leaf")));
    v
}

#[test]
fn concurrent_interning_overlapping_keys() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 200;

    let vocab = vocabulary();
    let barrier = Barrier::new(THREADS);
    let per_thread: Vec<Vec<Sym>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let vocab = &vocab;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let mut out = Vec::with_capacity(ROUNDS * vocab.len());
                    for round in 0..ROUNDS {
                        // Each thread walks the vocabulary at a different
                        // stride so lock acquisition orders differ.
                        for i in 0..vocab.len() {
                            let k = &vocab[(i * (t + 1) + round) % vocab.len()];
                            out.push(Sym::intern(k));
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every thread's copy of a given string is the same symbol — same
    // content, same cached hash, same allocation.
    let canonical: BTreeMap<&str, &Sym> = per_thread[0].iter().map(|s| (s.as_str(), s)).collect();
    assert_eq!(canonical.len(), vocab.len());
    for thread_syms in &per_thread {
        for sym in thread_syms {
            let reference = canonical[sym.as_str()];
            assert_eq!(sym, reference);
            assert_eq!(sym.hash_u64(), reference.hash_u64());
            assert!(
                Sym::ptr_eq(sym, reference),
                "interned copies of {:?} do not share an allocation",
                sym.as_str()
            );
        }
    }
}

#[test]
fn hot_keys_stay_pointer_stable_under_contention() {
    let before = keys::task_id();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..1000 {
                    let k = Sym::intern("task_id");
                    assert!(Sym::ptr_eq(&k, &keys::task_id()));
                }
            });
        }
    });
    assert!(Sym::ptr_eq(&before, &keys::task_id()));
}

#[test]
fn interner_capacity_degrades_gracefully() {
    // Far fewer than MAX_INTERNED, but enough to prove the counter moves
    // and that symbols behave identically whether or not they were
    // deduplicated.
    let start = Sym::interned_count();
    let syms: Vec<Sym> = (0..512)
        .map(|i| Sym::intern(&format!("cap_probe_{i}")))
        .collect();
    assert!(Sym::interned_count() >= start);
    for (i, s) in syms.iter().enumerate() {
        assert_eq!(s.as_str(), format!("cap_probe_{i}"));
        assert_eq!(s, &Sym::new(format!("cap_probe_{i}")));
    }
}

#[test]
fn maps_built_from_racing_threads_agree() {
    // Interning concurrently and then using the symbols as BTreeMap keys
    // must yield identical, deterministically ordered documents.
    let docs: Vec<Value> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                s.spawn(move || {
                    let mut m = Map::new();
                    for i in (0..32).rev() {
                        m.insert(
                            Sym::intern(&format!("field_{i:02}")),
                            Value::from(i as i64 + t),
                        );
                    }
                    Value::object(m)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, doc) in docs.iter().enumerate() {
        let m = doc.as_object().unwrap();
        let keys: Vec<&str> = m.keys().map(Sym::as_str).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "BTreeMap iteration must follow byte order");
        assert_eq!(doc.get("field_00").and_then(Value::as_i64), Some(t as i64));
    }
}
