//! Workflow task provenance messages — the common schema every broker,
//! keeper, database and agent component exchanges (paper Listing 1).

use crate::ids::{ActivityId, AgentId, CampaignId, TaskId, WorkflowId};
use crate::json;
use crate::telemetry::Telemetry;
use crate::value::{keys, Map, Sym, Value};

/// Lifecycle status of a task execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaskStatus {
    /// Scheduled but not started (prospective provenance).
    Pending,
    /// Currently executing.
    Running,
    /// Completed successfully.
    #[default]
    Finished,
    /// Completed with an error.
    Error,
}

impl TaskStatus {
    /// Canonical wire string (uppercase, as in Listing 1).
    pub fn as_str(self) -> &'static str {
        match self {
            TaskStatus::Pending => "PENDING",
            TaskStatus::Running => "RUNNING",
            TaskStatus::Finished => "FINISHED",
            TaskStatus::Error => "ERROR",
        }
    }

    /// Parse from the wire string (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "PENDING" => Some(TaskStatus::Pending),
            "RUNNING" => Some(TaskStatus::Running),
            "FINISHED" => Some(TaskStatus::Finished),
            "ERROR" => Some(TaskStatus::Error),
            _ => None,
        }
    }

    /// Canonical wire string as a shared interned symbol (the serialization
    /// hot path emits this without hashing or allocating).
    pub fn sym(self) -> Sym {
        static CELLS: [std::sync::OnceLock<Sym>; 4] = [const { std::sync::OnceLock::new() }; 4];
        let idx = self as usize;
        CELLS[idx]
            .get_or_init(|| Sym::intern(self.as_str()))
            .clone()
    }
}

/// What kind of provenance record a message carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MessageType {
    /// A workflow task execution (the common case).
    #[default]
    Task,
    /// A workflow-level record (start/end of a whole workflow).
    Workflow,
    /// An agent tool invocation, recorded as a task subclass (§4.2).
    ToolExecution,
    /// An LLM interaction, recorded as a task subclass (§4.2).
    LlmInteraction,
    /// An anomaly tag republished by the anomaly detector.
    AnomalyTag,
}

impl MessageType {
    /// Canonical wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            MessageType::Task => "task",
            MessageType::Workflow => "workflow",
            MessageType::ToolExecution => "tool_execution",
            MessageType::LlmInteraction => "llm_interaction",
            MessageType::AnomalyTag => "anomaly_tag",
        }
    }

    /// Parse from the wire string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "task" => Some(MessageType::Task),
            "workflow" => Some(MessageType::Workflow),
            "tool_execution" => Some(MessageType::ToolExecution),
            "llm_interaction" => Some(MessageType::LlmInteraction),
            "anomaly_tag" => Some(MessageType::AnomalyTag),
            _ => None,
        }
    }

    /// Canonical wire string as a shared interned symbol (the serialization
    /// hot path emits this without hashing or allocating).
    pub fn sym(self) -> Sym {
        static CELLS: [std::sync::OnceLock<Sym>; 5] = [const { std::sync::OnceLock::new() }; 5];
        let idx = self as usize;
        CELLS[idx]
            .get_or_init(|| Sym::intern(self.as_str()))
            .clone()
    }
}

/// One workflow task provenance message (paper Listing 1).
///
/// `used` holds the task's application-specific inputs and `generated` its
/// outputs; both are free-form JSON objects captured by instrumentation or
/// observability adapters. Everything else is the domain-agnostic common
/// schema the agent's static schema description covers.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskMessage {
    /// Unique id of this task execution.
    pub task_id: TaskId,
    /// Campaign this execution belongs to.
    pub campaign_id: CampaignId,
    /// Workflow execution id.
    pub workflow_id: WorkflowId,
    /// Activity (step type) id, e.g. `run_individual_bde`.
    pub activity_id: ActivityId,
    /// Application-specific input fields.
    pub used: Value,
    /// Application-specific output fields.
    pub generated: Value,
    /// Start time, epoch seconds.
    pub started_at: f64,
    /// End time, epoch seconds.
    pub ended_at: f64,
    /// Host that executed the task.
    pub hostname: String,
    /// Telemetry at task start.
    pub telemetry_at_start: Option<Telemetry>,
    /// Telemetry at task end.
    pub telemetry_at_end: Option<Telemetry>,
    /// Execution status.
    pub status: TaskStatus,
    /// Record type.
    pub msg_type: MessageType,
    /// Agent responsible for the task, when one is registered (§4.2).
    pub agent_id: Option<AgentId>,
    /// Ids of tasks whose outputs this task consumed (dataflow lineage).
    pub depends_on: Vec<TaskId>,
    /// Free-form tags (e.g. anomaly annotations) added post-hoc.
    pub tags: Map,
}

impl TaskMessage {
    /// Minimal message with defaults for optional sections.
    pub fn new(
        task_id: impl Into<TaskId>,
        workflow_id: impl Into<WorkflowId>,
        activity_id: impl Into<ActivityId>,
    ) -> Self {
        Self {
            task_id: task_id.into(),
            campaign_id: CampaignId::new("default-campaign"),
            workflow_id: workflow_id.into(),
            activity_id: activity_id.into(),
            used: Value::object(Map::new()),
            generated: Value::object(Map::new()),
            started_at: 0.0,
            ended_at: 0.0,
            hostname: "localhost".to_string(),
            telemetry_at_start: None,
            telemetry_at_end: None,
            status: TaskStatus::Finished,
            msg_type: MessageType::Task,
            agent_id: None,
            depends_on: Vec::new(),
            tags: Map::new(),
        }
    }

    /// Task duration in seconds (0 when not finished).
    pub fn duration(&self) -> f64 {
        (self.ended_at - self.started_at).max(0.0)
    }

    /// Encode to the Listing 1 JSON shape.
    ///
    /// Pushes the fields in key order and bulk-builds the map in one flat
    /// allocation, instead of issuing one shifting insert per field — this
    /// is the per-message serialization on the database ingest hot path.
    /// Every key
    /// is a pre-seeded hot symbol ([`keys`]) and `used`/`generated` clones
    /// are shared-handle refcount bumps, so the only per-call allocations
    /// are the variable id/host strings and the map nodes themselves.
    pub fn to_value(&self) -> Value {
        let mut pairs: Vec<(Sym, Value)> = Vec::with_capacity(16);
        let mut push = |k: Sym, v: Value| pairs.push((k, v));
        push(keys::activity_id(), Value::Str(self.activity_id.sym()));
        if let Some(a) = &self.agent_id {
            push(keys::agent_id(), Value::Str(a.sym()));
        }
        push(keys::campaign_id(), Value::Str(self.campaign_id.sym()));
        if !self.depends_on.is_empty() {
            push(
                keys::depends_on(),
                Value::array(
                    self.depends_on
                        .iter()
                        .map(|t| Value::Str(t.sym()))
                        .collect(),
                ),
            );
        }
        push(keys::ended_at(), Value::from(self.ended_at));
        push(keys::generated(), self.generated.clone());
        push(keys::hostname(), Value::from(self.hostname.as_str()));
        push(keys::started_at(), Value::from(self.started_at));
        push(keys::status(), Value::Str(self.status.sym()));
        if !self.tags.is_empty() {
            push(keys::tags(), Value::object(self.tags.clone()));
        }
        push(keys::task_id(), Value::Str(self.task_id.sym()));
        if let Some(t) = &self.telemetry_at_end {
            push(keys::telemetry_at_end(), t.to_value());
        }
        if let Some(t) = &self.telemetry_at_start {
            push(keys::telemetry_at_start(), t.to_value());
        }
        push(keys::msg_type(), Value::Str(self.msg_type.sym()));
        push(keys::used(), self.used.clone());
        push(keys::workflow_id(), Value::Str(self.workflow_id.sym()));
        Value::object(Map::from_sorted_pairs(pairs))
    }

    /// Decode from the Listing 1 JSON shape.
    ///
    /// Unknown fields are ignored; missing optional fields default.
    pub fn from_value(v: &Value) -> Option<Self> {
        // Ids come out as `Sym` clones of the document's own symbols —
        // decode shares the stored allocations instead of copying text.
        let sym = |k: &str| v.get(k).and_then(Value::as_sym).cloned();
        let s = |k: &str| v.get(k).and_then(Value::as_str).map(str::to_string);
        let f = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        let mut msg = TaskMessage::new(
            TaskId::from(sym("task_id")?),
            WorkflowId::from(sym("workflow_id")?),
            ActivityId::from(sym("activity_id")?),
        );
        if let Some(c) = sym("campaign_id") {
            msg.campaign_id = CampaignId::from(c);
        }
        if let Some(u) = v.get("used") {
            msg.used = u.clone();
        }
        if let Some(g) = v.get("generated") {
            msg.generated = g.clone();
        }
        msg.started_at = f("started_at");
        msg.ended_at = f("ended_at");
        if let Some(h) = s("hostname") {
            msg.hostname = h;
        }
        msg.telemetry_at_start = v.get("telemetry_at_start").map(Telemetry::from_value);
        msg.telemetry_at_end = v.get("telemetry_at_end").map(Telemetry::from_value);
        msg.status = v
            .get("status")
            .and_then(Value::as_str)
            .and_then(TaskStatus::parse)
            .unwrap_or_default();
        msg.msg_type = v
            .get("type")
            .and_then(Value::as_str)
            .and_then(MessageType::parse)
            .unwrap_or_default();
        msg.agent_id = sym("agent_id").map(AgentId::from);
        if let Some(deps) = v.get("depends_on").and_then(Value::as_array) {
            msg.depends_on = deps
                .iter()
                .filter_map(Value::as_sym)
                .cloned()
                .map(TaskId::from)
                .collect();
        }
        if let Some(tags) = v.get("tags").and_then(Value::as_object) {
            msg.tags = tags.clone();
        }
        Some(msg)
    }

    /// Serialize to compact JSON text (wire format).
    pub fn to_json(&self) -> String {
        json::to_string(&self.to_value())
    }

    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Option<Self> {
        Self::from_value(&json::from_str(text).ok()?)
    }

    /// Tag this message (e.g. `anomaly` → description), as the anomaly
    /// detector does before republishing (§4.2).
    pub fn with_tag(mut self, key: impl Into<Sym>, value: impl Into<Value>) -> Self {
        self.tags.insert(key.into(), value.into());
        self
    }
}

/// Fluent builder used by capture layers.
#[derive(Debug, Clone)]
pub struct TaskMessageBuilder {
    msg: TaskMessage,
}

impl TaskMessageBuilder {
    /// Start building a message for one task execution.
    pub fn new(
        task_id: impl Into<TaskId>,
        workflow_id: impl Into<WorkflowId>,
        activity_id: impl Into<ActivityId>,
    ) -> Self {
        Self {
            msg: TaskMessage::new(task_id, workflow_id, activity_id),
        }
    }

    /// Set the campaign id.
    pub fn campaign(mut self, id: impl Into<CampaignId>) -> Self {
        self.msg.campaign_id = id.into();
        self
    }

    /// Add an input field under `used`.
    pub fn uses(mut self, key: impl Into<Sym>, value: impl Into<Value>) -> Self {
        self.msg.used.insert(key, value);
        self
    }

    /// Add an output field under `generated`.
    pub fn generates(mut self, key: impl Into<Sym>, value: impl Into<Value>) -> Self {
        self.msg.generated.insert(key, value);
        self
    }

    /// Set the full `used` object at once.
    pub fn used(mut self, v: Value) -> Self {
        self.msg.used = v;
        self
    }

    /// Set the full `generated` object at once.
    pub fn generated(mut self, v: Value) -> Self {
        self.msg.generated = v;
        self
    }

    /// Set start/end timestamps.
    pub fn span(mut self, started_at: f64, ended_at: f64) -> Self {
        self.msg.started_at = started_at;
        self.msg.ended_at = ended_at;
        self
    }

    /// Set the executing hostname.
    pub fn host(mut self, hostname: impl Into<String>) -> Self {
        self.msg.hostname = hostname.into();
        self
    }

    /// Attach start/end telemetry.
    pub fn telemetry(mut self, start: Telemetry, end: Telemetry) -> Self {
        self.msg.telemetry_at_start = Some(start);
        self.msg.telemetry_at_end = Some(end);
        self
    }

    /// Set the status.
    pub fn status(mut self, status: TaskStatus) -> Self {
        self.msg.status = status;
        self
    }

    /// Set the record type.
    pub fn msg_type(mut self, t: MessageType) -> Self {
        self.msg.msg_type = t;
        self
    }

    /// Set the responsible agent.
    pub fn agent(mut self, id: impl Into<AgentId>) -> Self {
        self.msg.agent_id = Some(id.into());
        self
    }

    /// Record a dataflow dependency on another task.
    pub fn depends_on(mut self, id: impl Into<TaskId>) -> Self {
        self.msg.depends_on.push(id.into());
        self
    }

    /// Finish building.
    pub fn build(self) -> TaskMessage {
        self.msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arr, obj};

    fn chem_message() -> TaskMessage {
        TaskMessageBuilder::new("1753457858.952133_0_3_973", "wf-1", "run_individual_bde")
            .campaign("0552ae57-1273-4ef8-a23b-c5ae6dd0c080")
            .uses("e0", -155.033799510504)
            .uses(
                "frags",
                obj! {"label" => "C-H_3", "fragment1" => "[H]OC([H])([H])[C]([H])[H]", "fragment2" => "[H]"},
            )
            .uses("h0", 0.08547606488512516)
            .uses("outdir", "bde_calc")
            .generates("bond_id", "C-H_3")
            .generates("bd_energy", 98.64865792890485)
            .generates("bd_enthalpy", 100.22765792890056)
            .generates("bd_free_energy", 92.39108332890055)
            .span(1753457858.952133, 1753457859.009404)
            .host("frontier00084.frontier.olcf.ornl.gov")
            .build()
    }

    #[test]
    fn listing1_roundtrip() {
        let msg = chem_message();
        let text = msg.to_json();
        let back = TaskMessage::from_json(&text).unwrap();
        assert_eq!(msg, back);
        assert!(text.contains("\"bd_energy\""));
        assert!(text.contains("frontier00084"));
    }

    #[test]
    fn duration_nonnegative() {
        let mut msg = chem_message();
        assert!(msg.duration() > 0.0);
        msg.ended_at = msg.started_at - 1.0;
        assert_eq!(msg.duration(), 0.0);
    }

    #[test]
    fn status_and_type_parse() {
        for s in [
            TaskStatus::Pending,
            TaskStatus::Running,
            TaskStatus::Finished,
            TaskStatus::Error,
        ] {
            assert_eq!(TaskStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(TaskStatus::parse("finished"), Some(TaskStatus::Finished));
        assert_eq!(TaskStatus::parse("nope"), None);
        for t in [
            MessageType::Task,
            MessageType::Workflow,
            MessageType::ToolExecution,
            MessageType::LlmInteraction,
            MessageType::AnomalyTag,
        ] {
            assert_eq!(MessageType::parse(t.as_str()), Some(t));
        }
    }

    #[test]
    fn tags_roundtrip() {
        let msg = chem_message().with_tag("anomaly", obj! {"metric" => "cpu", "z" => 4.2});
        let back = TaskMessage::from_json(&msg.to_json()).unwrap();
        assert_eq!(
            back.tags
                .get("anomaly")
                .and_then(|v| v.get("metric"))
                .and_then(Value::as_str),
            Some("cpu")
        );
    }

    #[test]
    fn depends_on_roundtrip() {
        let msg = TaskMessageBuilder::new("t2", "wf", "step_b")
            .depends_on("t0")
            .depends_on("t1")
            .build();
        let back = TaskMessage::from_json(&msg.to_json()).unwrap();
        assert_eq!(back.depends_on.len(), 2);
        assert_eq!(back.depends_on[0].as_str(), "t0");
    }

    #[test]
    fn telemetry_embedded() {
        let synth = crate::telemetry::TelemetrySynth::frontier(1);
        let msg = TaskMessageBuilder::new("t", "wf", "a")
            .telemetry(synth.snapshot(0, 0, 0.3), synth.snapshot(0, 1, 0.3))
            .build();
        let back = TaskMessage::from_json(&msg.to_json()).unwrap();
        assert_eq!(msg.telemetry_at_start, back.telemetry_at_start);
        assert_eq!(msg.telemetry_at_end, back.telemetry_at_end);
    }

    #[test]
    fn missing_required_fields_rejected() {
        assert!(TaskMessage::from_value(&obj! {"task_id" => "x"}).is_none());
        assert!(TaskMessage::from_value(&arr![1, 2]).is_none());
    }

    #[test]
    fn unknown_fields_ignored() {
        let mut v = chem_message().to_value();
        v.insert("future_extension", obj! {"x" => 1});
        assert!(TaskMessage::from_value(&v).is_some());
    }
}
