//! Telemetry snapshots captured at task start/end.
//!
//! Mirrors the paper's `telemetry_at_start`/`telemetry_at_end` payloads:
//! CPU utilization, memory, GPU, disk and network counters. A deterministic
//! synthesizer generates plausible node telemetry for simulated runs.

use crate::value::Value;

/// One telemetry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    /// Per-core CPU utilization percentages.
    pub cpu_percent: Vec<f64>,
    /// Resident memory in megabytes.
    pub mem_used_mb: f64,
    /// Total node memory in megabytes.
    pub mem_total_mb: f64,
    /// Per-GPU utilization percentages (empty on CPU-only nodes).
    pub gpu_percent: Vec<f64>,
    /// Cumulative disk bytes read.
    pub disk_read_bytes: u64,
    /// Cumulative disk bytes written.
    pub disk_write_bytes: u64,
    /// Cumulative network bytes sent.
    pub net_sent_bytes: u64,
    /// Cumulative network bytes received.
    pub net_recv_bytes: u64,
}

impl Telemetry {
    /// Mean CPU utilization across cores.
    pub fn cpu_mean(&self) -> f64 {
        if self.cpu_percent.is_empty() {
            0.0
        } else {
            self.cpu_percent.iter().sum::<f64>() / self.cpu_percent.len() as f64
        }
    }

    /// Mean GPU utilization across devices (0 when no GPUs).
    pub fn gpu_mean(&self) -> f64 {
        if self.gpu_percent.is_empty() {
            0.0
        } else {
            self.gpu_percent.iter().sum::<f64>() / self.gpu_percent.len() as f64
        }
    }

    /// Memory utilization fraction in `[0, 1]`.
    pub fn mem_fraction(&self) -> f64 {
        if self.mem_total_mb <= 0.0 {
            0.0
        } else {
            (self.mem_used_mb / self.mem_total_mb).clamp(0.0, 1.0)
        }
    }

    /// Encode as the JSON shape used in provenance messages.
    ///
    /// Every key comes from the pre-seeded hot-symbol accessors
    /// ([`crate::sym::keys`]): on the ingest hot path this runs with zero
    /// interner lookups and zero key allocations, like
    /// `TaskMessage::to_value`.
    pub fn to_value(&self) -> Value {
        use crate::value::{keys, Map, Sym};
        let section = |pairs: [(Sym, Value); 2]| Value::object(Map::from_iter(pairs));
        let mut m = Map::new();
        m.insert(
            keys::cpu(),
            Value::object(Map::from_iter([(
                keys::percent(),
                Value::from(self.cpu_percent.clone()),
            )])),
        );
        m.insert(
            keys::disk(),
            section([
                (keys::read_bytes(), Value::Int(self.disk_read_bytes as i64)),
                (
                    keys::write_bytes(),
                    Value::Int(self.disk_write_bytes as i64),
                ),
            ]),
        );
        m.insert(
            keys::gpu(),
            Value::object(Map::from_iter([(
                keys::percent(),
                Value::from(self.gpu_percent.clone()),
            )])),
        );
        m.insert(
            keys::memory(),
            section([
                (keys::total_mb(), Value::Float(self.mem_total_mb)),
                (keys::used_mb(), Value::Float(self.mem_used_mb)),
            ]),
        );
        m.insert(
            keys::network(),
            section([
                (keys::recv_bytes(), Value::Int(self.net_recv_bytes as i64)),
                (keys::sent_bytes(), Value::Int(self.net_sent_bytes as i64)),
            ]),
        );
        Value::object(m)
    }

    /// Decode from the JSON shape; missing sections default to zero.
    pub fn from_value(v: &Value) -> Self {
        let floats = |path: &str| -> Vec<f64> {
            v.get_path(path)
                .and_then(Value::as_array)
                .map(|a| a.iter().filter_map(Value::as_f64).collect())
                .unwrap_or_default()
        };
        let num = |path: &str| v.get_path(path).and_then(Value::as_f64).unwrap_or(0.0);
        Self {
            cpu_percent: floats("cpu.percent"),
            mem_used_mb: num("memory.used_mb"),
            mem_total_mb: num("memory.total_mb"),
            gpu_percent: floats("gpu.percent"),
            disk_read_bytes: num("disk.read_bytes") as u64,
            disk_write_bytes: num("disk.write_bytes") as u64,
            net_sent_bytes: num("network.sent_bytes") as u64,
            net_recv_bytes: num("network.recv_bytes") as u64,
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self {
            cpu_percent: vec![0.0],
            mem_used_mb: 0.0,
            mem_total_mb: 512_000.0, // Frontier node: 512 GB DDR4
            gpu_percent: Vec::new(),
            disk_read_bytes: 0,
            disk_write_bytes: 0,
            net_sent_bytes: 0,
            net_recv_bytes: 0,
        }
    }
}

/// Deterministic telemetry synthesizer for simulated workloads.
///
/// Produces per-task load shaped by a SplitMix64 stream keyed on
/// `(seed, task_ordinal)`, so reruns are identical. Load levels scale with
/// the `intensity` hint supplied by the workflow (DFT tasks run hot, data
/// prep runs cold).
#[derive(Debug, Clone)]
pub struct TelemetrySynth {
    seed: u64,
    /// Number of CPU cores per simulated node.
    pub cores: usize,
    /// Number of GPUs per simulated node.
    pub gpus: usize,
}

impl TelemetrySynth {
    /// A synthesizer shaped like a Frontier compute node (64 cores, 8 GCDs).
    pub fn frontier(seed: u64) -> Self {
        Self {
            seed,
            cores: 64,
            gpus: 8,
        }
    }

    /// A small edge-node synthesizer (4 cores, no GPU).
    pub fn edge(seed: u64) -> Self {
        Self {
            seed,
            cores: 4,
            gpus: 0,
        }
    }

    fn unit(&self, task_ordinal: u64, salt: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(task_ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Snapshot at a given phase (0 = start, 1 = end) for a task.
    ///
    /// `intensity` in `[0,1]` scales the expected utilization.
    pub fn snapshot(&self, task_ordinal: u64, phase: u64, intensity: f64) -> Telemetry {
        let base = 10.0 + 75.0 * intensity.clamp(0.0, 1.0);
        let cpu: Vec<f64> = (0..self.cores)
            .map(|c| {
                let jitter = self.unit(task_ordinal, phase * 1000 + c as u64) * 20.0 - 10.0;
                (base + jitter + phase as f64 * 8.0).clamp(0.0, 100.0)
            })
            .collect();
        let gpu: Vec<f64> = (0..self.gpus)
            .map(|g| {
                let jitter = self.unit(task_ordinal, 7_000 + phase * 1000 + g as u64) * 30.0 - 15.0;
                (base * intensity + jitter).clamp(0.0, 100.0)
            })
            .collect();
        let mem_total = if self.gpus > 0 { 512_000.0 } else { 16_000.0 };
        let mem = mem_total * (0.08 + 0.5 * intensity * self.unit(task_ordinal, 31 + phase));
        let io_scale = (1.0 + intensity * 50.0) * 1e6;
        Telemetry {
            cpu_percent: cpu,
            mem_used_mb: mem,
            mem_total_mb: mem_total,
            gpu_percent: gpu,
            disk_read_bytes: (io_scale * self.unit(task_ordinal, 41 + phase)) as u64,
            disk_write_bytes: (io_scale * self.unit(task_ordinal, 43 + phase)) as u64,
            net_sent_bytes: (io_scale * self.unit(task_ordinal, 47 + phase)) as u64,
            net_recv_bytes: (io_scale * self.unit(task_ordinal, 53 + phase)) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let t = TelemetrySynth::frontier(1).snapshot(3, 0, 0.7);
        let v = t.to_value();
        let back = Telemetry::from_value(&v);
        assert_eq!(t, back);
    }

    #[test]
    fn synth_is_deterministic() {
        let a = TelemetrySynth::frontier(5).snapshot(10, 1, 0.5);
        let b = TelemetrySynth::frontier(5).snapshot(10, 1, 0.5);
        assert_eq!(a, b);
        let c = TelemetrySynth::frontier(6).snapshot(10, 1, 0.5);
        assert_ne!(a, c);
    }

    #[test]
    fn intensity_scales_load() {
        let s = TelemetrySynth::frontier(2);
        let hot = s.snapshot(1, 0, 1.0);
        let cold = s.snapshot(1, 0, 0.05);
        assert!(hot.cpu_mean() > cold.cpu_mean());
    }

    #[test]
    fn bounds_hold() {
        let s = TelemetrySynth::frontier(3);
        for t in 0..50 {
            let snap = s.snapshot(t, t % 2, (t as f64) / 50.0);
            assert!(snap.cpu_percent.iter().all(|p| (0.0..=100.0).contains(p)));
            assert!(snap.gpu_percent.iter().all(|p| (0.0..=100.0).contains(p)));
            assert!(snap.mem_fraction() <= 1.0);
        }
    }

    #[test]
    fn edge_nodes_have_no_gpu() {
        let t = TelemetrySynth::edge(1).snapshot(0, 0, 0.9);
        assert!(t.gpu_percent.is_empty());
        assert_eq!(t.gpu_mean(), 0.0);
        assert_eq!(t.cpu_percent.len(), 4);
    }
}
