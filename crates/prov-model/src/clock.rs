//! Clocks producing epoch-seconds timestamps (`started_at`/`ended_at`).
//!
//! Experiments must be reproducible, so every component takes a [`Clock`]
//! and production code can choose [`SystemClock`] while tests and the
//! evaluation harness use the deterministic [`SimClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Source of epoch-second timestamps.
pub trait Clock: Send + Sync {
    /// Current time as fractional seconds since the Unix epoch.
    fn now(&self) -> f64;
}

/// Wall-clock time.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> f64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0)
    }
}

/// Deterministic simulated clock.
///
/// Each call to [`Clock::now`] advances the clock by a fixed tick, so a
/// sequence of capture events yields strictly increasing, reproducible
/// timestamps. Use [`SimClock::advance`] to model task durations.
#[derive(Debug)]
pub struct SimClock {
    /// Microseconds since epoch, stored atomically for lock-free sharing.
    micros: AtomicU64,
    /// Auto-advance per `now()` call, in microseconds.
    tick_micros: u64,
}

impl SimClock {
    /// Start at `epoch_seconds`, advancing `tick_micros` per observation.
    pub fn new(epoch_seconds: f64, tick_micros: u64) -> Self {
        Self {
            micros: AtomicU64::new((epoch_seconds * 1e6) as u64),
            tick_micros,
        }
    }

    /// A clock starting at the paper's Listing 1 timestamp.
    pub fn listing1() -> Self {
        Self::new(1_753_457_858.952133, 500)
    }

    /// Manually advance the clock by `seconds`.
    pub fn advance(&self, seconds: f64) {
        self.micros
            .fetch_add((seconds * 1e6) as u64, Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn now(&self) -> f64 {
        let t = self.micros.fetch_add(self.tick_micros, Ordering::Relaxed);
        t as f64 / 1e6
    }
}

/// Shared trait-object clock handle used across components.
pub type SharedClock = Arc<dyn Clock>;

/// Convenience: a shared deterministic clock starting at the Listing 1 epoch.
pub fn sim_clock() -> SharedClock {
    Arc::new(SimClock::listing1())
}

/// Convenience: a shared wall clock.
pub fn system_clock() -> SharedClock {
    Arc::new(SystemClock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_is_monotone_and_deterministic() {
        let c1 = SimClock::new(100.0, 1000);
        let c2 = SimClock::new(100.0, 1000);
        let a: Vec<f64> = (0..5).map(|_| c1.now()).collect();
        let b: Vec<f64> = (0..5).map(|_| c2.now()).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn advance_moves_time() {
        let c = SimClock::new(0.0, 0);
        let t0 = c.now();
        c.advance(2.5);
        let t1 = c.now();
        assert!((t1 - t0 - 2.5).abs() < 1e-9);
    }

    #[test]
    fn system_clock_is_sane() {
        let c = SystemClock;
        // Some time after 2020-01-01.
        assert!(c.now() > 1_577_836_800.0);
    }
}
