//! Flat sorted-vector object map — the storage behind [`Value::Object`].
//!
//! Provenance documents are small objects (a Listing-1 message has ~16 top
//! level keys) that are built once, read many times, and bulk-constructed
//! on the database decode/materialize hot path. A `BTreeMap` pays node
//! allocation and rebalancing per insert there; this map instead keeps its
//! entries in one contiguous `Vec<(Sym, Value)>` sorted by key byte order,
//! so:
//!
//! * iteration order is identical to `BTreeMap<Sym, Value>` (byte order of
//!   the key text — the deterministic-serialization invariant upstack
//!   depends on);
//! * [`Map::from_iter`] of already-sorted pairs (the [`TaskMessage::to_value`]
//!   and frame-row builders emit keys pre-sorted) is a single allocation
//!   with no per-key rebalancing — the "arena" behind decode;
//! * lookups are cache-friendly binary searches over one slab.
//!
//! Point inserts shift the tail of the vector, which is O(len) — fine for
//! the small objects this crate stores (and still competitive with node
//! churn at those sizes). The API mirrors the `BTreeMap` subset the
//! workspace uses, including `Borrow`-based `&str` probing.
//!
//! [`Value::Object`]: crate::value::Value::Object
//! [`TaskMessage::to_value`]: crate::message::TaskMessage::to_value

use crate::sym::Sym;
use crate::value::Value;
use std::borrow::Borrow;
use std::fmt;

/// String-keyed object map with deterministic (byte-sorted) iteration
/// order, stored as one flat sorted vector of `(Sym, Value)` pairs.
#[derive(Clone, Default)]
pub struct Map {
    entries: Vec<(Sym, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// An empty map with room for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            entries: Vec::with_capacity(n),
        }
    }

    /// Build from pairs already sorted strictly ascending by key — the
    /// one-pass bulk constructor serializers use. Debug-asserts order.
    pub fn from_sorted_pairs(pairs: Vec<(Sym, Value)>) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted_pairs requires strictly ascending keys"
        );
        Self { entries: pairs }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn search<Q>(&self, key: &Q) -> Result<usize, usize>
    where
        Sym: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.entries.binary_search_by(|(k, _)| k.borrow().cmp(key))
    }

    /// Value for `key`, if present. Probes with `&str` are allocation-free.
    pub fn get<Q>(&self, key: &Q) -> Option<&Value>
    where
        Sym: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.search(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable value for `key`, if present.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut Value>
    where
        Sym: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match self.search(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// True when `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        Sym: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.search(key).is_ok()
    }

    /// Insert, returning the previous value for the key if any. Appends in
    /// O(1) when the key sorts after every existing key (sorted build).
    pub fn insert(&mut self, key: Sym, value: Value) -> Option<Value> {
        match self.entries.last() {
            Some((last, _)) if *last < key => {
                self.entries.push((key, value));
                None
            }
            None => {
                self.entries.push((key, value));
                None
            }
            _ => match self.entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
                Err(i) => {
                    self.entries.insert(i, (key, value));
                    None
                }
            },
        }
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<Value>
    where
        Sym: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.search(key).ok().map(|i| self.entries.remove(i).1)
    }

    /// Keep only entries for which the predicate returns true.
    pub fn retain(&mut self, mut f: impl FnMut(&Sym, &mut Value) -> bool) {
        self.entries.retain_mut(|(k, v)| f(k, v));
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterate `(key, value)` pairs in key order.
    pub fn iter(&self) -> Iter<'_> {
        Iter(self.entries.iter())
    }

    /// Iterate with mutable values, in key order.
    pub fn iter_mut(&mut self) -> IterMut<'_> {
        IterMut(self.entries.iter_mut())
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> impl DoubleEndedIterator<Item = &Sym> + ExactSizeIterator {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in key order.
    pub fn values(&self) -> impl DoubleEndedIterator<Item = &Value> + ExactSizeIterator {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl fmt::Debug for Map {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

/// Borrowed iterator over `(key, value)` pairs.
pub struct Iter<'a>(std::slice::Iter<'a, (Sym, Value)>);

impl<'a> Iterator for Iter<'a> {
    type Item = (&'a Sym, &'a Value);
    fn next(&mut self) -> Option<Self::Item> {
        self.0.next().map(|(k, v)| (k, v))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl DoubleEndedIterator for Iter<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        self.0.next_back().map(|(k, v)| (k, v))
    }
}

impl ExactSizeIterator for Iter<'_> {}

/// Borrowed iterator with mutable values.
pub struct IterMut<'a>(std::slice::IterMut<'a, (Sym, Value)>);

impl<'a> Iterator for IterMut<'a> {
    type Item = (&'a Sym, &'a mut Value);
    fn next(&mut self) -> Option<Self::Item> {
        self.0.next().map(|(k, v)| (&*k, v))
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl ExactSizeIterator for IterMut<'_> {}

impl FromIterator<(Sym, Value)> for Map {
    /// Bulk-build. Pre-sorted input (the serializer hot path) is taken as
    /// is; otherwise the pairs are stable-sorted and later occurrences of
    /// a key overwrite earlier ones, matching repeated `insert` semantics.
    fn from_iter<T: IntoIterator<Item = (Sym, Value)>>(iter: T) -> Self {
        let entries: Vec<(Sym, Value)> = iter.into_iter().collect();
        if entries.windows(2).all(|w| w[0].0 < w[1].0) {
            return Self { entries };
        }
        let mut sorted = entries;
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out: Vec<(Sym, Value)> = Vec::with_capacity(sorted.len());
        for e in sorted {
            match out.last_mut() {
                Some(last) if last.0 == e.0 => *last = e,
                _ => out.push(e),
            }
        }
        Self { entries: out }
    }
}

impl Extend<(Sym, Value)> for Map {
    fn extend<T: IntoIterator<Item = (Sym, Value)>>(&mut self, iter: T) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl IntoIterator for Map {
    type Item = (Sym, Value);
    type IntoIter = std::vec::IntoIter<(Sym, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a Sym, &'a Value);
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a> IntoIterator for &'a mut Map {
    type Item = (&'a Sym, &'a mut Value);
    type IntoIter = IterMut<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pairs: &[(&str, i64)]) -> Map {
        let mut out = Map::new();
        for (k, v) in pairs {
            out.insert(Sym::from(*k), Value::Int(*v));
        }
        out
    }

    #[test]
    fn insert_get_overwrite() {
        let mut map = m(&[("b", 2), ("a", 1)]);
        assert_eq!(map.get("a"), Some(&Value::Int(1)));
        assert_eq!(map.insert("a".into(), Value::Int(9)), Some(Value::Int(1)));
        assert_eq!(map.get("a"), Some(&Value::Int(9)));
        assert_eq!(map.len(), 2);
        assert!(map.contains_key("b"));
        assert!(!map.contains_key("c"));
    }

    #[test]
    fn iteration_is_key_sorted() {
        let map = m(&[("z", 1), ("a", 2), ("mm", 3), ("m", 4)]);
        let keys: Vec<&str> = map.keys().map(Sym::as_str).collect();
        assert_eq!(keys, vec!["a", "m", "mm", "z"]);
    }

    #[test]
    fn from_iter_unsorted_keeps_last_duplicate() {
        let pairs = vec![
            (Sym::from("b"), Value::Int(1)),
            (Sym::from("a"), Value::Int(2)),
            (Sym::from("b"), Value::Int(3)),
        ];
        let map = Map::from_iter(pairs);
        assert_eq!(map.len(), 2);
        assert_eq!(map.get("b"), Some(&Value::Int(3)));
        // Matches repeated-insert semantics.
        let mut ins = Map::new();
        ins.insert("b".into(), Value::Int(1));
        ins.insert("a".into(), Value::Int(2));
        ins.insert("b".into(), Value::Int(3));
        assert_eq!(map, ins);
    }

    #[test]
    fn from_iter_sorted_fast_path_identical() {
        let pairs = vec![
            (Sym::from("a"), Value::Int(1)),
            (Sym::from("b"), Value::Int(2)),
        ];
        assert_eq!(Map::from_iter(pairs.clone()), Map::from_sorted_pairs(pairs));
    }

    #[test]
    fn remove_and_retain() {
        let mut map = m(&[("a", 1), ("b", 2), ("c", 3)]);
        assert_eq!(map.remove("b"), Some(Value::Int(2)));
        assert_eq!(map.remove("b"), None);
        map.retain(|k, _| k.as_str() != "c");
        assert_eq!(map.len(), 1);
        assert!(map.contains_key("a"));
    }

    #[test]
    fn str_probe_matches_sym_probe() {
        let map = m(&[("status", 7)]);
        let sym = Sym::from("status");
        assert_eq!(map.get(&sym), map.get("status"));
    }
}
