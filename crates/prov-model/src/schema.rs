//! Static descriptions of the common (domain-agnostic) message fields.
//!
//! §4.2: "the description of fields that are common for all tasks, like
//! `campaign_id`, `workflow_id`, and `activity_id`, is statically included
//! in the schema by default". The agent's dynamic dataflow schema prepends
//! these descriptions to every prompt.

/// Description of one common field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommonField {
    /// Field name as it appears in messages and DataFrame columns.
    pub name: &'static str,
    /// Inferred/declared type name.
    pub dtype: &'static str,
    /// One-line semantic description used in prompts.
    pub description: &'static str,
}

/// The common workflow schema shared by every task message.
pub const COMMON_FIELDS: &[CommonField] = &[
    CommonField {
        name: "task_id",
        dtype: "str",
        description: "unique identifier of one task execution",
    },
    CommonField {
        name: "campaign_id",
        dtype: "str",
        description: "identifier of the campaign grouping related workflow executions",
    },
    CommonField {
        name: "workflow_id",
        dtype: "str",
        description: "identifier of the workflow execution this task belongs to",
    },
    CommonField {
        name: "activity_id",
        dtype: "str",
        description: "workflow step type that produced this task (e.g. run_dft)",
    },
    CommonField {
        name: "started_at",
        dtype: "float",
        description: "task start time in seconds since the Unix epoch; use this field when filtering time ranges",
    },
    CommonField {
        name: "ended_at",
        dtype: "float",
        description: "task end time in seconds since the Unix epoch",
    },
    CommonField {
        name: "duration",
        dtype: "float",
        description: "ended_at - started_at, in seconds",
    },
    CommonField {
        name: "hostname",
        dtype: "str",
        description: "compute node that executed the task",
    },
    CommonField {
        name: "status",
        dtype: "str",
        description: "task status: PENDING, RUNNING, FINISHED, or ERROR",
    },
    CommonField {
        name: "type",
        dtype: "str",
        description: "record type: task, workflow, tool_execution, llm_interaction, or anomaly_tag",
    },
    CommonField {
        name: "telemetry_at_start.cpu.percent",
        dtype: "array[float]",
        description: "per-core CPU utilization (%) sampled when the task started",
    },
    CommonField {
        name: "telemetry_at_end.cpu.percent",
        dtype: "array[float]",
        description: "per-core CPU utilization (%) sampled when the task ended",
    },
    CommonField {
        name: "telemetry_at_end.memory.used_mb",
        dtype: "float",
        description: "resident memory (MB) at task end",
    },
    CommonField {
        name: "telemetry_at_end.gpu.percent",
        dtype: "array[float]",
        description: "per-GPU utilization (%) at task end",
    },
    CommonField {
        name: "depends_on",
        dtype: "array[str]",
        description: "task_ids whose outputs this task consumed (dataflow lineage)",
    },
];

/// Look up a common field description by name.
pub fn common_field(name: &str) -> Option<&'static CommonField> {
    COMMON_FIELDS.iter().find(|f| f.name == name)
}

/// Render the common schema as prompt text, one field per line.
pub fn render_common_schema() -> String {
    let mut out = String::with_capacity(COMMON_FIELDS.len() * 96);
    out.push_str("Common fields present in every task row:\n");
    for f in COMMON_FIELDS {
        out.push_str("- ");
        out.push_str(f.name);
        out.push_str(" (");
        out.push_str(f.dtype);
        out.push_str("): ");
        out.push_str(f.description);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_works() {
        assert!(common_field("task_id").is_some());
        assert!(common_field("started_at").is_some());
        assert!(common_field("not_a_field").is_none());
    }

    #[test]
    fn render_contains_guideline_hint() {
        let text = render_common_schema();
        assert!(text.contains("started_at"));
        assert!(text.contains("filtering time ranges"));
        assert!(text.lines().count() >= COMMON_FIELDS.len());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = COMMON_FIELDS.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COMMON_FIELDS.len());
    }
}
