//! W3C PROV extension (§2.3, §4.2).
//!
//! The Provenance Keeper normalizes raw task messages into this model:
//! tasks become `prov:Activity` subclasses, their inputs/outputs become
//! `prov:Entity` records linked via `used`/`wasGeneratedBy`, and agents
//! (human or AI) attach via `wasAssociatedWith`. Agent tool executions and
//! LLM interactions reuse the same task schema and link to each other with
//! `wasInformedBy`.

use crate::ids::AgentId;
use crate::message::{MessageType, TaskMessage};
use crate::obj;
use crate::value::{Map, Value};

/// PROV node types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProvNodeKind {
    /// `prov:Entity` — a data item.
    Entity,
    /// `prov:Activity` — something that occurs over time (task execution).
    Activity,
    /// `prov:Agent` — bears responsibility for activities.
    Agent,
}

impl ProvNodeKind {
    /// PROV-N style name.
    pub fn as_str(self) -> &'static str {
        match self {
            ProvNodeKind::Entity => "prov:Entity",
            ProvNodeKind::Activity => "prov:Activity",
            ProvNodeKind::Agent => "prov:Agent",
        }
    }
}

/// PROV relation types used by the architecture (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProvRelation {
    /// Activity `used` Entity.
    Used,
    /// Entity `wasGeneratedBy` Activity.
    WasGeneratedBy,
    /// Activity `wasInformedBy` Activity (tool execution ← LLM interaction).
    WasInformedBy,
    /// Activity `wasAssociatedWith` Agent.
    WasAssociatedWith,
    /// Entity `wasDerivedFrom` Entity (dataflow lineage).
    WasDerivedFrom,
    /// Entity `wasAttributedTo` Agent.
    WasAttributedTo,
}

impl ProvRelation {
    /// PROV-N style name.
    pub fn as_str(self) -> &'static str {
        match self {
            ProvRelation::Used => "prov:used",
            ProvRelation::WasGeneratedBy => "prov:wasGeneratedBy",
            ProvRelation::WasInformedBy => "prov:wasInformedBy",
            ProvRelation::WasAssociatedWith => "prov:wasAssociatedWith",
            ProvRelation::WasDerivedFrom => "prov:wasDerivedFrom",
            ProvRelation::WasAttributedTo => "prov:wasAttributedTo",
        }
    }
}

/// One node in a PROV document.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvNode {
    /// Unique node id (task ids, entity ids, agent ids share a namespace).
    pub id: String,
    /// Node kind.
    pub kind: ProvNodeKind,
    /// Subtype label, e.g. `"task"`, `"tool_execution"`, `"llm_interaction"`.
    pub subtype: String,
    /// Arbitrary attributes.
    pub attributes: Map,
}

/// One edge in a PROV document.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvEdge {
    /// Source node id (subject).
    pub from: String,
    /// Target node id (object).
    pub to: String,
    /// Relation type.
    pub relation: ProvRelation,
}

/// A set of PROV statements produced from task messages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProvDocument {
    /// All nodes keyed by insertion order.
    pub nodes: Vec<ProvNode>,
    /// All edges.
    pub edges: Vec<ProvEdge>,
}

impl ProvDocument {
    /// Empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a node by id.
    pub fn node(&self, id: &str) -> Option<&ProvNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// All edges with the given relation.
    pub fn edges_of(&self, relation: ProvRelation) -> impl Iterator<Item = &ProvEdge> {
        self.edges.iter().filter(move |e| e.relation == relation)
    }

    /// Register an agent node (idempotent).
    pub fn register_agent(&mut self, agent: &AgentId, attributes: Map) {
        if self.node(agent.as_str()).is_none() {
            self.nodes.push(ProvNode {
                id: agent.as_str().to_string(),
                kind: ProvNodeKind::Agent,
                subtype: "agent".to_string(),
                attributes,
            });
        }
    }

    /// Normalize one task message into PROV statements (§4.2):
    ///
    /// * the task becomes an `Activity` (subtype from the message type);
    /// * each `used` field becomes an `Entity` + `used` edge;
    /// * each `generated` field becomes an `Entity` + `wasGeneratedBy` edge;
    /// * `depends_on` becomes `wasInformedBy` between activities and
    ///   `wasDerivedFrom` between their entities' namespaces;
    /// * `agent_id` becomes `wasAssociatedWith`.
    pub fn ingest(&mut self, msg: &TaskMessage) {
        let tid = msg.task_id.as_str().to_string();
        self.nodes.push(ProvNode {
            id: tid.clone(),
            kind: ProvNodeKind::Activity,
            subtype: msg.msg_type.as_str().to_string(),
            attributes: activity_attributes(msg),
        });

        for (field, value) in msg.used.flatten() {
            let eid = format!("{tid}#used.{field}");
            self.nodes.push(ProvNode {
                id: eid.clone(),
                kind: ProvNodeKind::Entity,
                subtype: "data".to_string(),
                attributes: entity_attributes(&field, &value),
            });
            self.edges.push(ProvEdge {
                from: tid.clone(),
                to: eid,
                relation: ProvRelation::Used,
            });
        }
        for (field, value) in msg.generated.flatten() {
            let eid = format!("{tid}#generated.{field}");
            self.nodes.push(ProvNode {
                id: eid.clone(),
                kind: ProvNodeKind::Entity,
                subtype: "data".to_string(),
                attributes: entity_attributes(&field, &value),
            });
            self.edges.push(ProvEdge {
                from: eid,
                to: tid.clone(),
                relation: ProvRelation::WasGeneratedBy,
            });
        }
        for dep in &msg.depends_on {
            self.edges.push(ProvEdge {
                from: tid.clone(),
                to: dep.as_str().to_string(),
                relation: ProvRelation::WasInformedBy,
            });
        }
        if let Some(agent) = &msg.agent_id {
            self.register_agent(agent, Map::new());
            self.edges.push(ProvEdge {
                from: tid.clone(),
                to: agent.as_str().to_string(),
                relation: ProvRelation::WasAssociatedWith,
            });
            // LLM interactions and tool executions are attributed data
            // producers for traceability of agent-driven analysis.
            if matches!(
                msg.msg_type,
                MessageType::ToolExecution | MessageType::LlmInteraction
            ) {
                for (field, _) in msg.generated.flatten() {
                    self.edges.push(ProvEdge {
                        from: format!("{tid}#generated.{field}"),
                        to: agent.as_str().to_string(),
                        relation: ProvRelation::WasAttributedTo,
                    });
                }
            }
        }
    }

    /// Activities directly or transitively informing `task_id`
    /// (upstream lineage via `wasInformedBy`).
    pub fn lineage_upstream(&self, task_id: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut stack = vec![task_id.to_string()];
        while let Some(cur) = stack.pop() {
            for e in self.edges_of(ProvRelation::WasInformedBy) {
                if e.from == cur && !out.contains(&e.to) {
                    out.push(e.to.clone());
                    stack.push(e.to.clone());
                }
            }
        }
        out
    }

    /// Encode the document as a JSON value (for persistence/inspection).
    pub fn to_value(&self) -> Value {
        Value::array(
            self.nodes
                .iter()
                .map(|n| {
                    obj! {
                        "id" => n.id.as_str(),
                        "kind" => n.kind.as_str(),
                        "subtype" => n.subtype.as_str(),
                        "attributes" => Value::object(n.attributes.clone()),
                    }
                })
                .chain(self.edges.iter().map(|e| {
                    obj! {
                        "from" => e.from.as_str(),
                        "to" => e.to.as_str(),
                        "relation" => e.relation.as_str(),
                    }
                }))
                .collect(),
        )
    }
}

fn activity_attributes(msg: &TaskMessage) -> Map {
    use crate::value::keys;
    let mut m = Map::new();
    m.insert(keys::activity_id(), Value::from(msg.activity_id.as_str()));
    m.insert(keys::workflow_id(), Value::from(msg.workflow_id.as_str()));
    m.insert(keys::campaign_id(), Value::from(msg.campaign_id.as_str()));
    m.insert(keys::started_at(), Value::Float(msg.started_at));
    m.insert(keys::ended_at(), Value::Float(msg.ended_at));
    m.insert(keys::hostname(), Value::from(msg.hostname.as_str()));
    m.insert(keys::status(), Value::Str(msg.status.sym()));
    m
}

fn entity_attributes(field: &str, value: &Value) -> Map {
    use crate::value::keys;
    let mut m = Map::new();
    m.insert(keys::field(), Value::from(field));
    m.insert(keys::value(), value.clone());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::TaskMessageBuilder;

    fn msg(id: &str, act: &str) -> TaskMessage {
        TaskMessageBuilder::new(id, "wf", act)
            .uses("x", 1)
            .generates("y", 2)
            .build()
    }

    #[test]
    fn ingest_creates_entities_and_edges() {
        let mut doc = ProvDocument::new();
        doc.ingest(&msg("t1", "step_a"));
        assert_eq!(doc.nodes.len(), 3); // activity + 2 entities
        assert_eq!(doc.edges_of(ProvRelation::Used).count(), 1);
        assert_eq!(doc.edges_of(ProvRelation::WasGeneratedBy).count(), 1);
        assert_eq!(doc.node("t1").unwrap().kind, ProvNodeKind::Activity);
    }

    #[test]
    fn tool_execution_links_to_agent() {
        let mut doc = ProvDocument::new();
        let m = TaskMessageBuilder::new("tool-1", "wf", "in_memory_query")
            .msg_type(MessageType::ToolExecution)
            .agent("prov-agent")
            .uses("query", "df.head()")
            .generates("result", "ok")
            .build();
        doc.ingest(&m);
        assert!(doc
            .edges_of(ProvRelation::WasAssociatedWith)
            .any(|e| e.from == "tool-1" && e.to == "prov-agent"));
        assert!(doc
            .edges_of(ProvRelation::WasAttributedTo)
            .any(|e| e.to == "prov-agent"));
        assert_eq!(doc.node("prov-agent").unwrap().kind, ProvNodeKind::Agent);
    }

    #[test]
    fn llm_interaction_informed_by_tool() {
        // §4.2: a tool execution is linked with the LLM interaction that
        // happened in its context via wasInformedBy.
        let mut doc = ProvDocument::new();
        let llm = TaskMessageBuilder::new("llm-1", "wf", "llm_chat")
            .msg_type(MessageType::LlmInteraction)
            .agent("prov-agent")
            .uses("prompt", "which task is slowest?")
            .generates("response", "df.sort_values(...)")
            .build();
        let tool = TaskMessageBuilder::new("tool-1", "wf", "in_memory_query")
            .msg_type(MessageType::ToolExecution)
            .agent("prov-agent")
            .depends_on("llm-1")
            .build();
        doc.ingest(&llm);
        doc.ingest(&tool);
        assert!(doc
            .edges_of(ProvRelation::WasInformedBy)
            .any(|e| e.from == "tool-1" && e.to == "llm-1"));
    }

    #[test]
    fn lineage_is_transitive() {
        let mut doc = ProvDocument::new();
        doc.ingest(&msg("a", "s1"));
        let mut b = msg("b", "s2");
        b.depends_on.push("a".into());
        doc.ingest(&b);
        let mut c = msg("c", "s3");
        c.depends_on.push("b".into());
        doc.ingest(&c);
        let up = doc.lineage_upstream("c");
        assert!(up.contains(&"b".to_string()));
        assert!(up.contains(&"a".to_string()));
        assert!(doc.lineage_upstream("a").is_empty());
    }

    #[test]
    fn agent_registration_is_idempotent() {
        let mut doc = ProvDocument::new();
        doc.register_agent(&AgentId::new("x"), Map::new());
        doc.register_agent(&AgentId::new("x"), Map::new());
        assert_eq!(
            doc.nodes
                .iter()
                .filter(|n| n.kind == ProvNodeKind::Agent)
                .count(),
            1
        );
    }

    #[test]
    fn document_serializes() {
        let mut doc = ProvDocument::new();
        doc.ingest(&msg("t1", "a"));
        let v = doc.to_value();
        assert!(v.as_array().unwrap().len() >= 5);
    }
}
