//! # prov-model
//!
//! Foundation data model for the provenance stack: a JSON-like [`Value`]
//! with an in-repo parser/serializer, identifier types, deterministic
//! clocks, telemetry snapshots, the workflow task provenance message schema
//! (paper Listing 1), the W3C PROV extension used by the Provenance Keeper,
//! and the static common-field schema the agent injects into prompts.
//!
//! Everything upstack (brokers, databases, DataFrames, the agent, the
//! evaluation harness) speaks these types.

#![warn(missing_docs)]

pub mod clock;
pub mod flatmap;
pub mod ids;
pub mod json;
pub mod message;
pub mod prov;
pub mod schema;
pub mod sym;
pub mod telemetry;
pub mod value;

pub use clock::{sim_clock, system_clock, Clock, SharedClock, SimClock, SystemClock};
pub use ids::{ActivityId, AgentId, CampaignId, IdGenerator, TaskId, WorkflowId};
pub use json::{from_str as json_from_str, to_string as json_to_string, JsonError};
pub use message::{MessageType, TaskMessage, TaskMessageBuilder, TaskStatus};
pub use prov::{ProvDocument, ProvEdge, ProvNode, ProvNodeKind, ProvRelation};
pub use sym::{keys, Sym};
pub use telemetry::{Telemetry, TelemetrySynth};
pub use value::{Map, Value, ValueKind};
