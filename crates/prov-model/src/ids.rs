//! Identifier types for campaigns, workflows, activities, tasks and agents.
//!
//! The paper's message schema (Listing 1) identifies tasks with a
//! `"<epoch>.<frac>_<wf>_<act>_<seq>"` string and campaigns/workflows with
//! UUIDs. We reproduce both shapes with a deterministic generator so tests
//! and experiments are stable.

use crate::sym::Sym;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! string_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        // Backed by a `Sym` (shared, content-hashed) rather than an owned
        // `String`: serializing a message into a `Value` then becomes a
        // refcount bump per id instead of a fresh heap copy — ids are the
        // bulk of a task message's string fields, and `to_value` sits on
        // the ingest/materialize hot path. `Sym`'s Eq/Ord/Hash all follow
        // the text content, so map/sort behavior is unchanged.
        #[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(Sym);

        impl $name {
            /// Wrap an existing identifier string.
            pub fn new(s: impl AsRef<str>) -> Self {
                Self(Sym::new(s))
            }
            /// Borrow the identifier text.
            pub fn as_str(&self) -> &str {
                self.0.as_str()
            }
            /// The shared symbol behind this id (refcount bump, no copy).
            pub fn sym(&self) -> Sym {
                self.0.clone()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self(Sym::new(s))
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self(Sym::new(s))
            }
        }

        impl From<Sym> for $name {
            fn from(s: Sym) -> Self {
                Self(s)
            }
        }
    };
}

string_id!(
    /// Identifier of one task execution (one provenance message).
    TaskId
);
string_id!(
    /// Identifier of a campaign: a set of related workflow executions.
    CampaignId
);
string_id!(
    /// Identifier of one workflow execution.
    WorkflowId
);
string_id!(
    /// Identifier of an activity (workflow step type, e.g. `run_dft`).
    ActivityId
);
string_id!(
    /// Identifier of an agent (human, service, or AI agent).
    AgentId
);

/// Deterministic identifier generator.
///
/// Produces UUID-shaped strings from a seeded SplitMix64 stream and
/// Listing-1-shaped task ids from a timestamp plus monotonic counters, so a
/// given seed always yields the same id sequence.
#[derive(Debug)]
pub struct IdGenerator {
    state: AtomicU64,
    seq: AtomicU64,
}

impl IdGenerator {
    /// Create a generator whose whole output stream is a function of `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            state: AtomicU64::new(seed ^ 0x9E37_79B9_7F4A_7C15),
            seq: AtomicU64::new(0),
        }
    }

    fn next_u64(&self) -> u64 {
        // SplitMix64 step; `fetch_add` keeps the stream race-free under
        // concurrent id allocation (Atomics & Locks ch. 2: ID allocation).
        let mut z = self
            .state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A UUIDv4-shaped string (deterministic, not cryptographic).
    pub fn uuid(&self) -> String {
        let a = self.next_u64();
        let b = self.next_u64();
        format!(
            "{:08x}-{:04x}-4{:03x}-{:04x}-{:012x}",
            (a >> 32) as u32,
            (a >> 16) as u16,
            (a & 0xFFF) as u16,
            0x8000 | ((b >> 48) as u16 & 0x3FFF),
            b & 0xFFFF_FFFF_FFFF
        )
    }

    /// A fresh campaign id.
    pub fn campaign(&self) -> CampaignId {
        CampaignId::new(self.uuid())
    }

    /// A fresh workflow id.
    pub fn workflow(&self) -> WorkflowId {
        WorkflowId::new(self.uuid())
    }

    /// A Listing-1-shaped task id: `"<started_at>_<wf_ordinal>_<act_ordinal>_<seq>"`.
    pub fn task(&self, started_at: f64, wf_ordinal: u32, act_ordinal: u32) -> TaskId {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        TaskId::new(format!("{started_at:.6}_{wf_ordinal}_{act_ordinal}_{seq}"))
    }
}

impl Default for IdGenerator {
    fn default() -> Self {
        Self::new(0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uuid_shape() {
        let g = IdGenerator::new(7);
        let u = g.uuid();
        let parts: Vec<&str> = u.split('-').collect();
        assert_eq!(parts.len(), 5);
        assert_eq!(parts[0].len(), 8);
        assert_eq!(parts[4].len(), 12);
        assert!(parts[2].starts_with('4'));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = IdGenerator::new(42);
        let b = IdGenerator::new(42);
        assert_eq!(a.uuid(), b.uuid());
        assert_eq!(a.uuid(), b.uuid());
        let c = IdGenerator::new(43);
        assert_ne!(IdGenerator::new(42).uuid(), c.uuid());
    }

    #[test]
    fn task_ids_unique_and_shaped() {
        let g = IdGenerator::new(1);
        let mut seen = HashSet::new();
        for i in 0..100 {
            let t = g.task(1753457858.952133, 0, i % 5);
            assert!(t.as_str().starts_with("1753457858.952133_0_"));
            assert!(seen.insert(t));
        }
    }

    #[test]
    fn concurrent_uuid_allocation_is_unique() {
        let g = std::sync::Arc::new(IdGenerator::new(9));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..250).map(|_| g.uuid()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for u in h.join().unwrap() {
                assert!(all.insert(u), "duplicate uuid under concurrency");
            }
        }
        assert_eq!(all.len(), 1000);
    }
}
