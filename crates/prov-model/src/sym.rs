//! Interned, shared strings for [`crate::value::Value`].
//!
//! Provenance traffic is dominated by a small vocabulary of repeated
//! strings: the Listing-1 field names (`task_id`, `activity`, `used`,
//! `generated`, …), telemetry section names, and enum-like payload strings
//! (statuses, relation names, activity ids). [`Sym`] exploits that: it is a
//! reference-counted `Arc<str>` plus a cached content hash, so
//!
//! * cloning a string — and any `Value` tree built from them — bumps a
//!   refcount instead of copying bytes;
//! * hashing a string for an index probe reads the cached 64-bit digest
//!   instead of re-walking the bytes;
//! * interned occurrences of the same key share one allocation process-wide.
//!
//! # Interned vs. uninterned
//!
//! [`Sym::intern`] consults the global interner; [`Sym::new`] does not.
//! Interning is for *low-cardinality* strings (object keys, enum values):
//! the interner never evicts, so unbounded-cardinality data (task ids, free
//! text) must stay uninterned. Two safeguards keep accidents cheap:
//!
//! * the interner is capacity-bounded ([`MAX_INTERNED`]); once full,
//!   `intern` degrades to `new` instead of growing;
//! * both kinds of `Sym` are semantically identical (`Eq`/`Ord`/`Hash` by
//!   content, with pointer-equality fast paths), so interning is purely an
//!   allocation/dedup optimization and never changes behavior.
//!
//! The interner is sharded 16 ways by the cached content hash, so
//! concurrent interning from capture threads does not serialize on one
//! lock. It is pre-seeded with the hot provenance vocabulary (see
//! [`keys`]), and each hot key also gets a zero-lookup accessor that clones
//! a process-wide static — `TaskMessage::to_value` builds its whole key set
//! without touching the interner or the allocator.

use parking_lot::RwLock;
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Upper bound on interner residency. Enforced *per shard* (each of the
/// [`SHARDS`] shards caps at `MAX_INTERNED / SHARDS` entries), so total
/// residency never exceeds this value, but a hash-skewed vocabulary can
/// exhaust one shard early — new strings routed there then stop
/// deduplicating (degrading to [`Sym::new`] behavior) while other shards
/// still accept. The safety net targets high-cardinality strings leaking
/// into key position; semantics never change either way.
pub const MAX_INTERNED: usize = 1 << 16;

/// Lock shards in the global interner; see [`MAX_INTERNED`] for how the
/// capacity bound distributes over them.
pub const SHARDS: usize = 16;

/// FNV-1a over `bytes` — the deterministic digest cached in every [`Sym`]
/// and folded into [`crate::value::Value::stable_hash`].
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

struct Interner {
    shards: [RwLock<HashSet<Arc<str>>>; SHARDS],
}

impl Interner {
    fn global() -> &'static Interner {
        static GLOBAL: OnceLock<Interner> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let interner = Interner {
                shards: std::array::from_fn(|_| RwLock::new(HashSet::new())),
            };
            for key in keys::HOT_KEYS {
                interner.intern(key);
            }
            interner
        })
    }

    fn intern(&self, s: &str) -> Sym {
        let hash = fnv1a(s.as_bytes());
        let shard = &self.shards[(hash as usize) % SHARDS];
        if let Some(hit) = shard.read().get(s) {
            return Sym {
                text: hit.clone(),
                hash,
            };
        }
        let mut w = shard.write();
        // Double-check under the write lock: another thread may have won.
        if let Some(hit) = w.get(s) {
            return Sym {
                text: hit.clone(),
                hash,
            };
        }
        let text: Arc<str> = Arc::from(s);
        if w.len() < MAX_INTERNED / SHARDS {
            w.insert(text.clone());
        }
        Sym { text, hash }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

/// A shared, content-hashed string — the key and string-payload type of
/// [`crate::value::Value`]. See the module docs for the design.
#[derive(Clone)]
pub struct Sym {
    text: Arc<str>,
    hash: u64,
}

impl Sym {
    /// A shared string *without* interner dedup — the right constructor for
    /// unbounded-cardinality data (task ids, hostnames, free-form text).
    pub fn new(s: impl AsRef<str>) -> Sym {
        let s = s.as_ref();
        Sym {
            hash: fnv1a(s.as_bytes()),
            text: Arc::from(s),
        }
    }

    /// Intern via the bounded global interner: repeated calls with equal
    /// text share one allocation (until [`MAX_INTERNED`] is reached, after
    /// which this degrades to [`Sym::new`]). Use for object keys and
    /// enum-like strings only.
    pub fn intern(s: &str) -> Sym {
        Interner::global().intern(s)
    }

    /// The string content.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Cached FNV-1a digest of the content. Deterministic across runs and
    /// identical for interned and uninterned `Sym`s with equal text.
    pub fn hash_u64(&self) -> u64 {
        self.hash
    }

    /// True when both symbols share one allocation (always true for two
    /// interned copies of the same text, while the interner has capacity).
    pub fn ptr_eq(a: &Sym, b: &Sym) -> bool {
        Arc::ptr_eq(&a.text, &b.text)
    }

    /// Current number of strings resident in the global interner
    /// (pre-seeded hot keys included). Observability / test hook.
    pub fn interned_count() -> usize {
        Interner::global().len()
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::ops::Deref for Sym {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// `Borrow<str>` (with `Ord`/`Hash` agreeing with `str`'s) is what lets
/// `BTreeMap<Sym, _>` and `HashMap<Sym, _>` be probed with a plain `&str`,
/// keeping every `map.get("field")` call site allocation-free.
impl Borrow<str> for Sym {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        Sym::ptr_eq(self, other)
            || (self.hash == other.hash && self.text.as_bytes() == other.text.as_bytes())
    }
}

impl Eq for Sym {}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Byte order of the content — exactly `str`'s order, so a `BTreeMap<Sym,
/// _>` iterates in the same deterministic sequence a `BTreeMap<String, _>`
/// did (the serialization-stability guarantee `value.rs` documents).
impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> Ordering {
        if Sym::ptr_eq(self, other) {
            Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

/// Delegates to `str`'s hasher (not the cached digest) so the
/// `Borrow<str>` lookup contract holds for hash maps; fast paths that want
/// the cached digest call [`Sym::hash_u64`] explicitly.
impl std::hash::Hash for Sym {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state)
    }
}

impl Default for Sym {
    fn default() -> Self {
        Sym::intern("")
    }
}

impl From<&str> for Sym {
    /// Interns: `From` conversions are what key-position call sites use
    /// (`map.insert("k".into(), …)`), and keys are the low-cardinality
    /// vocabulary interning exists for. String *values* go through
    /// `Value::from(&str)`, which stays uninterned.
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern(&s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::intern(s)
    }
}

impl From<std::borrow::Cow<'_, str>> for Sym {
    fn from(s: std::borrow::Cow<'_, str>) -> Sym {
        Sym::intern(&s)
    }
}

macro_rules! hot_keys {
    ($( $fn_name:ident => $lit:literal ),+ $(,)?) => {
        /// Pre-seeded hot provenance keys.
        ///
        /// Every function clones a process-wide static `Sym` — no interner
        /// lookup, no hashing, no allocation; just an `Arc` refcount bump.
        /// The set covers the Listing-1 common schema, the telemetry
        /// payload sections, and the PROV attribute names — the ~30 keys
        /// that dominate `TaskMessage::to_value` traffic.
        pub mod keys {
            use super::Sym;
            $(
                #[doc = concat!("The interned `\"", $lit, "\"` key.")]
                pub fn $fn_name() -> Sym {
                    static CELL: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
                    CELL.get_or_init(|| Sym::intern($lit)).clone()
                }
            )+

            /// The raw hot-key vocabulary, in declaration order; the global
            /// interner is pre-seeded with exactly this set.
            pub const HOT_KEYS: &[&str] = &[$($lit),+];
        }
    };
}

hot_keys! {
    task_id => "task_id",
    campaign_id => "campaign_id",
    workflow_id => "workflow_id",
    activity_id => "activity_id",
    activity => "activity",
    agent_id => "agent_id",
    used => "used",
    generated => "generated",
    started_at => "started_at",
    ended_at => "ended_at",
    duration => "duration",
    hostname => "hostname",
    status => "status",
    msg_type => "type",
    depends_on => "depends_on",
    tags => "tags",
    telemetry_at_start => "telemetry_at_start",
    telemetry_at_end => "telemetry_at_end",
    cpu => "cpu",
    gpu => "gpu",
    memory => "memory",
    percent => "percent",
    used_mb => "used_mb",
    total_mb => "total_mb",
    disk => "disk",
    network => "network",
    read_bytes => "read_bytes",
    write_bytes => "write_bytes",
    sent_bytes => "sent_bytes",
    recv_bytes => "recv_bytes",
    field => "field",
    value => "value",
    group_id => "_id",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interned_copies_share_allocation() {
        let a = Sym::intern("task_id");
        let b = Sym::intern("task_id");
        assert!(Sym::ptr_eq(&a, &b));
        assert_eq!(a, b);
        assert_eq!(a.hash_u64(), b.hash_u64());
    }

    #[test]
    fn uninterned_equals_interned_by_content() {
        let a = Sym::intern("status");
        let b = Sym::new("status");
        assert!(!Sym::ptr_eq(&a, &b));
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        assert_eq!(a.hash_u64(), b.hash_u64());
    }

    #[test]
    fn hot_keys_are_preseeded_and_static() {
        let a = keys::task_id();
        let b = Sym::intern("task_id");
        assert!(Sym::ptr_eq(&a, &b));
        assert!(Sym::interned_count() >= keys::HOT_KEYS.len());
        // Declaration list and accessors agree.
        assert!(keys::HOT_KEYS.contains(&"telemetry_at_end"));
        assert_eq!(keys::msg_type().as_str(), "type");
        assert_eq!(keys::group_id().as_str(), "_id");
    }

    #[test]
    fn ordering_matches_str() {
        let mut syms = [
            Sym::new("b"),
            Sym::intern("a"),
            Sym::new("c"),
            Sym::intern("ab"),
        ];
        syms.sort();
        let got: Vec<&str> = syms.iter().map(Sym::as_str).collect();
        assert_eq!(got, vec!["a", "ab", "b", "c"]);
    }

    #[test]
    fn borrow_contract_enables_str_probes() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(Sym::intern("k"), 1);
        assert_eq!(m.get("k"), Some(&1));
        let mut h = std::collections::HashMap::new();
        h.insert(Sym::new("k"), 2);
        assert_eq!(h.get("k"), Some(&2));
    }

    #[test]
    fn hash_is_deterministic_fnv() {
        // Pin the digest so index layouts stay reproducible across builds.
        assert_eq!(Sym::new("").hash_u64(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Sym::new("a").hash_u64(), fnv1a(b"a"));
    }
}
