//! JSON serialization and parsing for [`Value`].
//!
//! Implemented in-repo (rather than pulling `serde_json`) because provenance
//! messages are the lingua franca of every component and the whole stack
//! needs exactly one canonical, deterministic rendering.

use crate::value::{Map, Sym, Value};
use std::fmt::Write as _;

/// Error raised while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Serialize a value to compact JSON.
pub fn to_string(value: &Value) -> String {
    let mut out = String::with_capacity(value.approx_size());
    write_value(&mut out, value, None, 0);
    out
}

/// Serialize a value to pretty-printed JSON with two-space indentation.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::with_capacity(value.approx_size() * 2);
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // JSON has no NaN/Inf; emit null like most tolerant encoders.
        out.push_str("null");
    } else if f == f.trunc() {
        // Keep a trailing `.0` so floats round-trip as floats — for any
        // magnitude (large integral floats would otherwise re-parse as
        // integers; found by the json_roundtrip property test).
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            // Payload strings are unbounded-cardinality; keep them out of
            // the interner (keys intern in `parse_object` instead).
            Some(b'"') => Ok(Value::Str(Sym::new(self.parse_string()?))),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal, expected '{kw}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            // Keys are the repeated vocabulary interning exists for; the
            // interner's capacity bound contains pathological inputs.
            map.insert(Sym::intern(&key), val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0C}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Handle UTF-16 surrogate pairs.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        s.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy raw continuation bytes.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float literal"))
        } else {
            // Large integers overflow to float rather than failing.
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid integer literal")),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arr, obj};

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "42", "-7", "3.5", "\"hi\""] {
            let v = from_str(text).unwrap();
            assert_eq!(to_string(&v), text);
        }
    }

    #[test]
    fn float_keeps_point() {
        assert_eq!(to_string(&Value::Float(5.0)), "5.0");
        let back = from_str("5.0").unwrap();
        assert_eq!(back, Value::Float(5.0));
    }

    #[test]
    fn nested_roundtrip() {
        let v = obj! {
            "task_id" => "1753457858.952133_0_3_973",
            "used" => obj! { "e0" => -155.033799510504, "frags" => obj!{ "label" => "C-H_3" } },
            "generated" => obj! { "bd_energy" => 98.64865792890485 },
            "telemetry" => arr![23.4, 53.8],
            "ok" => true,
        };
        let text = to_string(&v);
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("line1\nline2\t\"quoted\" \\slash".into());
        let text = to_string(&v);
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escape() {
        let v = from_str("\"\\u00e9\\u20ac\"").unwrap();
        assert_eq!(v.as_str(), Some("é€"));
        // Surrogate pair for 😀 (U+1F600).
        let v = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn raw_utf8_passthrough() {
        let v = from_str("\"héllo wörld 😀\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo wörld 😀"));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = from_str("{\"a\": }").unwrap_err();
        assert!(e.offset > 0);
        assert!(from_str("").is_err());
        assert!(from_str("[1,2").is_err());
        assert!(from_str("{\"a\":1} extra").is_err());
    }

    #[test]
    fn pretty_printing_is_stable() {
        let v = obj! {"b" => 1, "a" => arr![1, 2]};
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("\n"));
        assert_eq!(from_str(&pretty).unwrap(), v);
        // BTreeMap ordering: "a" before "b".
        assert!(pretty.find("\"a\"").unwrap() < pretty.find("\"b\"").unwrap());
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(to_string(&Value::Float(f64::NAN)), "null");
    }

    #[test]
    fn big_int_overflows_to_float() {
        let v = from_str("99999999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn listing1_message_parses() {
        // Abbreviated form of the paper's Listing 1.
        let text = r#"{
            "task_id": "1753457858.952133_0_3_973",
            "campaign_id": "0552ae57-1273-4ef8-a23b-c5ae6dd0c080",
            "activity_id": "run_individual_bde",
            "used": {"e0": -155.033799510504, "frags": {"label": "C-H_3", "fragment2": "[H]"}},
            "generated": {"bond_id": "C-H_3", "bd_energy": 98.64865792890485},
            "started_at": 1753457858.952133,
            "ended_at": 1753457859.009404,
            "hostname": "frontier00084.frontier.olcf.ornl.gov",
            "status": "FINISHED",
            "type": "task"
        }"#;
        let v = from_str(text).unwrap();
        assert_eq!(
            v.get_path("generated.bond_id").and_then(Value::as_str),
            Some("C-H_3")
        );
        assert_eq!(
            v.get_path("used.frags.label").and_then(Value::as_str),
            Some("C-H_3")
        );
    }
}
