//! Dynamically typed JSON-like values over interned, shared strings.
//!
//! Provenance messages (see [`crate::message`]) carry arbitrary,
//! application-specific `used`/`generated` payloads, so the whole stack is
//! built on a self-describing [`Value`] type with deterministic object
//! ordering (the flat sorted [`Map`]) to keep serialization, schema
//! inference and tests reproducible.
//!
//! # Interning design
//!
//! Agent and workflow traces are dominated by a small vocabulary of
//! repeated strings — the Listing-1 field names, telemetry sections, and
//! enum-like payloads — so the string representation is [`Sym`]: an
//! `Arc<str>` plus a cached FNV-1a content hash (see [`crate::sym`]).
//! Three structural choices follow from it:
//!
//! * **Object keys are symbols.** [`Map`] is a flat vector of `(Sym,
//!   Value)` pairs sorted by key (see [`crate::flatmap`]); key
//!   construction goes through the bounded, lock-sharded global interner
//!   (every `From<&str>`/`From<String>` conversion to `Sym` interns), and
//!   the ~30 hot provenance keys are pre-seeded with zero-lookup static
//!   accessors in [`crate::sym::keys`]. Serializing a `TaskMessage`
//!   therefore allocates no key strings at all.
//! * **Containers are shared.** `Array` and `Object` hold their payloads
//!   behind `Arc`, so cloning any `Value` tree — a whole document — is a
//!   refcount bump, never a deep copy. Mutation goes through
//!   [`Value::insert`]/[`Value::as_object_mut`], which copy-on-write via
//!   `Arc::make_mut`.
//! * **Hashes are cached.** [`Value::stable_hash`] folds in each `Sym`'s
//!   pre-computed digest instead of re-walking string bytes, so index
//!   probes hash symbol digests, not strings.
//!
//! # Ordering guarantee under symbol keys
//!
//! `Sym`'s `Ord` is the byte order of its content (with a pointer-equality
//! fast path), identical to `String`'s, and `Borrow<str>` is implemented
//! consistently with it. A [`Map`] over `Sym` keys therefore iterates in
//! exactly the order a `BTreeMap<String, Value>` would, `map.get("key")`
//! works allocation-free, and JSON output is byte-for-byte independent of
//! whether the tree's strings are interned, uninterned, or a mix — an
//! invariant pinned by the `interned_and_uninterned_serialize_identically`
//! property test.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

pub use crate::flatmap::Map;
pub use crate::sym::{keys, Sym};

/// A JSON-like dynamically typed value with shared strings and containers.
///
/// `Clone` is O(1) for every variant: strings, arrays and objects bump a
/// refcount. Equality compares content, with pointer fast paths.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (kept separate from floats for exact IDs/counters).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// UTF-8 string (shared; interned when built from a key-position
    /// conversion, plain `Arc` otherwise — semantically identical).
    Str(Sym),
    /// Ordered array behind a shared handle.
    Array(Arc<Vec<Value>>),
    /// String-keyed object with deterministic iteration order, behind a
    /// shared handle.
    Object(Arc<Map>),
}

/// Coarse type tag of a [`Value`], used by dtype inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueKind {
    /// `null`
    Null,
    /// boolean
    Bool,
    /// integer
    Int,
    /// float
    Float,
    /// string
    Str,
    /// array
    Array,
    /// object
    Object,
}

impl ValueKind {
    /// Human-readable name, as shown in dataflow schema prompts.
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::Null => "null",
            ValueKind::Bool => "bool",
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Str => "str",
            ValueKind::Array => "array",
            ValueKind::Object => "object",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            // Shared containers: identical handles are equal without a walk.
            (Value::Array(a), Value::Array(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Object(a), Value::Object(b)) => Arc::ptr_eq(a, b) || a == b,
            _ => false,
        }
    }
}

impl Value {
    /// Wrap an owned vector as an array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Arc::new(items))
    }

    /// Wrap an owned map as an object value.
    pub fn object(map: Map) -> Value {
        Value::Object(Arc::new(map))
    }

    /// The coarse type of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Null => ValueKind::Null,
            Value::Bool(_) => ValueKind::Bool,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::Array(_) => ValueKind::Array,
            Value::Object(_) => ValueKind::Object,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for `Int` or `Float`.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer payload. Floats with an exact integral value coerce.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (ints coerce losslessly for |i| < 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// String payload as a shared symbol, if this is a `Str`.
    pub fn as_sym(&self) -> Option<&Sym> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object payload, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object payload, if this is an `Object`. Copy-on-write: a
    /// shared handle is split before mutation (`Arc::make_mut`), so other
    /// holders of the same document never observe the change.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(Arc::make_mut(m)),
            _ => None,
        }
    }

    /// Mutable array payload, if this is an `Array` (copy-on-write, like
    /// [`Value::as_object_mut`]).
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(Arc::make_mut(a)),
            _ => None,
        }
    }

    /// Field lookup on objects; `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Array element lookup; `None` out of range or for non-arrays.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }

    /// Dotted-path lookup, e.g. `"used.frags.label"`. Path segments that
    /// parse as integers index arrays.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = match cur {
                Value::Object(m) => m.get(seg)?,
                Value::Array(a) => a.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(cur)
    }

    /// Insert into an object, converting `self` to an empty object first if
    /// it is `Null`. Returns the previous value if any. Copy-on-write when
    /// the object handle is shared.
    pub fn insert(&mut self, key: impl Into<Sym>, value: impl Into<Value>) -> Option<Value> {
        if self.is_null() {
            *self = Value::object(Map::new());
        }
        match self {
            Value::Object(m) => Arc::make_mut(m).insert(key.into(), value.into()),
            _ => None,
        }
    }

    /// Render as a display string without quotes around strings
    /// (used when embedding example values in prompts and tables).
    pub fn display_plain(&self) -> String {
        match self {
            Value::Str(s) => s.as_str().to_string(),
            other => other.to_string(),
        }
    }

    /// Recursively flatten nested objects into dotted keys.
    ///
    /// `{"frags": {"label": "C-H_3"}}` becomes `{"frags.label": "C-H_3"}`.
    /// Arrays and scalars are left as leaves. This is how nested
    /// `used`/`generated` payloads become DataFrame columns.
    pub fn flatten(&self) -> Vec<(String, Value)> {
        let mut out = Vec::new();
        self.flatten_into("", &mut out);
        out
    }

    fn flatten_into(&self, prefix: &str, out: &mut Vec<(String, Value)>) {
        match self {
            Value::Object(m) => {
                if m.is_empty() && !prefix.is_empty() {
                    out.push((prefix.to_string(), self.clone()));
                    return;
                }
                for (k, v) in m.iter() {
                    let key: Cow<str> = if prefix.is_empty() {
                        Cow::Borrowed(k.as_str())
                    } else {
                        Cow::Owned(format!("{prefix}.{k}"))
                    };
                    v.flatten_into(&key, out);
                }
            }
            other => {
                if !prefix.is_empty() {
                    out.push((prefix.to_string(), other.clone()));
                }
            }
        }
    }

    /// Total byte size estimate of the serialized value; used by buffer
    /// flush-by-bytes strategies.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null => 4,
            Value::Bool(_) => 5,
            Value::Int(_) => 12,
            Value::Float(_) => 18,
            Value::Str(s) => s.len() + 2,
            Value::Array(a) => 2 + a.iter().map(Value::approx_size).sum::<usize>(),
            Value::Object(m) => {
                2 + m
                    .iter()
                    .map(|(k, v)| k.len() + 3 + v.approx_size())
                    .sum::<usize>()
            }
        }
    }

    /// Content hash with the same coercion rules as query equality: an
    /// `Int` and a `Float` holding the same integral value hash identically
    /// (because `Condition::matches` treats them as equal). Used by the
    /// document store's hash indexes and hash aggregation so that probing
    /// never allocates — and, since every [`Sym`] caches its own FNV-1a
    /// digest, hashing a string or an object key folds in 8 pre-computed
    /// bytes instead of re-walking the text.
    ///
    /// The hash is deterministic across runs (FNV-1a composition, no
    /// randomized state), which keeps index layouts and test behavior
    /// reproducible, and it is independent of whether strings are interned.
    pub fn stable_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        self.stable_hash_into(&mut h);
        h
    }

    fn stable_hash_into(&self, h: &mut u64) {
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        match self {
            Value::Null => mix(h, &[0x00]),
            Value::Bool(b) => mix(h, &[0x01, *b as u8]),
            // Numbers canonicalize through `f64` with `-0.0` folded into
            // `+0.0`. Query equality (`Condition::matches`) compares
            // `Int(a)` to `Float(b)` via the lossy `a as f64 == b`, so the
            // hash must unify exactly the values that comparison unifies —
            // including above 2^53, where distinct ints share an `f64` (a
            // shared bucket there is only a false positive, which every
            // consumer filters with a real equality check).
            Value::Int(i) => {
                mix(h, &[0x02]);
                mix(h, &canonical_f64_bits(*i as f64));
            }
            Value::Float(f) => {
                mix(h, &[0x02]);
                mix(h, &canonical_f64_bits(*f));
            }
            Value::Str(s) => {
                mix(h, &[0x04]);
                mix(h, &s.hash_u64().to_le_bytes());
            }
            Value::Array(a) => {
                mix(h, &[0x05]);
                mix(h, &(a.len() as u64).to_le_bytes());
                for v in a.iter() {
                    v.stable_hash_into(h);
                }
            }
            Value::Object(m) => {
                mix(h, &[0x06]);
                mix(h, &(m.len() as u64).to_le_bytes());
                for (k, v) in m.iter() {
                    mix(h, &k.hash_u64().to_le_bytes());
                    mix(h, &[0xff]);
                    v.stable_hash_into(h);
                }
            }
        }
    }

    /// Partial ordering with numeric coercion: ints and floats compare by
    /// numeric value, strings lexicographically; mismatched kinds compare by
    /// kind tag so sorts are total and deterministic.
    pub fn compare(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Null, Null) => Ordering::Equal,
            (Array(a), Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.compare(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => a.kind().cmp(&b.kind()),
        }
    }
}

/// Bit pattern used by [`Value::stable_hash`] for numbers: `-0.0` and
/// `+0.0` are equal everywhere in the query layer, so they must share one
/// encoding. (NaN keeps its bits; `Eq` never matches NaN anyway.)
fn canonical_f64_bits(f: f64) -> [u8; 8] {
    let f = if f == 0.0 { 0.0 } else { f };
    f.to_bits().to_le_bytes()
}

impl fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_string(self))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Float(f as f64)
    }
}
impl From<&str> for Value {
    /// String *values* stay uninterned ([`Sym::new`]): payload strings are
    /// unbounded-cardinality data; only key-position conversions intern.
    fn from(s: &str) -> Self {
        Value::Str(Sym::new(s))
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Sym::new(s))
    }
}
impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::Str(Sym::new(s))
    }
}
impl From<Sym> for Value {
    fn from(s: Sym) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::object(m)
    }
}

/// Build a [`Value::Object`] literal: `obj! { "a" => 1, "b" => "x" }`.
/// Keys are interned symbols; values convert via `Value::from`.
#[macro_export]
macro_rules! obj {
    () => { $crate::value::Value::object($crate::value::Map::new()) };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut m = $crate::value::Map::new();
        $( m.insert($crate::value::Sym::from($k), $crate::value::Value::from($v)); )+
        $crate::value::Value::object(m)
    }};
}

/// Build a [`Value::Array`] literal: `arr![1, 2.5, "x"]`.
#[macro_export]
macro_rules! arr {
    () => { $crate::value::Value::array(Vec::new()) };
    ( $( $v:expr ),+ $(,)? ) => {
        $crate::value::Value::array(vec![ $( $crate::value::Value::from($v) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags() {
        assert_eq!(Value::Null.kind(), ValueKind::Null);
        assert_eq!(Value::from(1i64).kind(), ValueKind::Int);
        assert_eq!(Value::from(1.5).kind(), ValueKind::Float);
        assert_eq!(Value::from("x").kind(), ValueKind::Str);
        assert_eq!(arr![1].kind(), ValueKind::Array);
        assert_eq!(obj! {"a" => 1}.kind(), ValueKind::Object);
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert!(Value::Int(1).is_number());
        assert!(!Value::from("1").is_number());
    }

    #[test]
    fn path_lookup() {
        let v = obj! {
            "used" => obj! { "frags" => obj! { "label" => "C-H_3" } },
            "list" => arr![10, 20, 30],
        };
        assert_eq!(
            v.get_path("used.frags.label").and_then(Value::as_str),
            Some("C-H_3")
        );
        assert_eq!(v.get_path("list.1").and_then(Value::as_i64), Some(20));
        assert!(v.get_path("used.missing").is_none());
        assert!(v.get_path("list.9").is_none());
    }

    #[test]
    fn flatten_nested() {
        let v = obj! {
            "e0" => -155.03,
            "frags" => obj! { "label" => "C-H_3", "fragment2" => "[H]" },
        };
        let flat = v.flatten();
        let keys: Vec<&str> = flat.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["e0", "frags.fragment2", "frags.label"]);
    }

    #[test]
    fn compare_is_total_and_numeric() {
        assert_eq!(Value::Int(2).compare(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(1).compare(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(
            Value::from("b").compare(&Value::from("a")),
            Ordering::Greater
        );
        // Mismatched kinds fall back to kind ordering, never panic.
        let _ = Value::Null.compare(&Value::from("x"));
    }

    #[test]
    fn insert_promotes_null() {
        let mut v = Value::Null;
        v.insert("a", 1);
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
    }

    #[test]
    fn clone_is_a_refcount_bump() {
        let doc = obj! {"used" => obj! {"x" => 1}, "tags" => arr!["a", "b"]};
        let copy = doc.clone();
        let (Value::Object(a), Value::Object(b)) = (&doc, &copy) else {
            panic!("objects expected");
        };
        assert!(Arc::ptr_eq(a, b));
        assert_eq!(doc, copy);
    }

    #[test]
    fn mutation_is_copy_on_write() {
        let doc = obj! {"a" => 1};
        let mut copy = doc.clone();
        copy.insert("b", 2);
        assert!(doc.get("b").is_none(), "original must not see the write");
        assert_eq!(copy.get("b").and_then(Value::as_i64), Some(2));
        assert_eq!(doc.get("a").and_then(Value::as_i64), Some(1));
    }

    #[test]
    fn interning_does_not_change_equality_or_hash() {
        let interned = Value::Str(Sym::intern("FINISHED"));
        let plain = Value::from("FINISHED");
        assert_eq!(interned, plain);
        assert_eq!(interned.stable_hash(), plain.stable_hash());
        assert_eq!(interned.compare(&plain), Ordering::Equal);
    }

    #[test]
    fn stable_hash_coerces_like_query_equality() {
        // Int/Float with equal integral value share a hash (index buckets).
        assert_eq!(Value::Int(2).stable_hash(), Value::Float(2.0).stable_hash());
        assert_ne!(Value::Int(2).stable_hash(), Value::Float(2.5).stable_hash());
        // Kind still separates otherwise-identical byte patterns.
        assert_ne!(Value::from("2").stable_hash(), Value::Int(2).stable_hash());
        assert_ne!(Value::Null.stable_hash(), Value::Bool(false).stable_hash());
        // Structural values hash by content, deterministically.
        let a = obj! {"x" => arr![1, 2.0, "s"]};
        let b = obj! {"x" => arr![1, 2, "s"]};
        assert_eq!(a.stable_hash(), b.stable_hash()); // 2.0 canonicalizes to 2
        assert_eq!(a.stable_hash(), a.stable_hash());
        // Signed zero unifies (query equality treats -0.0 == 0 == 0.0).
        assert_eq!(
            Value::Float(-0.0).stable_hash(),
            Value::Int(0).stable_hash()
        );
        // Above 2^53 the hash follows the query layer's lossy `as f64`
        // equality: values it calls equal must share a bucket.
        let big = (1i64 << 53) + 1;
        assert_eq!(
            Value::Int(big).stable_hash(),
            Value::Float((1i64 << 53) as f64).stable_hash()
        );
    }

    #[test]
    fn approx_size_monotone() {
        let small = obj! {"a" => 1};
        let big = obj! {"a" => 1, "b" => "hello world", "c" => arr![1,2,3]};
        assert!(big.approx_size() > small.approx_size());
    }
}
