//! LLM-as-a-judge (§3 Evaluation, §5.2).
//!
//! Two judge profiles (GPT and Claude) score generated queries against a
//! human-written gold standard, "emphasizing functional equivalence over
//! syntactic similarity". Mechanically the verdict comes from
//! [`provql::compare`]; on top sit the judge's disposition (GPT scores
//! systematically higher, Claude is stricter), a mild self-preference bias
//! (§5.2: "each judge appears to slightly favor its own model" despite the
//! double-blind setup), and a small keyed jitter.

use crate::model::ModelId;
use crate::rng::Key;
use dataframe::values_equal;
use provql::{compare, parse, QueryOutput};

/// The two judge identities used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JudgeId {
    /// GPT-4 as judge.
    Gpt,
    /// Claude Opus 4 as judge.
    Claude,
}

impl JudgeId {
    /// Both judges.
    pub fn all() -> [JudgeId; 2] {
        [JudgeId::Gpt, JudgeId::Claude]
    }

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            JudgeId::Gpt => "GPT",
            JudgeId::Claude => "Claude",
        }
    }

    /// The model this judge would (unknowingly) favor.
    fn own_model(self) -> ModelId {
        match self {
            JudgeId::Gpt => ModelId::Gpt,
            JudgeId::Claude => ModelId::Claude,
        }
    }
}

/// A judge's verdict on one response.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Score in `[0, 1]`.
    pub score: f64,
    /// Judge feedback notes (discrepancies found).
    pub feedback: Vec<String>,
}

/// A scoring judge.
#[derive(Debug, Clone, Copy)]
pub struct Judge {
    /// Identity.
    pub id: JudgeId,
    /// Multiplicative disposition (1.0 = faithful to the rubric).
    strictness: f64,
    /// Rubric exponent: > 1 punishes partial correctness disproportionately
    /// (the Claude judge's sterner grading of weaker outputs, which makes
    /// the judge gap widest for LLaMA 3-8B and Gemini, §5.2).
    exponent: f64,
    /// Additive bonus when judging the judge's own vendor model.
    self_bias: f64,
    /// Jitter amplitude.
    jitter: f64,
}

impl Judge {
    /// The calibrated judge for an identity.
    pub fn new(id: JudgeId) -> Judge {
        match id {
            // GPT consistently scores higher than Claude (§5.2 / Fig 6).
            JudgeId::Gpt => Judge {
                id,
                strictness: 0.972,
                exponent: 1.0,
                self_bias: 0.004,
                jitter: 0.010,
            },
            JudgeId::Claude => Judge {
                id,
                strictness: 0.91,
                exponent: 1.3,
                self_bias: 0.035,
                jitter: 0.010,
            },
        }
    }

    /// Both calibrated judges.
    pub fn panel() -> [Judge; 2] {
        [Judge::new(JudgeId::Gpt), Judge::new(JudgeId::Claude)]
    }

    /// Query-based evaluation: score `generated` against `gold`.
    ///
    /// `schema_columns` enables hallucination detection; `judged_model` is
    /// only used for the self-preference bias (the setup is double-blind —
    /// the bias models the stylistic affinity the paper observed, not
    /// knowledge of the identity); `key` seeds the jitter.
    pub fn judge_query(
        &self,
        generated: &str,
        gold: &str,
        schema_columns: Option<&[String]>,
        judged_model: ModelId,
        key: Key,
    ) -> Verdict {
        let gold_query = match parse(gold) {
            Ok(q) => q,
            Err(e) => {
                return Verdict {
                    score: 0.0,
                    feedback: vec![format!("gold query failed to parse: {e}")],
                }
            }
        };
        let base = match parse(generated) {
            Ok(gen_query) => {
                let cmp = compare(&gen_query, &gold_query, schema_columns);
                let mut feedback = cmp.notes;
                if feedback.is_empty() {
                    feedback.push("functionally equivalent to the gold query".to_string());
                }
                (cmp.score, feedback)
            }
            Err(e) => (
                0.05,
                vec![format!("generated output is not a valid query: {e}")],
            ),
        };
        let (mut score, feedback) = base;
        score = score.powf(self.exponent) * self.strictness;
        if judged_model == self.id.own_model() {
            score += self.self_bias;
        }
        score += self.jitter
            * Key::new(key.value())
                .with_str(self.id.name())
                .with_str(generated)
                .gaussian();
        Verdict {
            score: score.clamp(0.0, 1.0),
            feedback,
        }
    }

    /// Result-based evaluation: similarity of two executed outputs
    /// (the "compare result sets against ground truth" strategy of §3).
    pub fn result_similarity(a: &QueryOutput, b: &QueryOutput) -> f64 {
        match (a, b) {
            (QueryOutput::Scalar(x), QueryOutput::Scalar(y)) => {
                if values_equal(x, y) {
                    1.0
                } else {
                    match (x.as_f64(), y.as_f64()) {
                        (Some(fx), Some(fy)) => {
                            let denom = fx.abs().max(fy.abs()).max(1e-12);
                            (1.0 - ((fx - fy).abs() / denom)).clamp(0.0, 1.0)
                        }
                        _ => 0.0,
                    }
                }
            }
            _ => {
                // Token Jaccard over rendered text.
                let tok = |s: &str| -> Vec<String> {
                    s.split(|c: char| !c.is_alphanumeric() && c != '.')
                        .filter(|t| !t.is_empty())
                        .map(str::to_lowercase)
                        .collect()
                };
                let ta = tok(&a.render());
                let tb = tok(&b.render());
                if ta.is_empty() && tb.is_empty() {
                    return 1.0;
                }
                let inter = ta.iter().filter(|t| tb.contains(t)).count();
                let union = ta.len() + tb.len() - inter;
                inter as f64 / union.max(1) as f64
            }
        }
    }

    /// Hybrid evaluation (§3): weighted blend of query- and result-based
    /// scores.
    pub fn hybrid_score(&self, query_score: f64, result_score: f64) -> f64 {
        (0.6 * query_score + 0.4 * result_score).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::Value;

    const GOLD: &str = r#"df.groupby("activity_id")["duration"].mean()"#;

    fn key() -> Key {
        Key::new(77)
    }

    #[test]
    fn exact_match_scores_high() {
        for judge in Judge::panel() {
            let v = judge.judge_query(GOLD, GOLD, None, ModelId::Gemini, key());
            assert!(v.score > 0.88, "{:?} gave {}", judge.id, v.score);
        }
    }

    #[test]
    fn gpt_judge_scores_higher_than_claude() {
        let gpt = Judge::new(JudgeId::Gpt);
        let claude = Judge::new(JudgeId::Claude);
        let mut gpt_total = 0.0;
        let mut claude_total = 0.0;
        for i in 0..50 {
            let k = Key::new(i);
            gpt_total += gpt.judge_query(GOLD, GOLD, None, ModelId::Llama8B, k).score;
            claude_total += claude
                .judge_query(GOLD, GOLD, None, ModelId::Llama8B, k)
                .score;
        }
        assert!(
            gpt_total > claude_total + 1.0,
            "gpt {gpt_total} vs claude {claude_total}"
        );
    }

    #[test]
    fn self_preference_bias() {
        let claude = Judge::new(JudgeId::Claude);
        let own: f64 = (0..30)
            .map(|i| {
                claude
                    .judge_query(GOLD, GOLD, None, ModelId::Claude, Key::new(i))
                    .score
            })
            .sum();
        let other: f64 = (0..30)
            .map(|i| {
                claude
                    .judge_query(GOLD, GOLD, None, ModelId::Gpt, Key::new(i))
                    .score
            })
            .sum();
        assert!(own > other, "own {own} vs other {other}");
    }

    #[test]
    fn unparseable_generation_scores_near_zero() {
        let judge = Judge::new(JudgeId::Gpt);
        let v = judge.judge_query(
            "SELECT * FROM provenance",
            GOLD,
            None,
            ModelId::Llama8B,
            key(),
        );
        assert!(v.score < 0.1, "got {}", v.score);
        assert!(v.feedback[0].contains("not a valid query"));
    }

    #[test]
    fn hallucinated_columns_slash_score() {
        let judge = Judge::new(JudgeId::Gpt);
        let schema: Vec<String> = ["activity_id", "duration"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let good = judge
            .judge_query(GOLD, GOLD, Some(&schema), ModelId::Gpt, key())
            .score;
        let bad = judge
            .judge_query(
                r#"df.groupby("node")["runtime"].mean()"#,
                GOLD,
                Some(&schema),
                ModelId::Gpt,
                key(),
            )
            .score;
        assert!(bad < good * 0.4, "bad {bad} vs good {good}");
    }

    #[test]
    fn equivalent_form_scores_close_to_exact() {
        let judge = Judge::new(JudgeId::Gpt);
        let v = judge.judge_query(
            r#"df.sort_values("duration", ascending=False).head(3)"#,
            r#"df.nlargest(3, "duration")"#,
            None,
            ModelId::Claude,
            key(),
        );
        assert!(v.score > 0.9, "got {}", v.score);
    }

    #[test]
    fn result_similarity_scalars() {
        let a = QueryOutput::Scalar(Value::Float(98.6));
        let b = QueryOutput::Scalar(Value::Float(98.6));
        assert_eq!(Judge::result_similarity(&a, &b), 1.0);
        let c = QueryOutput::Scalar(Value::Float(49.3));
        assert!(Judge::result_similarity(&a, &c) < 0.6);
    }

    #[test]
    fn deterministic_verdicts() {
        let judge = Judge::new(JudgeId::Claude);
        let a = judge.judge_query(GOLD, GOLD, None, ModelId::Gpt, Key::new(5));
        let b = judge.judge_query(GOLD, GOLD, None, ModelId::Gpt, Key::new(5));
        assert_eq!(a, b);
    }
}
