//! Intent classification for the Tool Router (§4.2).
//!
//! "User-issued natural language queries are handled by a Tool Router,
//! which combines rule-based logic and LLM calls to determine the
//! appropriate handling strategy." The rules here decide greetings,
//! online (in-memory) vs offline (database) queries, plot requests, and
//! interactively supplied guidelines.

/// Where a user message should be routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Small talk — answer directly, no tool.
    Greeting,
    /// Online monitoring query against the in-memory context.
    MonitorQuery,
    /// Historical query against the persistent provenance database.
    HistoricalQuery,
    /// Visualization request (plot tool).
    Plot,
    /// A user-supplied query guideline to store in the session context.
    GuidelineAddition,
    /// Multi-hop causal/lineage traversal over the persistent PROV graph
    /// (the deep graph queries §5.4 calls out as beyond DataFrames).
    GraphQuery,
}

/// Classify a user message.
pub fn classify(message: &str) -> Route {
    let t = message.trim().to_lowercase();
    if t.is_empty() {
        return Route::Greeting;
    }
    let greeting_starts = ["hi", "hello", "hey", "thanks", "thank you", "good morning"];
    if greeting_starts
        .iter()
        .any(|g| t == *g || t.starts_with(&format!("{g} ")) || t.starts_with(&format!("{g}!")))
        && t.len() < 40
    {
        return Route::Greeting;
    }
    // Interactive guidelines: "use the field lr to filter learning rates",
    // "guideline: ...", "from now on ...".
    if t.starts_with("guideline:")
        || t.starts_with("use the field")
        || t.starts_with("use the column")
        || t.starts_with("from now on")
        || t.starts_with("always ")
        || t.starts_with("prefer ")
    {
        return Route::GuidelineAddition;
    }
    // Causal/lineage traversals go to the graph tool — checked before the
    // plot keywords so "lineage graph of task X" is not mistaken for a
    // chart request.
    let graphy = [
        "lineage",
        "upstream",
        "downstream",
        "derived from",
        "causal chain",
        "impact of task",
        "depends on task",
        "dependency path",
        "path between",
        "path from task",
        "trace task",
        "informed",
    ];
    if graphy.iter().any(|g| t.contains(g)) {
        return Route::GraphQuery;
    }
    if t.contains("plot") || t.contains("graph") || t.contains("chart") || t.contains("visualiz") {
        return Route::Plot;
    }
    // Historical markers send the query to the persistent database.
    let historical = [
        "yesterday",
        "last week",
        "last month",
        "previous run",
        "previous campaign",
        "past runs",
        "historical",
        "all campaigns",
        "archive",
        "ever run",
    ];
    if historical.iter().any(|h| t.contains(h)) {
        return Route::HistoricalQuery;
    }
    Route::MonitorQuery
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greetings() {
        assert_eq!(classify("Hello!"), Route::Greeting);
        assert_eq!(classify("hi"), Route::Greeting);
        assert_eq!(classify("Thanks"), Route::Greeting);
        assert_eq!(classify(""), Route::Greeting);
    }

    #[test]
    fn monitoring_default() {
        assert_eq!(
            classify("How many tasks have finished so far?"),
            Route::MonitorQuery
        );
        assert_eq!(
            classify("Which bond has the highest dissociation free energy?"),
            Route::MonitorQuery
        );
    }

    #[test]
    fn historical_markers() {
        assert_eq!(
            classify("How many DFT tasks ran in the previous campaign?"),
            Route::HistoricalQuery
        );
        assert_eq!(
            classify("Show all campaigns from last week"),
            Route::HistoricalQuery
        );
    }

    #[test]
    fn plots() {
        assert_eq!(
            classify("Plot a bar graph displaying the bond dissociation enthalpy"),
            Route::Plot
        );
        assert_eq!(classify("Can you visualize CPU usage?"), Route::Plot);
    }

    #[test]
    fn guidelines() {
        assert_eq!(
            classify("use the field lr to filter learning rates"),
            Route::GuidelineAddition
        );
        assert_eq!(
            classify("Guideline: sort durations descending by default"),
            Route::GuidelineAddition
        );
        assert_eq!(
            classify("Always report energies in kcal/mol"),
            Route::GuidelineAddition
        );
    }

    #[test]
    fn graph_traversals() {
        assert_eq!(classify("Trace the lineage of task t42"), Route::GraphQuery);
        assert_eq!(
            classify("What is the downstream impact of task t7?"),
            Route::GraphQuery
        );
        // "lineage graph" must not be mistaken for a chart request.
        assert_eq!(
            classify("Show the lineage graph of task t1"),
            Route::GraphQuery
        );
        assert_eq!(
            classify("Is there a dependency path between t1 and t9?"),
            Route::GraphQuery
        );
        // A plain bar-graph request still routes to the plot tool.
        assert_eq!(classify("Plot a bar graph of durations"), Route::Plot);
    }

    #[test]
    fn greeting_with_long_text_is_a_query() {
        assert_eq!(
            classify("hi, can you tell me the average duration per activity please?"),
            Route::MonitorQuery
        );
    }
}
