//! Natural-language → query translation.
//!
//! This is the mechanical heart of the simulated LLM: a keyword-driven
//! intent engine plus a field/literal resolver that *reads the prompt*.
//! Resolution quality degrades exactly the way the paper's ablations do:
//!
//! * no output-format instructions (zero-shot) → the "model" answers in
//!   prose, not code;
//! * no schema → field names fall back to plausible-but-wrong guesses
//!   (`node`, `cpu_usage`, `start_time` — the hallucinations §5.2 reports);
//! * no domain values → literals are guessed (`"FAILED"` instead of the
//!   actual status value `"ERROR"`);
//! * no guidelines → ambiguous conventions (which timestamp to filter,
//!   which of several CPU columns to use) are resolved by coin flip.

use crate::prompt::PromptSections;
use crate::rng::Key;
use dataframe::{col, lit, AggFunc, ArithOp, Expr};

use provql::{Query, Stage};

/// What kind of request the model understood.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntentKind {
    /// Small talk, no query needed.
    Greeting,
    /// Count rows matching a condition.
    Count,
    /// Counts per group (`value_counts`).
    CountPerGroup,
    /// Distinct values / deduplicated projection.
    Distinct,
    /// Group-by aggregation.
    GroupAgg,
    /// Group-by aggregation, then take the extreme group.
    GroupAggTop,
    /// Scalar aggregate of a column (optionally filtered).
    ScalarAgg,
    /// Top-N rows by some order.
    TopN,
    /// Row (or cell) holding an extreme value.
    ExtremeRow,
    /// Extreme value itself (no row context).
    ExtremeValue,
    /// Whole-workflow time span.
    Span,
    /// Filter + projection lookup.
    FilterSelect,
    /// Number of atoms (chemistry).
    AtomCount,
    /// Multiplicity/charge lookup (chemistry).
    SpinCharge,
    /// Plot request (handled by the plot tool; carries a data query).
    Plot,
    /// Could not understand.
    Unknown,
}

/// The outcome of translation.
#[derive(Debug, Clone, PartialEq)]
pub enum Translation {
    /// A structured query plus the recognized intent.
    Code {
        /// The generated query.
        query: Query,
        /// Recognized intent.
        intent: IntentKind,
    },
    /// Prose answer (zero-shot failure mode or greeting).
    Prose {
        /// The prose text.
        text: String,
        /// Recognized intent.
        intent: IntentKind,
    },
}

/// Field/literal resolver over the parsed prompt.
pub struct Resolver<'a> {
    sections: &'a PromptSections,
    /// Key for convention coin-flips (no-guideline ambiguity).
    key: Key,
}

/// Columns whose names are "common knowledge" (they appear in the paper's
/// own examples and in the few-shot block), guessable without a schema.
const GUESSABLE: &[&str] = &[
    "task_id",
    "status",
    "activity_id",
    "workflow_id",
    "campaign_id",
    "exponent",
    "multiplicity",
    "charge",
    "functional",
    "formula",
    "x",
    "scale",
    "y",
    "average",
];

/// Plausible-but-wrong fallback names used when the schema is absent —
/// the concrete hallucinations §5.2 attributes to weaker contexts
/// (`node`, `execution_id`-style fields).
const NAIVE: &[(&str, &str)] = &[
    ("cpu_percent_end", "cpu_usage"),
    ("gpu_percent_end", "gpu_usage"),
    ("mem_used_mb_end", "memory_usage"),
    ("hostname", "node"),
    ("started_at", "start_time"),
    ("ended_at", "end_time"),
    ("duration", "runtime"),
    ("depends_on", "parent_tasks"),
    ("bd_energy", "bond_energy"),
    ("bd_enthalpy", "enthalpy_value"),
    ("bd_free_energy", "free_energy"),
    ("bond_id", "bond"),
    ("n_atoms", "num_atoms"),
    ("molecule_label", "molecule"),
];

/// Columns whose names few-shot examples reveal even without a schema.
const FEW_SHOT_REVEALS: &[&str] = &["status", "activity_id", "duration", "started_at", "task_id"];

impl<'a> Resolver<'a> {
    /// Build a resolver for one translation.
    pub fn new(sections: &'a PromptSections, key: Key) -> Self {
        Self { sections, key }
    }

    /// Resolve a field request: `phrase` is what the user said (e.g. "cpu
    /// utilization"), `canonical` the true column. Returns the column name
    /// the model will actually use.
    pub fn field(&self, phrase: &str, canonical: &str) -> String {
        let phrase_lc = phrase.to_lowercase();
        // 1. Guideline conventions win ("For CPU usage, use the column …").
        for (gp, column) in &self.sections.guideline_mappings {
            if phrases_overlap(&phrase_lc, gp) {
                return column.clone();
            }
        }
        // 2. Schema fuzzy match.
        if self.sections.has_schema() {
            let candidates = fuzzy_candidates(&phrase_lc, &self.sections.schema_columns);
            match candidates.len() {
                0 => {}
                1 => return candidates[0].clone(),
                _ => {
                    // Ambiguous (e.g. cpu_percent_start vs cpu_percent_end):
                    // prefer the canonical if it is among them; otherwise the
                    // convention is a coin flip without guidelines.
                    if candidates.iter().any(|c| c == canonical) {
                        if self.sections.has_guidelines() {
                            return canonical.to_string();
                        }
                        let pick = self.key.with_str("ambig").with_str(canonical);
                        if pick.unit() < 0.5 {
                            return canonical.to_string();
                        }
                    }
                    return candidates[self
                        .key
                        .with_str("ambig-pick")
                        .with_str(&phrase_lc)
                        .pick(candidates.len())]
                    .clone();
                }
            }
        }
        // 3. Few-shot examples reveal some common columns.
        if self.sections.few_shot_examples > 0 && FEW_SHOT_REVEALS.contains(&canonical) {
            return canonical.to_string();
        }
        // 4. Common-knowledge names are guessed correctly…
        if GUESSABLE.contains(&canonical) {
            return canonical.to_string();
        }
        // 5. …everything else is hallucinated plausibly.
        NAIVE
            .iter()
            .find(|(c, _)| *c == canonical)
            .map(|(_, naive)| naive.to_string())
            .unwrap_or_else(|| canonical.to_string())
    }

    /// Resolve the status literal meaning "failed".
    pub fn failed_literal(&self) -> String {
        for (phrase, literal) in &self.sections.guideline_literals {
            if phrase.contains("fail") || phrase.contains("error") {
                return literal.clone();
            }
        }
        if let Some(values) = self.sections.example_values.get("status") {
            if let Some(v) = values
                .iter()
                .find(|v| v.contains("ERROR") || v.contains("FAIL"))
            {
                return v.clone();
            }
        }
        "FAILED".to_string() // plausible guess; the real value is ERROR
    }

    /// Resolve the status literal meaning "finished".
    pub fn finished_literal(&self) -> String {
        for (phrase, literal) in &self.sections.guideline_literals {
            if phrase.contains("finish") || phrase.contains("complete") {
                return literal.clone();
            }
        }
        if let Some(values) = self.sections.example_values.get("status") {
            if let Some(v) = values
                .iter()
                .find(|v| v.contains("FINISH") || v.contains("DONE"))
            {
                return v.clone();
            }
        }
        // Without values or guidelines the exact enum value is a guess.
        if self.key.with_str("finished-lit").unit() < 0.5 {
            "FINISHED".to_string()
        } else {
            "COMPLETED".to_string()
        }
    }

    /// Resolve a binary convention: guidelines pin it to the correct
    /// choice; without them it is a keyed coin flip (§5.2: guidelines
    /// "resolve ambiguity [and] enforce preferred conventions"). The flip
    /// is systematic per (model, question) — a temperature-0 model commits
    /// to its convention, it does not dither between runs.
    pub fn convention(&self, salt: &str) -> bool {
        if self.sections.has_guidelines() {
            true
        } else {
            // Without guidelines a model commits to one of several
            // plausible conventions; only sometimes the one the gold
            // standard expects.
            self.key.with_str("conv").with_str(salt).unit() < 0.2
        }
    }

    /// The duration column, behind a convention: without the guideline
    /// pinning `duration`, some generations reach for `ended_at` (a §5.2
    /// "time comparison" slip).
    pub fn duration_field(&self) -> String {
        if self.convention("duration-column") {
            self.field("duration", "duration")
        } else {
            self.field("ended", "ended_at")
        }
    }

    /// The single activity that generates `column`, when the schema's
    /// dataflow structure identifies exactly one producer. This is how the
    /// model answers "the task that computed the final average" without an
    /// explicit activity name — dataflow reasoning over the schema.
    pub fn unique_producer(&self, column: &str) -> Option<String> {
        let producers: Vec<&String> = self
            .sections
            .activity_generates
            .iter()
            .filter(|(_, gens)| gens.iter().any(|g| g == column))
            .map(|(a, _)| a)
            .collect();
        if producers.len() == 1 {
            Some(producers[0].clone())
        } else {
            None
        }
    }

    /// A question token that *is* a schema column, usable as the metric
    /// when no heuristic matched. Conservative on purpose: tokens must be
    /// ≥ 4 chars, not aggregation vocabulary, not generic filler — so
    /// "average accuracy per run" resolves `accuracy` while "average
    /// duration" keeps flowing through the duration convention.
    pub fn verbatim_metric(&self, text: &str) -> Option<String> {
        const AGG_WORDS: &[&str] = &[
            "average",
            "mean",
            "total",
            "sum",
            "count",
            "median",
            "highest",
            "largest",
            "lowest",
            "smallest",
            "maximum",
            "minimum",
            "standard",
            "deviation",
        ];
        text.split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .filter(|w| w.len() >= 4)
            .filter(|w| !AGG_WORDS.contains(w) && !is_generic_word(w) && !is_stopword(w))
            .find(|w| self.sections.schema_columns.iter().any(|c| c == w))
            .map(str::to_string)
    }

    /// A guideline mapping whose phrase overlaps the question text, if
    /// any. This is how interactively taught domain guidelines ("use the
    /// field lr to filter learning rates", §4.2) steer metrics the
    /// built-in heuristics have no rule for.
    pub fn mapped_from_text(&self, text: &str) -> Option<String> {
        self.sections
            .guideline_mappings
            .iter()
            .find(|(gp, _)| phrases_overlap(text, gp))
            .map(|(_, column)| column.clone())
    }

    /// The timestamp column used for "after/before" filters — a convention
    /// the guidelines pin to `started_at`; without them it is a coin flip
    /// with `ended_at` (a §5.2-style time-logic slip).
    pub fn time_filter_field(&self) -> String {
        for (gp, column) in &self.sections.guideline_mappings {
            if gp.contains("time") || gp.contains("start") {
                return column.clone();
            }
        }
        let started = self.field("started", "started_at");
        let ended = self.field("ended", "ended_at");
        if self.key.with_str("time-convention").unit() < 0.5 {
            started
        } else {
            ended
        }
    }
}

/// Do two lowercase phrases share a *distinctive* word? Generic filler
/// ("task", "questions", "when", …) is ignored so a guideline phrased as
/// "when a task started" only matches time-related requests, not every
/// mention of the word "task".
fn phrases_overlap(a: &str, b: &str) -> bool {
    let words = |s: &str| -> Vec<String> {
        s.split(|c: char| !c.is_alphanumeric())
            .filter(|w| w.len() >= 3 && !is_generic_word(w))
            .map(str::to_lowercase)
            .collect()
    };
    let wa = words(a);
    let wb = words(b);
    wa.iter().any(|x| wb.iter().any(|y| token_match(x, y)))
}

fn is_generic_word(w: &str) -> bool {
    matches!(
        w.to_lowercase().as_str(),
        "task"
            | "tasks"
            | "question"
            | "questions"
            | "when"
            | "about"
            | "asked"
            | "something"
            | "took"
            | "the"
            | "and"
            | "for"
            | "column"
            | "field"
            | "value"
            | "values"
            | "ranges"
            | "placement"
    )
}

/// Token similarity: exact, or prefix of length ≥ 3 (memory ~ mem).
fn token_match(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    let min = a.len().min(b.len());
    min >= 3 && (a.starts_with(&b[..min.min(b.len())]) || b.starts_with(&a[..min.min(a.len())]))
}

/// Schema columns scored by token overlap with the phrase; returns every
/// column tied at the best (non-zero) score.
fn fuzzy_candidates(phrase: &str, columns: &[String]) -> Vec<String> {
    let phrase_tokens: Vec<String> = phrase
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty() && !is_stopword(w))
        .map(str::to_lowercase)
        .collect();
    let mut best = 0usize;
    let mut scored: Vec<(usize, &String)> = Vec::new();
    for c in columns {
        let col_tokens: Vec<String> = c
            .split(|ch: char| !ch.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .map(str::to_lowercase)
            .collect();
        let score = phrase_tokens
            .iter()
            .filter(|p| col_tokens.iter().any(|t| token_match(p, t)))
            .count();
        if score > 0 {
            best = best.max(score);
            scored.push((score, c));
        }
    }
    scored
        .into_iter()
        .filter(|(s, _)| *s == best && best > 0)
        .map(|(_, c)| c.clone())
        .collect()
}

fn is_stopword(w: &str) -> bool {
    matches!(
        w,
        "the"
            | "a"
            | "an"
            | "of"
            | "in"
            | "on"
            | "at"
            | "did"
            | "do"
            | "is"
            | "was"
            | "what"
            | "which"
            | "that"
            | "this"
            | "for"
            | "with"
            | "and"
            | "or"
            | "to"
            | "use"
            | "used"
            | "by"
            | "per"
            | "each"
            | "value"
            | "values"
            | "utilization"
            | "usage"
    )
}

// ---------------------------------------------------------------------
// Slot extraction
// ---------------------------------------------------------------------

/// Slots pulled out of the user question.
#[derive(Debug, Clone, Default)]
pub struct Slots {
    /// Lowercased question.
    pub text: String,
    /// Numbers appearing in the question.
    pub numbers: Vec<f64>,
    /// Quoted strings.
    pub quoted: Vec<String>,
    /// A host-name token (word starting with a known host prefix).
    pub host: Option<String>,
    /// An activity-name token.
    pub activity: Option<String>,
    /// A schema column named verbatim in the question (e.g. a domain user
    /// asking about `melt_pool_temp_c` directly). Any model with the
    /// schema in context copies such identifiers straight through, which
    /// is what lets the agent generalize to new domains whose field names
    /// only exist in the dynamic dataflow schema.
    pub field: Option<String>,
}

impl Slots {
    /// Extract slots from the question (activity values come from the
    /// domain-value section when present).
    pub fn extract(question: &str, sections: &PromptSections) -> Slots {
        let text = question.to_lowercase();
        let mut numbers = Vec::new();
        let mut cur = String::new();
        for c in question.chars() {
            if c.is_ascii_digit() || (c == '.' && !cur.is_empty() && !cur.contains('.')) {
                cur.push(c);
            } else if !cur.is_empty() {
                if let Ok(n) = cur.trim_end_matches('.').parse::<f64>() {
                    numbers.push(n);
                }
                cur.clear();
            }
        }
        if let Ok(n) = cur.trim_end_matches('.').parse::<f64>() {
            numbers.push(n);
        }

        let mut quoted = Vec::new();
        for q in ['\'', '"'] {
            let mut parts = question.split(q);
            parts.next();
            while let (Some(inner), Some(_)) = (parts.next(), parts.next()) {
                quoted.push(inner.to_string());
            }
        }

        let words: Vec<&str> = question
            .split(|c: char| c.is_whitespace() || matches!(c, ',' | '?' | '!'))
            .filter(|w| !w.is_empty())
            .collect();
        let host = words
            .iter()
            .map(|w| w.trim_matches(|c: char| !c.is_alphanumeric()))
            .find(|w| w.to_lowercase().starts_with("frontier") || w.starts_with("node-"))
            .map(str::to_string);

        // A schema column named verbatim: copied straight from the user
        // text when the schema confirms it exists.
        let field = words
            .iter()
            .map(|w| w.trim_matches(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.')))
            .find(|w| {
                (w.contains('_') || w.contains('.'))
                    && sections.schema_columns.iter().any(|c| c == w)
            })
            .map(str::to_string);

        // Activity: a known activity value mentioned verbatim, or a
        // snake_case word, or the word before "activity"/"task(s)".
        let known: Vec<String> = sections
            .example_values
            .get("activity_id")
            .cloned()
            .unwrap_or_default();
        let mut activity = None;
        for w in &words {
            let w = w.trim_matches(|c: char| !(c.is_alphanumeric() || c == '_'));
            if known.iter().any(|k| k == w) {
                activity = Some(w.to_string());
                break;
            }
        }
        if activity.is_none() {
            // Snake_case tokens are activity candidates unless the schema
            // says they are data fields; the one right before a task/
            // activity noun wins ("… of the laser_scan tasks").
            let trimmed: Vec<String> = words
                .iter()
                .map(|w| {
                    w.trim_matches(|c: char| !(c.is_alphanumeric() || c == '_'))
                        .to_string()
                })
                .collect();
            let is_candidate = |w: &str| {
                w.contains('_')
                    && !w.starts_with("frontier")
                    && !sections.schema_columns.iter().any(|c| c == w)
            };
            activity = trimmed
                .iter()
                .enumerate()
                .find(|(i, w)| {
                    is_candidate(w)
                        && matches!(
                            trimmed.get(i + 1).map(String::as_str),
                            Some("task" | "tasks" | "activity" | "activities")
                        )
                })
                .map(|(_, w)| w.clone())
                .or_else(|| trimmed.iter().find(|w| is_candidate(w)).cloned());
        }
        if activity.is_none() {
            for (i, w) in words.iter().enumerate() {
                let w = w.trim_end_matches(['?', '.', ',']);
                if matches!(w, "activity" | "task" | "tasks") && i > 0 {
                    let prev = words[i - 1]
                        .trim_matches(|c: char| !(c.is_alphanumeric() || c == '_'))
                        .to_lowercase();
                    // "the power activity" / "the power tasks": the word
                    // before the noun names the activity unless it is
                    // grammatical filler.
                    if !matches!(
                        prev.as_str(),
                        "the"
                            | "a"
                            | "any"
                            | "each"
                            | "which"
                            | "that"
                            | "slowest"
                            | "fastest"
                            | "many"
                            | "other"
                            | "all"
                            | "recent"
                            | "running"
                            | "failed"
                            | "finished"
                            | "this"
                            | "these"
                            | "those"
                            | "per"
                            | "their"
                            | "its"
                            | "and"
                            | "or"
                            | "of"
                    ) && !prev.is_empty()
                    {
                        // Snap to a known activity value when the mention is
                        // partial ("dft tasks" → run_dft), as a model with
                        // domain values in context would.
                        activity = Some(
                            known
                                .iter()
                                .find(|k| k.to_lowercase().contains(&prev))
                                .cloned()
                                .unwrap_or(prev),
                        );
                        break;
                    }
                }
            }
        }

        Slots {
            text,
            numbers,
            quoted,
            host,
            activity,
            field,
        }
    }

    /// True when the question mentions any of the given words.
    pub fn mentions(&self, words: &[&str]) -> bool {
        words.iter().any(|w| self.text.contains(w))
    }
}

// ---------------------------------------------------------------------
// Translation
// ---------------------------------------------------------------------

/// Translate a user question into a query, reading the prompt sections.
pub fn translate(question: &str, sections: &PromptSections, key: Key) -> Translation {
    let slots = Slots::extract(question, sections);
    let r = Resolver::new(sections, key);

    // Greetings never need a query.
    if is_greeting(&slots.text) {
        return Translation::Prose {
            text: "Hello! Ask me anything about your running workflow's provenance.".to_string(),
            intent: IntentKind::Greeting,
        };
    }

    // Zero-shot: without output-format instructions the model explains in
    // prose instead of emitting code (the paper's all-models-fail config).
    if !sections.has_output_format {
        return Translation::Prose {
            text: format!(
                "To answer \"{question}\" you could inspect the provenance records \
                 and filter the relevant tasks, then aggregate the field of interest."
            ),
            intent: IntentKind::Unknown,
        };
    }

    let (query, intent) = build_query(&slots, &r, sections);
    Translation::Code { query, intent }
}

fn is_greeting(text: &str) -> bool {
    let t = text.trim().trim_end_matches(['!', '.', '?']);
    matches!(
        t,
        "hi" | "hello" | "hey" | "thanks" | "thank you" | "good morning"
    ) || (t.starts_with("hello") && t.len() < 20)
        || (t.starts_with("hi ") && t.len() < 15)
}

/// The ordered intent rules.
fn build_query(slots: &Slots, r: &Resolver, _sections: &PromptSections) -> (Query, IntentKind) {
    let t = &slots.text;
    let plot = slots.mentions(&["plot", "graph", "chart", "visualize"]);

    // ---- chemistry-specific intents (checked early: specific wording) ----
    if slots.mentions(&["atoms"]) {
        let n_atoms = r.field("number of atoms", "n_atoms");
        let label = r.field("molecule", "molecule_label");
        if slots.mentions(&["parent"]) {
            let q = Query::pipeline(vec![
                Stage::Filter(col(label).eq(lit("parent"))),
                Stage::Select(vec![n_atoms]),
                Stage::DropDuplicates(vec![]),
            ]);
            return (q, IntentKind::AtomCount);
        }
        let q = Query::pipeline(vec![
            Stage::Select(vec![label, n_atoms]),
            Stage::DropDuplicates(vec![]),
        ]);
        return (q, IntentKind::AtomCount);
    }
    if slots.mentions(&["multiplicity", "charge"]) {
        let label = r.field("molecule", "molecule_label");
        let mult = r.field("multiplicity", "multiplicity");
        let charge = r.field("charge", "charge");
        let mut stages = Vec::new();
        if slots.mentions(&["parent"]) {
            stages.push(Stage::Filter(col(label).eq(lit("parent"))));
        } else if slots.mentions(&["fragment"]) {
            stages.push(Stage::Filter(col(label).contains("fragment")));
        }
        // Only rows that actually carry the electronic-state fields
        // (structure-creation steps share the molecule label but not the
        // computed properties).
        stages.push(Stage::Filter(col(mult.clone()).not_null()));
        stages.push(Stage::Select(vec![mult, charge]));
        stages.push(Stage::DropDuplicates(vec![]));
        if slots.mentions(&["any"]) {
            stages.push(Stage::Head(1));
        }
        return (Query::pipeline(stages), IntentKind::SpinCharge);
    }
    if slots.mentions(&["functional", "basis set"]) {
        let label = r.field("molecule", "molecule_label");
        let functional = r.field("functional", "functional");
        let q = Query::pipeline(vec![Stage::Select(vec![label, functional])]);
        return (q, IntentKind::FilterSelect);
    }

    // ---- span ----
    if slots.mentions(&["time span", "total span", "span of the workflow"])
        || (slots.mentions(&["how long"]) && slots.mentions(&["workflow"]))
    {
        let ended = r.field("ended", "ended_at");
        let started = r.field("started", "started_at");
        let q = Query::Binary(
            Box::new(Query::pipeline(vec![
                Stage::Col(ended),
                Stage::Agg(AggFunc::Max),
            ])),
            ArithOp::Sub,
            Box::new(Query::pipeline(vec![
                Stage::Col(started),
                Stage::Agg(AggFunc::Min),
            ])),
        );
        return (q, IntentKind::Span);
    }

    // ---- counts ----
    if slots.mentions(&["how many"]) && slots.mentions(&["each", "per "]) {
        let group = group_field(slots, r);
        let q = Query::pipeline(vec![Stage::Col(group), Stage::ValueCounts]);
        return (q, IntentKind::CountPerGroup);
    }
    if slots.mentions(&["how many", "did any", "number of tasks", "count of"]) {
        let mut filter = base_filter(slots, r);
        if slots.mentions(&["consumed", "depend", "inputs produced", "outputs of other"]) {
            let dep = r.field("depends on", "depends_on");
            filter = Some(match filter {
                Some(f) => f.and(col(dep).not_null()),
                None => col(dep).not_null(),
            });
        }
        let stages = match filter {
            Some(f) => vec![Stage::Filter(f)],
            None => Vec::new(),
        };
        // Counting convention: wrap in len(...) so a number comes back;
        // without guidelines some generations return the row listing.
        let q = if r.convention("count-wrap") {
            Query::Len(Box::new(Query::pipeline(stages)))
        } else {
            Query::pipeline(stages)
        };
        return (q, IntentKind::Count);
    }

    // ---- distinct ----
    if slots.mentions(&["distinct", "unique", "list the"]) {
        let mut fields = Vec::new();
        if slots.mentions(&["activities", "activity", "steps"]) {
            fields.push(r.field("activity", "activity_id"));
        }
        if slots.mentions(&["host", "node", "machine"]) {
            fields.push(r.field("host", "hostname"));
        }
        if fields.is_empty() {
            fields.push(r.field("activity", "activity_id"));
        }
        let q = if fields.len() == 1 {
            Query::pipeline(vec![Stage::Col(fields.pop().expect("one")), Stage::Unique])
        } else {
            Query::pipeline(vec![Stage::Select(fields), Stage::DropDuplicates(vec![])])
        };
        return (q, IntentKind::Distinct);
    }

    // ---- group aggregations ----
    let agg_word = agg_from_text(t);
    let grouped = slots.mentions(&[
        "per ",
        "for each",
        "by activity",
        "by host",
        "across activities",
        "each bond",
        "per bond",
        "for each bond",
    ]);
    if let (Some(agg), true) = (agg_word, grouped) {
        let group = group_field(slots, r);
        let value = value_field(slots, r);
        // Aggregation-scope convention: "group by the column that names
        // the category in the question". Without that guideline some
        // generations aggregate the whole column and lose the grouping.
        let stages = if r.convention("group-agg-scope") {
            vec![
                Stage::GroupBy(vec![group]),
                Stage::Col(value),
                Stage::Agg(agg),
            ]
        } else {
            vec![Stage::Col(value), Stage::Agg(agg)]
        };
        let intent = if plot {
            IntentKind::Plot
        } else {
            IntentKind::GroupAgg
        };
        return (Query::Pipeline(provql::Pipeline { stages }), intent);
    }
    // "Which activity has the highest mean CPU…" / "Which workflow run had
    // the highest total duration?"
    if slots.mentions(&["which", "what"])
        && slots.mentions(&["highest", "largest", "most", "lowest", "least"])
        && (slots.mentions(&["mean", "average", "total"])
            && slots.mentions(&["activity", "workflow run", "host", "each"]))
    {
        let group = group_field(slots, r);
        let value = value_field(slots, r);
        let agg = agg_from_text(t).unwrap_or(AggFunc::Mean);
        let desc = !slots.mentions(&["lowest", "least", "smallest"]);
        // Sort-direction convention ("sort descending when asked for the
        // highest") — a coin flip without guidelines.
        let desc = if r.convention("sort-direction") {
            desc
        } else {
            !desc
        };
        let q = Query::pipeline(vec![
            Stage::GroupBy(vec![group]),
            Stage::Col(value.clone()),
            Stage::Agg(agg),
            Stage::ResetIndex,
            Stage::SortValues(vec![(value, desc)]),
            Stage::Head(1),
        ]);
        // sort descending when looking for the highest
        let q = match q {
            Query::Pipeline(mut p) => {
                if let Some(Stage::SortValues(keys)) = p
                    .stages
                    .iter_mut()
                    .find(|s| matches!(s, Stage::SortValues(_)))
                {
                    keys[0].1 = !desc;
                }
                Query::Pipeline(p)
            }
            other => other,
        };
        return (q, IntentKind::GroupAggTop);
    }

    // ---- top-N by speed ----
    if slots.mentions(&["slowest", "fastest", "longest", "quickest"]) {
        let n = slots
            .numbers
            .first()
            .map(|&x| x as usize)
            .filter(|&x| x > 0 && x < 1000)
            .unwrap_or(1);
        let dur = r.duration_field();
        let desc = !slots.mentions(&["fastest", "quickest"]);
        let desc = if r.convention("sort-direction") {
            desc
        } else {
            !desc
        };
        let mut proj = vec![r.field("task", "task_id")];
        if slots.mentions(&["activity", "activities"]) {
            proj.push(r.field("activity", "activity_id"));
        }
        if slots.mentions(&["host", "node"]) {
            proj.push(r.field("host", "hostname"));
        }
        proj.push(dur.clone());
        let q = Query::pipeline(vec![
            Stage::SortValues(vec![(dur, !desc)]),
            Stage::Select(proj),
            Stage::Head(n),
        ]);
        return (q, IntentKind::TopN);
    }

    // ---- "started after T" ----
    if slots.mentions(&["started after", "after time", "began after"]) {
        let field = r.time_filter_field();
        let threshold = slots.numbers.first().copied().unwrap_or(0.0);
        let mut stages = vec![Stage::Filter(col(field).gt(lit(threshold)))];
        let mut proj = vec![r.field("task", "task_id")];
        if slots.mentions(&["output y", " y "]) {
            proj.push(r.field("output y", "y"));
        }
        stages.push(Stage::Select(proj));
        return (Query::pipeline(stages), IntentKind::FilterSelect);
    }

    // ---- extremes ----
    let wants_max = slots.mentions(&["highest", "largest", "maximum", "most ", "biggest"]);
    let wants_min = slots.mentions(&["lowest", "smallest", "minimum", "least "]);
    if wants_max || wants_min {
        let target = value_field(slots, r);
        // Scalar aggregate with a filter (e.g. Q9 handled below) or a
        // row/cell retrieval.
        let cell = extreme_cell(slots, r);
        if slots.mentions(&["what is the", "what was the"]) && cell.is_none() {
            // "What is the lowest energy bond enthalpy?" → bare value (the
            // Q3 behavior: correct number, missing bond id).
            let q = Query::pipeline(vec![
                Stage::Col(target),
                Stage::Agg(if wants_max {
                    AggFunc::Max
                } else {
                    AggFunc::Min
                }),
            ]);
            return (q, IntentKind::ExtremeValue);
        }
        // Single-answer convention: retrieve exactly the extreme row;
        // without guidelines some generations dump a sorted table instead.
        let q = if r.convention("single-row") {
            Query::pipeline(vec![Stage::LocIdx {
                column: target,
                max: wants_max,
                cell,
            }])
        } else {
            Query::pipeline(vec![
                Stage::SortValues(vec![(target, !wants_max)]),
                Stage::Head(5),
            ])
        };
        return (q, IntentKind::ExtremeRow);
    }

    // ---- scalar aggregate with optional filter ----
    if let Some(agg) = agg_word {
        let value = value_field(slots, r);
        let mut stages = Vec::new();
        if let Some(f) = base_filter(slots, r) {
            stages.push(Stage::Filter(f));
        } else if let Some(q) = slots.quoted.first() {
            // "bond labels that contain 'C-H'"
            let bond = r.field("bond label", "bond_id");
            stages.push(Stage::Filter(col(bond).contains(q.clone())));
        }
        stages.push(Stage::Col(value));
        stages.push(Stage::Agg(agg));
        let intent = if plot {
            IntentKind::Plot
        } else {
            IntentKind::ScalarAgg
        };
        return (Query::pipeline(stages), intent);
    }

    // ---- plot without an explicit aggregation: one bar per label ----
    if plot {
        let group = group_field(slots, r);
        let value = value_field(slots, r);
        let q = Query::pipeline(vec![
            Stage::Filter(col(value.clone()).not_null()),
            Stage::GroupBy(vec![group]),
            Stage::Col(value),
            Stage::Agg(AggFunc::Mean),
        ]);
        return (q, IntentKind::Plot);
    }

    // ---- fallback: filter + projection ----
    let mut stages = Vec::new();
    let mut filter = base_filter(slots, r);
    let proj_fields = projection_fields(slots, r);
    if filter.is_none() {
        // Dataflow reasoning over the schema structure: a projected field
        // with a unique producing activity pins the filter ("the task that
        // computed the final average" → average_results).
        for f in &proj_fields {
            if let Some(act) = r.unique_producer(f) {
                filter = Some(col(r.field("activity", "activity_id")).eq(lit(act.as_str())));
                break;
            }
        }
    }
    if let Some(f) = filter {
        stages.push(Stage::Filter(f));
    }
    let mut proj = vec![r.field("task", "task_id")];
    for col_name in proj_fields {
        if !proj.contains(&col_name) {
            proj.push(col_name);
        }
    }
    let intent = if proj.len() > 1 {
        IntentKind::FilterSelect
    } else {
        IntentKind::Unknown
    };
    stages.push(Stage::Select(proj));
    (Query::pipeline(stages), intent)
}

/// Aggregation hinted by the text. Word-boundary aware: "average" inside
/// an identifier (`average_results`) or a field reference ("the final
/// average value") is *data*, not an aggregation request.
fn agg_from_text(t: &str) -> Option<AggFunc> {
    // Mask identifier-embedded occurrences.
    let masked = t.replace("average_results", "avgresults");
    let is_field_ref = masked.contains("average value") || masked.contains("final average");
    if !is_field_ref
        && (masked.contains("average ") || masked.contains("averaged") || masked.contains("mean "))
    {
        Some(AggFunc::Mean)
    } else if masked.contains("median") {
        Some(AggFunc::Median)
    } else if masked.contains("total ") || masked.contains("sum of") {
        Some(AggFunc::Sum)
    } else if masked.contains("standard deviation") {
        Some(AggFunc::Std)
    } else {
        None
    }
}

/// The grouping column implied by the question.
fn group_field(slots: &Slots, r: &Resolver) -> String {
    let t = &slots.text;
    if t.contains("bond") {
        r.field("bond label", "bond_id")
    } else if t.contains("workflow run") || t.contains("per workflow") {
        r.field("workflow run", "workflow_id")
    } else if t.contains("host") || t.contains("node") || t.contains("machine") {
        r.field("host", "hostname")
    } else {
        r.field("activity", "activity_id")
    }
}

/// The value column the question aggregates or ranks by.
fn value_field(slots: &Slots, r: &Resolver) -> String {
    let t = &slots.text;
    // A verbatim schema column in the question beats every heuristic: the
    // model just copies the identifier the user wrote.
    if let Some(f) = &slots.field {
        return f.clone();
    }
    if t.contains("free energy") {
        r.field("dissociation free energy", "bd_free_energy")
    } else if t.contains("enthalpy") {
        r.field("bond dissociation enthalpy", "bd_enthalpy")
    } else if t.contains("dissociation energy") || t.contains("bond energy") {
        r.field("bond dissociation energy", "bd_energy")
    } else if t.contains("cpu") {
        r.field("cpu", "cpu_percent_end")
    } else if t.contains("gpu") {
        r.field("gpu", "gpu_percent_end")
    } else if t.contains("memory") {
        r.field("memory", "mem_used_mb_end")
    } else if t.contains("output y") || t.contains(" y ") || t.ends_with(" y?") {
        r.field("output y", "y")
    } else if t.contains("average value") || t.contains("final average") {
        r.field("average result", "average")
    } else if t.contains("exponent") {
        r.field("exponent", "exponent")
    } else if t.contains("duration") || t.contains("how long") || t.contains("take") {
        r.duration_field()
    } else if let Some(col) = r.verbatim_metric(t) {
        // The question names a schema column outright (e.g. "accuracy").
        col
    } else if let Some(col) = r.mapped_from_text(t) {
        // No built-in heuristic fits, but a (possibly user-taught)
        // guideline maps the wording to a column — §4.2's interactive
        // domain guidelines.
        col
    } else {
        r.duration_field()
    }
}

/// The cell to return from an extreme-row query ("on which host…" → host).
fn extreme_cell(slots: &Slots, r: &Resolver) -> Option<String> {
    let t = &slots.text;
    if t.contains("on which host") || t.contains("which node") || t.contains("which machine") {
        Some(r.field("host", "hostname"))
    } else if t.contains("which bond") {
        Some(r.field("bond label", "bond_id"))
    } else if t.contains("which activity") {
        Some(r.field("activity", "activity_id"))
    } else {
        None
    }
}

/// Row filter from host / activity / status mentions.
fn base_filter(slots: &Slots, r: &Resolver) -> Option<Expr> {
    let mut filter: Option<Expr> = None;
    let mut push = |e: Expr| {
        filter = Some(match filter.take() {
            Some(f) => f.and(e),
            None => e,
        });
    };
    if let Some(host) = &slots.host {
        // Hostname matching convention: partial names need str.contains
        // because hostnames are fully qualified; equality silently matches
        // nothing without guidelines pinning the convention.
        let host_col = col(r.field("host", "hostname"));
        if r.convention("host-contains") {
            push(host_col.contains(host.clone()));
        } else {
            push(host_col.eq(lit(host.as_str())));
        }
    }
    if let Some(act) = &slots.activity {
        push(col(r.field("activity", "activity_id")).eq(lit(act.as_str())));
    }
    if slots.mentions(&["failed", "errors", "error"]) {
        push(col(r.field("status", "status")).eq(lit(r.failed_literal())));
    } else if slots.mentions(&["finished", "completed"]) {
        push(col(r.field("status", "status")).eq(lit(r.finished_literal())));
    }
    filter
}

/// Columns the question asks to see.
fn projection_fields(slots: &Slots, r: &Resolver) -> Vec<String> {
    let t = &slots.text;
    let mut out = Vec::new();
    let mut add = |c: String| {
        if !out.contains(&c) {
            out.push(c);
        }
    };
    if t.contains("activity") || t.contains("activities") {
        add(r.field("activity", "activity_id"));
    }
    if t.contains("cpu") {
        add(r.field("cpu", "cpu_percent_end"));
    }
    if t.contains("memory") {
        add(r.field("memory", "mem_used_mb_end"));
    }
    if t.contains("gpu") {
        add(r.field("gpu", "gpu_percent_end"));
    }
    if t.contains("duration") || t.contains("how long") || t.contains("take") {
        add(r.field("duration", "duration"));
    }
    if t.contains("exponent") {
        add(r.field("exponent", "exponent"));
    }
    if t.contains("output y") || t.contains(" y ") {
        add(r.field("output y", "y"));
    }
    if t.contains("average value") || t.contains("final average") {
        add(r.field("average result", "average"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::markers;
    use provql::render;

    /// A full-context prompt over the synthetic workflow's columns.
    fn full_prompt() -> PromptSections {
        let text = format!(
            "{role}\nYou are a workflow provenance specialist.\n\
             {job}\nTranslate the question into a query.\n\
             {df}\nEach row is one task execution.\n\
             {fmt}\nReturn a single pandas expression.\n\
             {fs}\nQ: How many tasks failed?\nA: len(df[df[\"status\"] == \"ERROR\"])\n\
             {schema}\n- task_id (str): id\n- activity_id (str): step\n- workflow_id (str): wf\n\
             - status (str): status\n- started_at (float): start\n- ended_at (float): end\n\
             - duration (float): seconds\n- hostname (str): node\n- cpu_percent_start (float): cpu\n\
             - cpu_percent_end (float): cpu\n- gpu_percent_end (float): gpu\n- mem_used_mb_end (float): mem\n\
             - depends_on (list): lineage\n- x (float): input\n- y (float): output\n- average (float): final\n\
             - exponent (float): power arg\n\
             {values}\n- status: FINISHED | ERROR\n- activity_id: power | average_results | scale_and_shift\n\
             {guide}\n- For time ranges, use the column started_at.\n\
             - For CPU usage, use the column cpu_percent_end.\n\
             - For failed, use the value ERROR.\n\
             - For memory, use the column mem_used_mb_end.\n",
            role = markers::ROLE,
            job = markers::JOB,
            df = markers::DATAFRAME,
            fmt = markers::OUTPUT_FORMAT,
            fs = markers::FEW_SHOT,
            schema = markers::SCHEMA,
            values = markers::VALUES,
            guide = markers::GUIDELINES,
        );
        PromptSections::parse(&text)
    }

    fn code(nl: &str, sections: &PromptSections) -> String {
        match translate(nl, sections, Key::new(1)) {
            Translation::Code { query, .. } => render(&query),
            Translation::Prose { text, .. } => panic!("expected code, got prose: {text}"),
        }
    }

    /// An additive-manufacturing prompt the engine has no special-cased
    /// wording for: generalization must come from the schema alone.
    fn am_prompt() -> PromptSections {
        let text = format!(
            "{role}\nYou are a workflow provenance specialist.\n\
             {job}\nTranslate the question into a query.\n\
             {df}\nEach row is one task execution.\n\
             {fmt}\nReturn a single pandas expression.\n\
             {fs}\nQ: How many tasks failed?\nA: len(df[df[\"status\"] == \"ERROR\"])\n\
             {schema}\n- task_id (str): id\n- activity_id (str): step\n- status (str): status\n\
             - duration (float): seconds\n- hostname (str): node\n\
             - melt_pool_temp_c (float): melt pool peak temperature\n\
             - melt_pool_width_um (float): melt pool width\n\
             - energy_density_j_mm3 (float): volumetric energy density\n\
             - porosity_pct (float): part porosity\n- layer (int): build layer\n\
             {values}\n- status: FINISHED | ERROR\n- activity_id: laser_scan | generate_hatch | qualify_part\n\
             {guide}\n- For time ranges, use the column started_at.\n",
            role = markers::ROLE,
            job = markers::JOB,
            df = markers::DATAFRAME,
            fmt = markers::OUTPUT_FORMAT,
            fs = markers::FEW_SHOT,
            schema = markers::SCHEMA,
            values = markers::VALUES,
            guide = markers::GUIDELINES,
        );
        PromptSections::parse(&text)
    }

    #[test]
    fn verbatim_fields_generalize_to_new_domains() {
        let p = am_prompt();
        // The field is copied verbatim from the question; the activity
        // comes from the "… of the <activity> tasks" position.
        assert_eq!(
            code(
                "What is the average energy_density_j_mm3 of the laser_scan tasks?",
                &p
            ),
            r#"df[df["activity_id"] == "laser_scan"]["energy_density_j_mm3"].mean()"#
        );
        assert_eq!(
            code("Which task produced the largest melt_pool_temp_c?", &p),
            r#"df.loc[df["melt_pool_temp_c"].idxmax()]"#
        );
        assert_eq!(
            code("What is the average melt_pool_width_um per activity?", &p),
            r#"df.groupby("activity_id")["melt_pool_width_um"].mean()"#
        );
    }

    #[test]
    fn field_slot_requires_schema_presence() {
        // Without the schema section the identifier cannot be confirmed,
        // so the old fallback heuristics (and their failure modes) apply.
        let bare = PromptSections::parse(&format!(
            "{}\nrole\n{}\njob\n{}\ndf\n{}\nReturn a query.\n",
            markers::ROLE,
            markers::JOB,
            markers::DATAFRAME,
            markers::OUTPUT_FORMAT
        ));
        let slots = Slots::extract("average melt_pool_temp_c per activity", &bare);
        assert_eq!(slots.field, None);
        let p = am_prompt();
        let slots = Slots::extract("average melt_pool_temp_c per activity", &p);
        assert_eq!(slots.field.as_deref(), Some("melt_pool_temp_c"));
    }

    #[test]
    fn activity_slot_prefers_token_before_task_noun() {
        let p = am_prompt();
        // Two snake_case tokens: the schema field must not shadow the
        // activity in the "<activity> tasks" position.
        let slots = Slots::extract(
            "What is the average energy_density_j_mm3 of the laser_scan tasks?",
            &p,
        );
        assert_eq!(slots.activity.as_deref(), Some("laser_scan"));
        assert_eq!(slots.field.as_deref(), Some("energy_density_j_mm3"));
    }

    #[test]
    fn taught_guideline_maps_unknown_metric() {
        // §4.2's running example: "use the field lr to filter learning
        // rates", rendered into the machine-readable convention.
        let text = format!(
            "{role}\nrole\n{job}\njob\n{df}\ndf\n{fmt}\nReturn a query.\n\
             {fs}\nQ: How many tasks failed?\nA: len(df[df[\"status\"] == \"ERROR\"])\n\
             {schema}\n- task_id (str): id\n- activity_id (str): step\n- duration (float): s\n\
             - lr (float): learning rate\n- loss (float): loss\n\
             {guide}\n- For learning rates, use the column lr.\n",
            role = markers::ROLE,
            job = markers::JOB,
            df = markers::DATAFRAME,
            fmt = markers::OUTPUT_FORMAT,
            fs = markers::FEW_SHOT,
            schema = markers::SCHEMA,
            guide = markers::GUIDELINES,
        );
        let p = PromptSections::parse(&text);
        assert_eq!(
            code("What is the average learning rate per activity?", &p),
            r#"df.groupby("activity_id")["lr"].mean()"#
        );
        // Without the taught mapping the model falls back to a duration
        // aggregate — the pre-teaching ambiguity the paper describes.
        let untaught =
            PromptSections::parse(&text.replace("- For learning rates, use the column lr.\n", ""));
        let c = code("What is the average learning rate per activity?", &untaught);
        assert!(!c.contains("\"lr\""), "{c}");
    }

    #[test]
    fn verbatim_metric_without_underscores() {
        // "accuracy" is a plain-word schema column (the MLflow adapter
        // emits it); the resolver must pick it while leaving aggregation
        // vocabulary ("average") and handled metrics ("duration") alone.
        let text = format!(
            "{role}\nrole\n{job}\njob\n{df}\ndf\n{fmt}\nReturn a query.\n\
             {fs}\nQ: How many tasks failed?\nA: len(df[df[\"status\"] == \"ERROR\"])\n\
             {schema}\n- task_id (str): id\n- activity_id (str): step\n- duration (float): s\n\
             - accuracy (float): model accuracy\n- average (float): final value\n\
             {guide}\n- For task duration, use the column duration.\n",
            role = markers::ROLE,
            job = markers::JOB,
            df = markers::DATAFRAME,
            fmt = markers::OUTPUT_FORMAT,
            fs = markers::FEW_SHOT,
            schema = markers::SCHEMA,
            guide = markers::GUIDELINES,
        );
        let p = PromptSections::parse(&text);
        assert_eq!(
            code("What is the average accuracy per activity?", &p),
            r#"df.groupby("activity_id")["accuracy"].mean()"#
        );
        // "average duration" still resolves through the duration path, not
        // the `average` column.
        let c = code("What is the average duration per activity?", &p);
        assert!(c.contains("\"duration\""), "{c}");
    }

    #[test]
    fn count_finished() {
        let p = full_prompt();
        assert_eq!(
            code("How many tasks have finished so far?", &p),
            r#"len(df[df["status"] == "FINISHED"])"#
        );
    }

    #[test]
    fn count_failed_uses_error_literal_with_context() {
        let p = full_prompt();
        assert_eq!(
            code("How many tasks failed?", &p),
            r#"len(df[df["status"] == "ERROR"])"#
        );
    }

    #[test]
    fn failed_literal_guessed_wrong_without_values() {
        let bare = PromptSections::parse(&format!(
            "{}\nrole\n{}\njob\n{}\ndf\n{}\nReturn a query.\n",
            markers::ROLE,
            markers::JOB,
            markers::DATAFRAME,
            markers::OUTPUT_FORMAT
        ));
        let text = code("How many tasks failed?", &bare);
        assert!(text.contains("FAILED"), "got {text}");
    }

    #[test]
    fn groupby_mean_duration() {
        let p = full_prompt();
        assert_eq!(
            code("What is the average duration per activity?", &p),
            r#"df.groupby("activity_id")["duration"].mean()"#
        );
    }

    #[test]
    fn value_counts_per_host() {
        let p = full_prompt();
        assert_eq!(
            code("How many tasks ran on each host?", &p),
            r#"df["hostname"].value_counts()"#
        );
    }

    #[test]
    fn span_query() {
        let p = full_prompt();
        assert_eq!(
            code("What is the total time span of the workflow execution?", &p),
            r#"df["ended_at"].max() - df["started_at"].min()"#
        );
    }

    #[test]
    fn extreme_row_with_cell() {
        let p = full_prompt();
        assert_eq!(
            code(
                "On which host did the task with the highest GPU utilization run?",
                &p
            ),
            r#"df.loc[df["gpu_percent_end"].idxmax(), "hostname"]"#
        );
    }

    #[test]
    fn topn_slowest() {
        let p = full_prompt();
        let c = code("Show the 3 slowest tasks with their activity and host.", &p);
        assert!(
            c.contains(r#"sort_values("duration", ascending=False)"#),
            "{c}"
        );
        assert!(c.contains(".head(3)"), "{c}");
    }

    #[test]
    fn filter_by_activity() {
        let p = full_prompt();
        let c = code("What exponent did the power activity use?", &p);
        assert!(c.contains(r#"df["activity_id"] == "power""#), "{c}");
        assert!(c.contains("exponent"), "{c}");
    }

    #[test]
    fn host_filter_contains() {
        let p = full_prompt();
        let c = code(
            "Show the tasks that ran on host frontier00082 with their activity and duration.",
            &p,
        );
        assert!(c.contains(r#".str.contains("frontier00082")"#), "{c}");
    }

    #[test]
    fn started_after_uses_guideline_convention() {
        let p = full_prompt();
        let c = code(
            "Which tasks started after time 1753457859 and what output y did they produce?",
            &p,
        );
        assert!(c.contains(r#"df["started_at"] > 1753457859"#), "{c}");
        assert!(c.contains(r#""y""#), "{c}");
    }

    #[test]
    fn zero_shot_yields_prose() {
        let empty = PromptSections::parse("");
        match translate("How many tasks failed?", &empty, Key::new(1)) {
            Translation::Prose { intent, .. } => assert_eq!(intent, IntentKind::Unknown),
            other => panic!("expected prose, got {other:?}"),
        }
    }

    #[test]
    fn greeting_detected() {
        let p = full_prompt();
        match translate("Hello!", &p, Key::new(1)) {
            Translation::Prose { intent, .. } => assert_eq!(intent, IntentKind::Greeting),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hallucinates_node_without_schema() {
        let bare = PromptSections::parse(&format!(
            "{}\nrole\n{}\njob\n{}\ndf\n{}\nReturn a query.\n",
            markers::ROLE,
            markers::JOB,
            markers::DATAFRAME,
            markers::OUTPUT_FORMAT
        ));
        let c = code("How many tasks ran on each host?", &bare);
        assert!(c.contains("node"), "expected hallucinated field, got {c}");
    }

    #[test]
    fn chem_q1_highest_free_energy() {
        let chem = chem_prompt();
        assert_eq!(
            code(
                "Which bond has the highest dissociation free energy?",
                &chem
            ),
            r#"df.loc[df["bd_free_energy"].idxmax(), "bond_id"]"#
        );
    }

    #[test]
    fn chem_q3_bare_value() {
        let chem = chem_prompt();
        assert_eq!(
            code("What is the lowest energy bond enthalpy?", &chem),
            r#"df["bd_enthalpy"].min()"#
        );
    }

    #[test]
    fn chem_q9_contains_filter() {
        let chem = chem_prompt();
        assert_eq!(
            code(
                "What is the average bond dissociation enthalpy for the bond labels that contain 'C-H'?",
                &chem
            ),
            r#"df[df["bond_id"].str.contains("C-H")]["bd_enthalpy"].mean()"#
        );
    }

    #[test]
    fn chem_q6_parent_spin_charge() {
        let chem = chem_prompt();
        let c = code("What are the multiplicity and charge of the parent?", &chem);
        assert!(c.contains(r#"df["molecule_label"] == "parent""#), "{c}");
        assert!(c.contains("multiplicity") && c.contains("charge"), "{c}");
    }

    fn chem_prompt() -> PromptSections {
        let text = format!(
            "{role}\nrole\n{job}\njob\n{df}\ndf\n{fmt}\nReturn a single pandas expression.\n\
             {fs}\nQ: How many tasks failed?\nA: len(df[df[\"status\"] == \"ERROR\"])\n\
             {schema}\n- task_id (str): id\n- activity_id (str): step\n- bond_id (str): bond label\n\
             - bd_energy (float): dissociation energy\n- bd_enthalpy (float): dissociation enthalpy\n\
             - bd_free_energy (float): dissociation free energy\n- molecule_label (str): which molecule\n\
             - n_atoms (int): atom count\n- multiplicity (int): spin\n- charge (int): net charge\n\
             - functional (str): DFT functional\n- e0 (float): electronic energy\n\
             {values}\n- molecule_label: parent | C-H_1:fragment1\n- functional: B3LYP\n\
             {guide}\n- For time ranges, use the column started_at.\n",
            role = markers::ROLE,
            job = markers::JOB,
            df = markers::DATAFRAME,
            fmt = markers::OUTPUT_FORMAT,
            fs = markers::FEW_SHOT,
            schema = markers::SCHEMA,
            values = markers::VALUES,
            guide = markers::GUIDELINES,
        );
        PromptSections::parse(&text)
    }
}
