//! LLM service latency models.
//!
//! §5.2: "LLM response times ... remained within acceptable interactive
//! thresholds (~2 s)". Latency = network round-trip + prefill (per input
//! token) + decode (per output token), with log-normal-ish jitter, all
//! sampled deterministically from a [`Key`].

use crate::rng::Key;

/// Latency model for one hosted model endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed network + queuing overhead, ms.
    pub base_ms: f64,
    /// Prefill cost per input token, ms.
    pub prefill_ms_per_token: f64,
    /// Decode cost per output token, ms.
    pub decode_ms_per_token: f64,
    /// Multiplicative jitter amplitude (0.15 = ±15%).
    pub jitter: f64,
}

impl LatencyModel {
    /// Sample the latency of one call in milliseconds.
    pub fn sample(&self, input_tokens: usize, output_tokens: usize, key: Key) -> f64 {
        let deterministic = self.base_ms
            + self.prefill_ms_per_token * input_tokens as f64
            + self.decode_ms_per_token * output_tokens as f64;
        let jitter = 1.0 + self.jitter * key.gaussian().clamp(-2.5, 2.5);
        (deterministic * jitter).max(1.0)
    }

    /// Expected latency without jitter, ms.
    pub fn expected(&self, input_tokens: usize, output_tokens: usize) -> f64 {
        self.base_ms
            + self.prefill_ms_per_token * input_tokens as f64
            + self.decode_ms_per_token * output_tokens as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LatencyModel {
        LatencyModel {
            base_ms: 180.0,
            prefill_ms_per_token: 0.12,
            decode_ms_per_token: 9.0,
            jitter: 0.12,
        }
    }

    #[test]
    fn deterministic_per_key() {
        let m = model();
        let a = m.sample(4000, 60, Key::new(1).with_str("q1"));
        let b = m.sample(4000, 60, Key::new(1).with_str("q1"));
        assert_eq!(a, b);
        assert_ne!(a, m.sample(4000, 60, Key::new(1).with_str("q2")));
    }

    #[test]
    fn interactive_bound_for_full_context() {
        // Full-context prompt (~4300 tokens in, ~60 out) stays ~2 s.
        let m = model();
        for i in 0..200 {
            let l = m.sample(4300, 60, Key::new(9).with_u64(i));
            assert!(l < 2_500.0, "latency {l} ms breaks interactivity");
            assert!(l > 100.0);
        }
    }

    #[test]
    fn scales_with_tokens() {
        let m = model();
        assert!(m.expected(4000, 60) > m.expected(300, 60));
        assert!(m.expected(300, 200) > m.expected(300, 20));
    }
}
