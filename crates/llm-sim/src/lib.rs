//! # llm-sim
//!
//! Deterministic behavioral simulation of the LLM services the paper
//! evaluates (LLaMA 3 8B/70B, Gemini 2.5 Flash Lite, GPT-4, Claude Opus 4)
//! and of the GPT/Claude LLM-as-a-judge pair (§5.1–5.2).
//!
//! The simulator is *mechanistic*, not a score table: models parse the
//! actual prompt ([`prompt::PromptSections`]), translate the question with
//! a semantic intent engine ([`semantics`]), resolve field names against
//! whatever schema/value/guideline sections the RAG pipeline included, and
//! then suffer model-specific stochastic error injection ([`errors`])
//! keyed by a reproducible RNG ([`rng::Key`]). Ablating a prompt component
//! therefore degrades output quality through the same causal paths the
//! paper describes. DESIGN.md documents this substitution for the real
//! cloud LLM endpoints.

#![warn(missing_docs)]

pub mod errors;
pub mod judge;
pub mod latency;
pub mod model;
pub mod prompt;
pub mod rng;
pub mod routing;
pub mod semantics;
pub mod server;
pub mod token;

pub use judge::{Judge, JudgeId, Verdict};
pub use latency::LatencyModel;
pub use model::{ErrorWeights, ModelId, ModelProfile};
pub use prompt::{markers, PromptSections};
pub use rng::Key;
pub use routing::{classify, Route};
pub use semantics::{translate, IntentKind, Translation};
pub use server::{ChatRequest, ChatResponse, LlmServer, SimLlmServer};
pub use token::{count_tokens, prompt_tokens};
