//! The prompt contract between the agent's RAG pipeline and the simulated
//! LLM service.
//!
//! The agent assembles system prompts from the components of Table 2
//! (role, job, DataFrame description, output format, few-shot examples,
//! dynamic dataflow schema, domain values, query guidelines), each under a
//! well-known section marker. The simulated models *actually read* these
//! sections: field resolution uses the schema section, literal resolution
//! uses the domain-value section, and conventions come from the guideline
//! section — so ablating a component degrades translation mechanically,
//! the way real context ablation degrades a real LLM.

use std::collections::BTreeMap;

/// Section markers (markdown headers) the prompt builder emits.
pub mod markers {
    /// Agent role ("You are a workflow provenance specialist…").
    pub const ROLE: &str = "## Role";
    /// Agent job ("Your job is to translate the question into a query…").
    pub const JOB: &str = "## Job";
    /// DataFrame description ("Each row represents a task execution…").
    pub const DATAFRAME: &str = "## DataFrame";
    /// Output format instructions ("Return a single pandas expression…").
    pub const OUTPUT_FORMAT: &str = "## Output Format";
    /// Few-shot examples.
    pub const FEW_SHOT: &str = "## Examples";
    /// Dynamic dataflow schema.
    pub const SCHEMA: &str = "## Dataflow Schema";
    /// Representative domain values.
    pub const VALUES: &str = "## Domain Values";
    /// Query guidelines.
    pub const GUIDELINES: &str = "## Query Guidelines";
}

/// A parsed view of the system prompt, as the simulated model sees it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromptSections {
    /// Role section present.
    pub has_role: bool,
    /// Job section present.
    pub has_job: bool,
    /// DataFrame description present.
    pub has_dataframe: bool,
    /// Output-format instructions present (without them the model answers
    /// in prose — the zero-shot failure mode).
    pub has_output_format: bool,
    /// Number of few-shot examples found.
    pub few_shot_examples: usize,
    /// Column names (with dtypes) from the schema section.
    pub schema_columns: Vec<String>,
    /// Example values per column from the domain-values section.
    pub example_values: BTreeMap<String, Vec<String>>,
    /// Per-activity generated fields parsed from the schema's dataflow
    /// structure lines (`* activity [...]: uses(...) -> generates(...)`).
    pub activity_generates: Vec<(String, Vec<String>)>,
    /// `phrase → column` mappings parsed from guidelines.
    pub guideline_mappings: Vec<(String, String)>,
    /// `phrase → literal` conventions parsed from guidelines
    /// (e.g. "failed" → status value `ERROR`).
    pub guideline_literals: Vec<(String, String)>,
    /// Total guideline lines (free-text ones still aid capability).
    pub guideline_count: usize,
}

impl PromptSections {
    /// Parse a system prompt into sections.
    pub fn parse(system: &str) -> PromptSections {
        let mut out = PromptSections::default();
        let mut current: Option<&str> = None;
        for line in system.lines() {
            let trimmed = line.trim();
            if trimmed.starts_with("## ") {
                current = Some(match trimmed {
                    t if t == markers::ROLE => {
                        out.has_role = true;
                        "role"
                    }
                    t if t == markers::JOB => {
                        out.has_job = true;
                        "job"
                    }
                    t if t == markers::DATAFRAME => {
                        out.has_dataframe = true;
                        "dataframe"
                    }
                    t if t == markers::OUTPUT_FORMAT => {
                        out.has_output_format = true;
                        "format"
                    }
                    t if t == markers::FEW_SHOT => "few_shot",
                    t if t == markers::SCHEMA => "schema",
                    t if t == markers::VALUES => "values",
                    t if t == markers::GUIDELINES => "guidelines",
                    _ => "unknown",
                });
                continue;
            }
            match current {
                Some("few_shot") if trimmed.starts_with("Q:") => {
                    out.few_shot_examples += 1;
                }
                Some("schema") => {
                    // "- column_name (dtype): description"
                    if let Some(rest) = trimmed.strip_prefix("- ") {
                        if let Some(paren) = rest.find(" (") {
                            out.schema_columns.push(rest[..paren].trim().to_string());
                        } else if let Some(colon) = rest.find(':') {
                            out.schema_columns.push(rest[..colon].trim().to_string());
                        }
                    } else if let Some(rest) = trimmed.strip_prefix("* ") {
                        // "* activity [n tasks]: uses(a, b) -> generates(c)"
                        if let Some((head, tail)) = rest.split_once(':') {
                            let activity =
                                head.split('[').next().unwrap_or(head).trim().to_string();
                            let generates = tail
                                .split("generates(")
                                .nth(1)
                                .and_then(|g| g.split(')').next())
                                .map(|g| {
                                    g.split(',')
                                        .map(|f| f.trim().to_string())
                                        .filter(|f| !f.is_empty())
                                        .collect()
                                })
                                .unwrap_or_default();
                            if !activity.is_empty() {
                                out.activity_generates.push((activity, generates));
                            }
                        }
                    }
                }
                Some("values") => {
                    // "- column: v1 | v2 | v3"
                    if let Some(rest) = trimmed.strip_prefix("- ") {
                        if let Some((col, vals)) = rest.split_once(':') {
                            out.example_values.insert(
                                col.trim().to_string(),
                                vals.split('|').map(|v| v.trim().to_string()).collect(),
                            );
                        }
                    }
                }
                Some("guidelines") => {
                    if let Some(rest) = trimmed.strip_prefix("- ") {
                        out.guideline_count += 1;
                        // Machine-readable conventions:
                        //   "For <phrase>, use the column <col>."
                        //   "For <phrase>, use the value <lit>."
                        if let Some((phrase, tail)) = parse_convention(rest, "use the column") {
                            out.guideline_mappings.push((phrase, tail));
                        } else if let Some((phrase, tail)) = parse_convention(rest, "use the value")
                        {
                            out.guideline_literals.push((phrase, tail));
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// True when the schema section listed any columns.
    pub fn has_schema(&self) -> bool {
        !self.schema_columns.is_empty()
    }

    /// True when domain values were provided.
    pub fn has_values(&self) -> bool {
        !self.example_values.is_empty()
    }

    /// True when guidelines were provided.
    pub fn has_guidelines(&self) -> bool {
        self.guideline_count > 0
    }

    /// The baseline components (role+job+dataframe+format) are all present.
    pub fn has_baseline(&self) -> bool {
        self.has_role && self.has_job && self.has_dataframe && self.has_output_format
    }
}

/// Parse `"For <phrase>, use the column <col>."` shapes. Returns
/// `(phrase lowercased, target)`.
fn parse_convention(line: &str, verb: &str) -> Option<(String, String)> {
    let lower = line.to_lowercase();
    let idx = lower.find(verb)?;
    let phrase = line[..idx]
        .trim()
        .trim_start_matches("For ")
        .trim_start_matches("for ")
        .trim_start_matches("When asked about ")
        .trim_start_matches("when asked about ")
        .trim_end_matches(',')
        .trim()
        .to_lowercase();
    // The target is the first identifier-like token after the verb; the
    // rest of the sentence is explanatory prose.
    let target: String = line[idx + verb.len()..]
        .trim()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
        .collect();
    let target = target.trim_end_matches('.').to_string();
    if phrase.is_empty() || target.is_empty() {
        None
    } else {
        Some((phrase, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_prompt() -> String {
        format!(
            "{role}\nYou are a workflow provenance specialist.\n\
             {job}\nYour job is to translate questions into DataFrame queries.\n\
             {df}\nEach row represents one task execution.\n\
             {fmt}\nReturn a single pandas expression on df.\n\
             {fs}\nQ: How many tasks failed?\nA: len(df[df[\"status\"] == \"ERROR\"])\n\
             Q: Average duration per activity?\nA: df.groupby(\"activity_id\")[\"duration\"].mean()\n\
             {schema}\n- task_id (str): unique id\n- cpu_percent_end (float): CPU at end\n- status (str): task status\n\
             {values}\n- status: FINISHED | ERROR\n- activity_id: power | run_dft\n\
             {guide}\n- For time ranges, use the column started_at.\n- For failed, use the value ERROR.\n- Prefer concise queries.\n",
            role = markers::ROLE,
            job = markers::JOB,
            df = markers::DATAFRAME,
            fmt = markers::OUTPUT_FORMAT,
            fs = markers::FEW_SHOT,
            schema = markers::SCHEMA,
            values = markers::VALUES,
            guide = markers::GUIDELINES,
        )
    }

    #[test]
    fn parses_all_sections() {
        let p = PromptSections::parse(&sample_prompt());
        assert!(p.has_baseline());
        assert_eq!(p.few_shot_examples, 2);
        assert_eq!(
            p.schema_columns,
            vec!["task_id", "cpu_percent_end", "status"]
        );
        assert_eq!(
            p.example_values.get("status").unwrap(),
            &vec!["FINISHED".to_string(), "ERROR".to_string()]
        );
        assert_eq!(p.guideline_count, 3);
        assert_eq!(
            p.guideline_mappings,
            vec![("time ranges".to_string(), "started_at".to_string())]
        );
        assert_eq!(
            p.guideline_literals,
            vec![("failed".to_string(), "ERROR".to_string())]
        );
    }

    #[test]
    fn empty_prompt_is_zero_shot() {
        let p = PromptSections::parse("");
        assert!(!p.has_baseline());
        assert!(!p.has_schema());
        assert!(!p.has_values());
        assert!(!p.has_guidelines());
    }

    #[test]
    fn partial_prompt() {
        let text = format!(
            "{}\nYou are an assistant.\n{}\nReturn a query.\n",
            markers::ROLE,
            markers::OUTPUT_FORMAT
        );
        let p = PromptSections::parse(&text);
        assert!(p.has_role && p.has_output_format);
        assert!(!p.has_job);
    }

    #[test]
    fn convention_parser_shapes() {
        assert_eq!(
            parse_convention(
                "For CPU usage, use the column cpu_percent_end.",
                "use the column"
            ),
            Some(("cpu usage".to_string(), "cpu_percent_end".to_string()))
        );
        assert_eq!(
            parse_convention("Prefer concise queries.", "use the column"),
            None
        );
    }
}
