//! Model-specific error injection.
//!
//! The semantic layer already degrades mechanically with missing context;
//! this layer adds each model's *stochastic* failure modes on top, with
//! probabilities that shrink as the prompt gets richer (few-shot examples
//! and guidelines reduce syntax/logic slips — §5.2's observation) and grow
//! under context-window pressure.

use crate::model::ModelProfile;
use crate::prompt::PromptSections;
use crate::rng::Key;
use crate::semantics::IntentKind;
use dataframe::{AggFunc, Expr};
use provql::{Pipeline, Query, Stage};

/// A degradation applied to the generated query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppliedError {
    /// Replaced a real column with a fabricated one.
    HallucinatedField(String, String),
    /// Changed the aggregation function.
    WrongAggregation,
    /// Dropped the group-by.
    DroppedGroupBy,
    /// Sorted/filtered by the wrong temporal field or an id.
    TimeLogic,
    /// Changed a filter literal.
    WrongLiteral,
    /// Dropped a filter conjunct.
    DroppedFilter,
    /// Flipped a sort direction or limit.
    WrongOrdering,
    /// Produced unparseable output.
    SyntaxBroken,
}

/// Outcome of error injection.
#[derive(Debug, Clone, PartialEq)]
pub enum Degraded {
    /// Query survived (possibly altered); list of applied errors.
    Query(Query, Vec<AppliedError>),
    /// Output is syntactically broken text.
    Broken(String),
}

/// Intrinsic difficulty multiplier per intent shape: OLAP-style analytical
/// intents are harder than targeted lookups (§5.2: "OLAP queries show
/// greater dispersion and more frequent low scores").
pub fn intent_difficulty(intent: IntentKind) -> f64 {
    match intent {
        IntentKind::Greeting => 0.0,
        IntentKind::Count | IntentKind::FilterSelect | IntentKind::ExtremeValue => 0.8,
        IntentKind::Distinct | IntentKind::SpinCharge | IntentKind::AtomCount => 0.9,
        IntentKind::ExtremeRow | IntentKind::ScalarAgg | IntentKind::CountPerGroup => 1.1,
        IntentKind::GroupAgg | IntentKind::TopN | IntentKind::Span => 1.5,
        IntentKind::GroupAggTop | IntentKind::Plot => 1.9,
        IntentKind::Unknown => 2.2,
    }
}

/// The probability that this call produces at least one injected error.
pub fn error_probability(
    profile: &ModelProfile,
    intent: IntentKind,
    sections: &PromptSections,
    input_tokens: usize,
) -> f64 {
    let base = (1.0 - profile.competence) * intent_difficulty(intent);
    // Richer context reduces slips, but a weak model stays weak: the mix
    // keeps a competence-driven floor under the context relief.
    let mut relief = 1.0;
    if sections.few_shot_examples > 0 {
        relief *= 0.75;
    }
    if sections.has_guidelines() {
        relief *= 0.45;
    }
    let relief = 0.4 + 0.6 * relief;
    // Context-window pressure: degradation ramps beyond 75% utilization
    // (LLaMA 3-8B on the chemistry schema, §5.3).
    let utilization = input_tokens as f64 / profile.context_window as f64;
    let pressure = if utilization > 1.0 {
        6.0
    } else if utilization > 0.75 {
        1.0 + (utilization - 0.75) * 8.0
    } else {
        1.0
    };
    (base * relief * pressure * (1.0 + profile.variability)).clamp(0.0, 0.97)
}

/// Apply model-characteristic errors to a generated query.
pub fn degrade(
    query: Query,
    intent: IntentKind,
    profile: &ModelProfile,
    sections: &PromptSections,
    input_tokens: usize,
    key: Key,
) -> Degraded {
    let p = error_probability(profile, intent, sections, input_tokens);
    let draw = key.with_str("err-draw").unit();
    if draw >= p {
        return Degraded::Query(query, Vec::new());
    }
    // An error fires. High-variability models sometimes compound two.
    let n_errors = if key.with_str("compound").unit() < profile.variability * 0.5 {
        2
    } else {
        1
    };
    let mut q = query;
    let mut applied = Vec::new();
    for i in 0..n_errors {
        let mode_key = key.with_str("mode").with_u64(i);
        match pick_mode(profile, sections, mode_key) {
            Mode::Hallucinate => {
                if let Some((from, to)) = hallucinate_field(&mut q, mode_key) {
                    applied.push(AppliedError::HallucinatedField(from, to));
                }
            }
            Mode::GroupLogic => {
                if apply_group_logic(&mut q, mode_key) {
                    applied.push(if mode_key.with_u64(9).unit() < 0.5 {
                        AppliedError::WrongAggregation
                    } else {
                        AppliedError::DroppedGroupBy
                    });
                }
            }
            Mode::TimeLogic => {
                if apply_time_logic(&mut q, mode_key) {
                    applied.push(AppliedError::TimeLogic);
                }
            }
            Mode::FilterLogic => {
                if apply_filter_logic(&mut q, mode_key) {
                    applied.push(AppliedError::WrongLiteral);
                }
            }
            Mode::Syntax => {
                let text = broken_render(&q, mode_key);
                return Degraded::Broken(text);
            }
        }
    }
    if applied.is_empty() {
        // Chosen mode was inapplicable to this query shape; fall back to a
        // generic ordering slip so the failure still manifests.
        if apply_ordering_slip(&mut q) {
            applied.push(AppliedError::WrongOrdering);
        }
    }
    Degraded::Query(q, applied)
}

enum Mode {
    Hallucinate,
    GroupLogic,
    TimeLogic,
    FilterLogic,
    Syntax,
}

fn pick_mode(profile: &ModelProfile, sections: &PromptSections, key: Key) -> Mode {
    let e = &profile.errors;
    // Guidelines suppress convention errors unless the model ignores them.
    let guideline_shield = if sections.has_guidelines() {
        e.ignores_guidelines
    } else {
        1.0
    };
    let weights = [
        (Mode::Hallucinate, e.hallucinate_field),
        (Mode::GroupLogic, e.group_logic),
        (Mode::TimeLogic, e.time_logic * guideline_shield.max(0.3)),
        (Mode::FilterLogic, e.filter_logic),
        (
            Mode::Syntax,
            e.syntax
                * if sections.few_shot_examples > 0 {
                    0.3
                } else {
                    1.0
                },
        ),
    ];
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut draw = key.with_str("which-mode").unit() * total;
    for (mode, w) in weights {
        if draw < w {
            return mode;
        }
        draw -= w;
    }
    Mode::FilterLogic
}

/// Fabricated field names, as reported in §5.2.
const FABRICATIONS: &[&str] = &["node", "execution_id", "task_name", "cpu_load", "runtime_s"];

fn hallucinate_field(q: &mut Query, key: Key) -> Option<(String, String)> {
    let cols = q.referenced_columns();
    if cols.is_empty() {
        return None;
    }
    let victim = cols[key.with_str("victim").pick(cols.len())].clone();
    let fake = FABRICATIONS[key.with_str("fake").pick(FABRICATIONS.len())].to_string();
    if fake == victim {
        return None;
    }
    rename_column(q, &victim, &fake);
    Some((victim, fake))
}

/// Rename every reference to a column across the query.
pub fn rename_column(q: &mut Query, from: &str, to: &str) {
    match q {
        Query::Pipeline(p) => rename_in_pipeline(p, from, to),
        Query::Len(inner) => rename_column(inner, from, to),
        Query::Binary(a, _, b) => {
            rename_column(a, from, to);
            rename_column(b, from, to);
        }
        // Graph path primitives reference node ids, not frame columns.
        Query::Number(_) | Query::Graph(_) => {}
    }
}

fn rename_in_pipeline(p: &mut Pipeline, from: &str, to: &str) {
    for stage in &mut p.stages {
        match stage {
            Stage::Filter(e) => rename_in_expr(e, from, to),
            Stage::Select(cols) | Stage::GroupBy(cols) | Stage::DropDuplicates(cols) => {
                for c in cols {
                    if c == from {
                        *c = to.to_string();
                    }
                }
            }
            Stage::Col(c) if c == from => {
                *c = to.to_string();
            }
            Stage::AggMap(specs) => {
                for (c, _) in specs {
                    if c == from {
                        *c = to.to_string();
                    }
                }
            }
            Stage::SortValues(keys) => {
                for (c, _) in keys {
                    if c == from {
                        *c = to.to_string();
                    }
                }
            }
            Stage::NLargest(_, c) | Stage::NSmallest(_, c) if c == from => {
                *c = to.to_string();
            }
            Stage::LocIdx { column, cell, .. } => {
                if column == from {
                    *column = to.to_string();
                }
                if let Some(c) = cell {
                    if c == from {
                        *c = to.to_string();
                    }
                }
            }
            _ => {}
        }
    }
}

fn rename_in_expr(e: &mut Expr, from: &str, to: &str) {
    match e {
        Expr::Col(c) => {
            if c == from {
                *c = to.to_string();
            }
        }
        Expr::Cmp(a, _, b) | Expr::Arith(a, _, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            rename_in_expr(a, from, to);
            rename_in_expr(b, from, to);
        }
        Expr::Not(a)
        | Expr::StrContains(a, _, _)
        | Expr::StrStartsWith(a, _)
        | Expr::IsIn(a, _)
        | Expr::IsNull(a)
        | Expr::NotNull(a) => rename_in_expr(a, from, to),
        Expr::Lit(_) => {}
    }
}

fn apply_group_logic(q: &mut Query, key: Key) -> bool {
    let Query::Pipeline(p) = q else { return false };
    if key.with_u64(9).unit() < 0.5 {
        // Wrong aggregation function.
        for stage in &mut p.stages {
            if let Stage::Agg(f) = stage {
                *f = match *f {
                    AggFunc::Mean => AggFunc::Median,
                    AggFunc::Sum => AggFunc::Mean,
                    AggFunc::Count => AggFunc::Sum,
                    AggFunc::Max => AggFunc::Mean,
                    AggFunc::Min => AggFunc::Mean,
                    _ => AggFunc::Mean,
                };
                return true;
            }
        }
        false
    } else {
        // Drop the group-by: a grouped series becomes a plain column agg.
        let before = p.stages.len();
        p.stages.retain(|s| !matches!(s, Stage::GroupBy(_)));
        p.stages.len() != before
    }
}

fn apply_time_logic(q: &mut Query, key: Key) -> bool {
    // Swap temporal fields, or sort by an id instead of a timestamp
    // ("using .min() on IDs instead of timestamps").
    let cols = q.referenced_columns();
    let temporal: Vec<&String> = cols
        .iter()
        .filter(|c| c.contains("started") || c.contains("ended") || c.contains("duration"))
        .collect();
    if let Some(t) = temporal.first() {
        let t = (*t).clone();
        let replacement = if key.with_str("id-swap").unit() < 0.4 {
            "task_id".to_string()
        } else if t.contains("started") {
            t.replace("started", "ended")
        } else if t.contains("ended") {
            t.replace("ended", "started")
        } else {
            "ended_at".to_string()
        };
        rename_column(q, &t, &replacement);
        return true;
    }
    false
}

fn apply_filter_logic(q: &mut Query, key: Key) -> bool {
    let Query::Pipeline(p) = q else {
        if let Query::Len(inner) = q {
            return apply_filter_logic(inner, key);
        }
        return false;
    };
    for stage in &mut p.stages {
        if let Stage::Filter(e) = stage {
            if corrupt_literal(e, key) {
                return true;
            }
        }
    }
    false
}

fn corrupt_literal(e: &mut Expr, key: Key) -> bool {
    match e {
        Expr::Cmp(_, _, rhs) => {
            if let Expr::Lit(v) = rhs.as_mut() {
                match v {
                    prov_model::Value::Str(s) => {
                        *s = match s.as_str() {
                            "ERROR" => prov_model::Sym::new("RUNNING"),
                            "FINISHED" => prov_model::Sym::new("COMPLETED"),
                            other => prov_model::Sym::new(format!("{other}_")),
                        };
                        return true;
                    }
                    prov_model::Value::Int(i) => {
                        *i += 1 + (key.with_str("int").pick(5) as i64);
                        return true;
                    }
                    prov_model::Value::Float(f) => {
                        *f *= if key.with_str("float").unit() < 0.5 {
                            10.0
                        } else {
                            0.1
                        };
                        return true;
                    }
                    _ => {}
                }
            }
            false
        }
        Expr::And(a, b) | Expr::Or(a, b) => corrupt_literal(a, key) || corrupt_literal(b, key),
        Expr::StrContains(_, pat, _) => {
            pat.push('_');
            true
        }
        _ => false,
    }
}

fn apply_ordering_slip(q: &mut Query) -> bool {
    let Query::Pipeline(p) = q else { return false };
    for stage in &mut p.stages {
        match stage {
            Stage::SortValues(keys) => {
                for (_, asc) in keys.iter_mut() {
                    *asc = !*asc;
                }
                return true;
            }
            Stage::LocIdx { max, .. } => {
                *max = !*max;
                return true;
            }
            Stage::Head(n) => {
                *n += 4;
                return true;
            }
            _ => {}
        }
    }
    // Nothing orderable: degrade a Len into a row listing.
    if let Query::Len(inner) = q {
        *q = (**inner).clone();
        return true;
    }
    false
}

fn broken_render(q: &Query, key: Key) -> String {
    let text = provql::render(q);
    match key.with_str("break-shape").pick(3) {
        0 => format!("{} AND status == done", text),
        1 if text.contains(']') => text.replace(']', ""),
        1 => format!("{}.filter(", text),
        _ => format!("SELECT * FROM df WHERE {}", text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelId;
    use crate::prompt::markers;
    use provql::parse;

    fn full_sections() -> PromptSections {
        PromptSections::parse(&format!(
            "{}\nr\n{}\nj\n{}\nd\n{}\nReturn a query.\n{}\nQ: x?\nA: df\n{}\n- a (int): x\n{}\n- a: 1\n{}\n- For x, use the column a.\n",
            markers::ROLE,
            markers::JOB,
            markers::DATAFRAME,
            markers::OUTPUT_FORMAT,
            markers::FEW_SHOT,
            markers::SCHEMA,
            markers::VALUES,
            markers::GUIDELINES
        ))
    }

    #[test]
    fn error_probability_ordering() {
        let s = full_sections();
        let gpt = ModelProfile::of(ModelId::Gpt);
        let l8 = ModelProfile::of(ModelId::Llama8B);
        let p_gpt = error_probability(&gpt, IntentKind::GroupAgg, &s, 3000);
        let p_l8 = error_probability(&l8, IntentKind::GroupAgg, &s, 3000);
        assert!(p_l8 > p_gpt);
        // OLAP-ish intents harder than targeted lookups.
        assert!(
            error_probability(&gpt, IntentKind::GroupAggTop, &s, 3000)
                > error_probability(&gpt, IntentKind::Count, &s, 3000)
        );
    }

    #[test]
    fn context_pressure_raises_errors() {
        let s = full_sections();
        let l8 = ModelProfile::of(ModelId::Llama8B);
        let relaxed = error_probability(&l8, IntentKind::Count, &s, 2000);
        let pressured = error_probability(&l8, IntentKind::Count, &s, 7500);
        let overflow = error_probability(&l8, IntentKind::Count, &s, 9000);
        assert!(pressured > relaxed);
        assert!(overflow > pressured);
    }

    #[test]
    fn guidelines_reduce_errors() {
        let with = full_sections();
        let without = PromptSections::parse(&format!(
            "{}\nr\n{}\nReturn a query.\n",
            markers::ROLE,
            markers::OUTPUT_FORMAT
        ));
        let l70 = ModelProfile::of(ModelId::Llama70B);
        assert!(
            error_probability(&l70, IntentKind::GroupAgg, &with, 2000)
                < error_probability(&l70, IntentKind::GroupAgg, &without, 2000)
        );
    }

    #[test]
    fn degrade_is_deterministic() {
        let s = full_sections();
        let q = parse(r#"df.groupby("activity_id")["duration"].mean()"#).unwrap();
        let profile = ModelProfile::of(ModelId::Llama70B);
        let a = degrade(
            q.clone(),
            IntentKind::GroupAgg,
            &profile,
            &s,
            3000,
            Key::new(5),
        );
        let b = degrade(q, IntentKind::GroupAgg, &profile, &s, 3000, Key::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn rename_reaches_every_reference() {
        let mut q = parse(
            r#"df[df["duration"] > 1].sort_values("duration").groupby("duration")["duration"].mean()"#,
        )
        .unwrap();
        rename_column(&mut q, "duration", "runtime");
        assert!(q.referenced_columns().iter().all(|c| c == "runtime"));
    }

    #[test]
    fn some_draws_produce_errors_for_weak_models() {
        let s = PromptSections::parse(&format!(
            "{}\nr\n{}\nReturn a query.\n",
            markers::ROLE,
            markers::OUTPUT_FORMAT
        ));
        let l8 = ModelProfile::of(ModelId::Llama8B);
        let q = parse(r#"df.groupby("activity_id")["duration"].mean()"#).unwrap();
        let mut errors = 0;
        for i in 0..200 {
            match degrade(
                q.clone(),
                IntentKind::GroupAgg,
                &l8,
                &s,
                3000,
                Key::new(900).with_u64(i),
            ) {
                Degraded::Query(_, applied) if !applied.is_empty() => errors += 1,
                Degraded::Broken(_) => errors += 1,
                _ => {}
            }
        }
        assert!(errors > 30, "expected frequent errors, got {errors}/200");
    }

    #[test]
    fn frontier_models_rarely_err_with_full_context() {
        let s = full_sections();
        let gpt = ModelProfile::of(ModelId::Gpt);
        let q = parse(r#"len(df[df["status"] == "ERROR"])"#).unwrap();
        let mut errors = 0;
        for i in 0..300 {
            if !matches!(
                degrade(q.clone(), IntentKind::Count, &gpt, &s, 4000, Key::new(31).with_u64(i)),
                Degraded::Query(_, ref a) if a.is_empty()
            ) {
                errors += 1;
            }
        }
        assert!(errors < 30, "too many errors for GPT: {errors}/300");
    }

    #[test]
    fn broken_output_does_not_parse() {
        let q = parse("df.head(3)").unwrap();
        for i in 0..3 {
            let text = broken_render(&q, Key::new(i));
            assert!(parse(&text).is_err(), "should not parse: {text}");
        }
    }
}
