//! Deterministic stream-keyed randomness.
//!
//! Every stochastic decision in the simulator (error injection, judge
//! jitter, latency sampling) draws from a SplitMix64 value keyed by the
//! *semantic identity* of the decision — `(seed, model, query, run, salt)`
//! — never from shared mutable state. Re-running any experiment with the
//! same key always reproduces the same draw, which is what makes every
//! table and figure in `eval` bit-stable.

/// A hashable key accumulating heterogeneous parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Key(u64);

impl Key {
    /// Start a key from a global seed.
    pub fn new(seed: u64) -> Self {
        Key(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Mix a string into the key (FNV-1a).
    pub fn with_str(self, s: &str) -> Self {
        let mut h = self.0 ^ 0xcbf2_9ce4_8422_2325;
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Key(h)
    }

    /// Mix an integer into the key.
    pub fn with_u64(self, v: u64) -> Self {
        Key(splitmix(self.0 ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Finalized 64-bit value.
    pub fn value(self) -> u64 {
        splitmix(self.0)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(self) -> f64 {
        (self.value() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn range(self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Approximately standard-normal draw (sum of three uniforms,
    /// variance-corrected — plenty for jitter purposes).
    pub fn gaussian(self) -> f64 {
        let a = self.with_u64(1).unit();
        let b = self.with_u64(2).unit();
        let c = self.with_u64(3).unit();
        (a + b + c - 1.5) * 2.0
    }

    /// Pick an index in `[0, n)`.
    pub fn pick(self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.value() % n as u64) as usize
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_draw() {
        let a = Key::new(7).with_str("gpt").with_u64(3).unit();
        let b = Key::new(7).with_str("gpt").with_u64(3).unit();
        assert_eq!(a, b);
    }

    #[test]
    fn different_parts_different_draws() {
        let a = Key::new(7).with_str("gpt").unit();
        let b = Key::new(7).with_str("claude").unit();
        let c = Key::new(8).with_str("gpt").unit();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_is_uniform_ish() {
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| Key::new(1).with_u64(i).unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gaussian_is_centered() {
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|i| Key::new(2).with_u64(i).gaussian())
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn pick_in_bounds() {
        for i in 0..100 {
            assert!(Key::new(3).with_u64(i).pick(7) < 7);
        }
        assert_eq!(Key::new(3).pick(0), 0);
    }
}
