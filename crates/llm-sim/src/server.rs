//! The simulated LLM chat endpoint.
//!
//! One [`SimLlmServer`] stands in for a cloud-hosted model (§5.1: LLaMA on
//! ORNL cloud, GPT-4 on Azure, Gemini/Claude on GCP). A chat call parses
//! the prompt, translates the question through the semantic engine,
//! applies model-specific error injection, renders the query in the
//! model's surface style, and accounts tokens and latency.

use crate::errors::{degrade, Degraded};
use crate::model::{ModelId, ModelProfile};
use crate::prompt::PromptSections;
use crate::rng::Key;
use crate::semantics::{translate, IntentKind, Translation};
use crate::token::{count_tokens, prompt_tokens};
use provql::{render, Query, Stage};

/// A chat request to the (simulated) LLM service.
#[derive(Debug, Clone)]
pub struct ChatRequest {
    /// System prompt assembled by the agent's RAG pipeline.
    pub system: String,
    /// The user's natural-language question.
    pub user: String,
    /// Sampling temperature (the paper sets 0 everywhere).
    pub temperature: f64,
    /// Repetition index (the paper runs each query 3 times).
    pub run: u32,
    /// Experiment seed.
    pub seed: u64,
}

impl ChatRequest {
    /// Request with temperature 0, run 0, default seed.
    pub fn new(system: impl Into<String>, user: impl Into<String>) -> Self {
        Self {
            system: system.into(),
            user: user.into(),
            temperature: 0.0,
            run: 0,
            seed: 0x5EED,
        }
    }
}

/// A chat response.
#[derive(Debug, Clone, PartialEq)]
pub struct ChatResponse {
    /// Raw model output (query code, or prose).
    pub text: String,
    /// Whether the output is intended as query code.
    pub is_code: bool,
    /// Intent the model settled on.
    pub intent: IntentKind,
    /// Prompt tokens consumed.
    pub input_tokens: usize,
    /// Completion tokens produced.
    pub output_tokens: usize,
    /// Simulated end-to-end latency (ms).
    pub latency_ms: f64,
    /// True when the prompt exceeded the context window and was truncated.
    pub truncated: bool,
}

impl ChatResponse {
    /// Total token usage (the x-axis of Fig 8).
    pub fn total_tokens(&self) -> usize {
        self.input_tokens + self.output_tokens
    }
}

/// The LLM service interface the agent depends on.
pub trait LlmServer: Send + Sync {
    /// The model served by this endpoint.
    fn model(&self) -> ModelId;
    /// One chat completion.
    fn chat(&self, request: &ChatRequest) -> ChatResponse;
}

/// Simulated endpoint for one model profile.
pub struct SimLlmServer {
    profile: ModelProfile,
}

impl SimLlmServer {
    /// Server for a model.
    pub fn new(id: ModelId) -> Self {
        Self {
            profile: ModelProfile::of(id),
        }
    }

    /// The full profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Endpoints for all five evaluated models.
    pub fn fleet() -> Vec<SimLlmServer> {
        ModelId::all().into_iter().map(SimLlmServer::new).collect()
    }

    fn request_key(&self, request: &ChatRequest) -> Key {
        // Temperature 0 still shows slight run-to-run variation (§5.2:
        // "LLMs can still produce slight variations even with the
        // temperature set to zero"), so the run index is part of the key.
        Key::new(request.seed)
            .with_str(self.profile.id.name())
            .with_str(&request.user)
            .with_u64(request.run as u64)
            .with_u64((request.temperature * 1000.0) as u64)
    }
}

impl LlmServer for SimLlmServer {
    fn model(&self) -> ModelId {
        self.profile.id
    }

    fn chat(&self, request: &ChatRequest) -> ChatResponse {
        let key = self.request_key(request);
        let input_tokens = prompt_tokens(&request.system, &request.user);
        let window = self.profile.context_window;
        let truncated = input_tokens > window;
        // When the prompt overflows, the tail sections (schema, values,
        // guidelines) are what gets cut — parse only the surviving prefix.
        let system_view: String = if truncated {
            let keep_chars = request.system.len() * window / input_tokens.max(1);
            request.system.chars().take(keep_chars).collect()
        } else {
            request.system.clone()
        };
        let sections = PromptSections::parse(&system_view);

        // Conventions and field-ambiguity picks are systematic per
        // (model, question): at temperature 0 the model commits to one
        // reading across runs, so translation uses a run-independent key
        // while error injection below keeps the per-run key.
        let stable_key = Key::new(request.seed)
            .with_str(self.profile.id.name())
            .with_str(&request.user);
        let (text, is_code, intent) = match translate(&request.user, &sections, stable_key) {
            Translation::Prose { text, intent } => (text, false, intent),
            Translation::Code { query, intent } => {
                let query = apply_quirks(query, intent, self.profile.id, &request.user);
                match degrade(query, intent, &self.profile, &sections, input_tokens, key) {
                    Degraded::Query(q, _applied) => {
                        let code = style_render(&q, self.profile.id, key);
                        // Without few-shot examples, models rarely emit a
                        // bare executable expression: they wrap the query
                        // in chat prose and code fences, which the judge
                        // scores as unparseable (the paper's near-zero
                        // Baseline scores in Fig 8).
                        let wraps_in_prose = sections.few_shot_examples == 0
                            && key.with_str("prose-wrap").unit()
                                < 0.985 - self.profile.competence * 0.05;
                        if wraps_in_prose {
                            (
                                format!(
                                    "Sure! You can answer that with the following query:\n\
                                     ```python\n{code}\n```\n\
                                     This filters the live buffer and computes the result."
                                ),
                                true,
                                intent,
                            )
                        } else {
                            (code, true, intent)
                        }
                    }
                    Degraded::Broken(text) => (text, true, intent),
                }
            }
        };

        let output_tokens = count_tokens(&text).max(1);
        let latency_ms = self.profile.latency.sample(
            input_tokens.min(window),
            output_tokens,
            key.with_str("lat"),
        );
        ChatResponse {
            text,
            is_code,
            intent,
            input_tokens,
            output_tokens,
            latency_ms,
            truncated,
        }
    }
}

/// Paper-documented, model-specific misreadings of the chemistry demo
/// (§5.3). These are deterministic behaviors, not stochastic errors:
/// Q5 — GPT-4 "incorrectly summed the atom counts from all molecules,
/// returning a total of 81 rather than the number for just the parent".
fn apply_quirks(query: Query, intent: IntentKind, model: ModelId, user: &str) -> Query {
    let u = user.to_lowercase();
    if intent == IntentKind::AtomCount
        && u.contains("parent")
        && matches!(model, ModelId::Gpt | ModelId::Llama70B)
    {
        // The agent misses the molecule filter and sums across molecules.
        return Query::pipeline(vec![
            Stage::Col("n_atoms".to_string()),
            Stage::Agg(dataframe::AggFunc::Sum),
        ]);
    }
    query
}

/// Surface style differences between models: semantically neutral, but
/// they make outputs look like they came from different systems (quote
/// style, `reset_index()` habits).
fn style_render(q: &Query, model: ModelId, key: Key) -> String {
    let mut text = render(q);
    match model {
        ModelId::Llama8B | ModelId::Llama70B => {
            // LLaMA outputs tend to single quotes.
            text = text.replace('"', "'");
        }
        ModelId::Gemini => {
            if key.with_str("style").unit() < 0.5 {
                text = text.replace('"', "'");
            }
        }
        ModelId::Gpt | ModelId::Claude => {}
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::markers;

    fn prompt() -> String {
        format!(
            "{role}\nYou are a workflow provenance specialist.\n\
             {job}\nTranslate questions into DataFrame queries.\n\
             {df}\nEach row is a task execution.\n\
             {fmt}\nReturn a single pandas expression.\n\
             {fs}\nQ: How many tasks failed?\nA: len(df[df[\"status\"] == \"ERROR\"])\n\
             {schema}\n- task_id (str): id\n- status (str): status\n- activity_id (str): step\n\
             - duration (float): seconds\n- hostname (str): node name\n- started_at (float): start\n- ended_at (float): end\n\
             {values}\n- status: FINISHED | ERROR\n\
             {guide}\n- For time ranges, use the column started_at.\n- For failed, use the value ERROR.\n",
            role = markers::ROLE,
            job = markers::JOB,
            df = markers::DATAFRAME,
            fmt = markers::OUTPUT_FORMAT,
            fs = markers::FEW_SHOT,
            schema = markers::SCHEMA,
            values = markers::VALUES,
            guide = markers::GUIDELINES,
        )
    }

    #[test]
    fn chat_produces_parseable_code_for_frontier_models() {
        let server = SimLlmServer::new(ModelId::Gpt);
        let resp = server.chat(&ChatRequest::new(prompt(), "How many tasks failed?"));
        assert!(resp.is_code);
        assert!(provql::parse(&resp.text).is_ok(), "got {}", resp.text);
        assert!(resp.input_tokens > 50);
        assert!(resp.output_tokens > 3);
        assert!(resp.latency_ms > 10.0 && resp.latency_ms < 2_500.0);
        assert!(!resp.truncated);
    }

    #[test]
    fn deterministic_at_temperature_zero() {
        let server = SimLlmServer::new(ModelId::Claude);
        let req = ChatRequest::new(prompt(), "What is the average duration per activity?");
        assert_eq!(server.chat(&req), server.chat(&req));
    }

    #[test]
    fn runs_can_differ() {
        let server = SimLlmServer::new(ModelId::Gemini);
        let mut req = ChatRequest::new(prompt(), "What is the average duration per activity?");
        let a = server.chat(&req);
        req.run = 1;
        let b = server.chat(&req);
        // Either the text or at least the sampled latency differs between
        // runs (slight variation despite temperature 0).
        assert!(a.text != b.text || a.latency_ms != b.latency_ms);
    }

    #[test]
    fn llama_uses_single_quotes() {
        let server = SimLlmServer::new(ModelId::Llama8B);
        let mut resp = server.chat(&ChatRequest::new(prompt(), "How many tasks failed?"));
        // Retry a few runs to dodge injected errors, then check style.
        for run in 1..6 {
            if resp.is_code && provql::parse(&resp.text).is_ok() {
                break;
            }
            let mut req = ChatRequest::new(prompt(), "How many tasks failed?");
            req.run = run;
            resp = server.chat(&req);
        }
        if resp.is_code && resp.text.contains("status") {
            assert!(
                !resp.text.contains('"'),
                "expected single quotes: {}",
                resp.text
            );
        }
    }

    #[test]
    fn zero_shot_prompt_yields_prose() {
        let server = SimLlmServer::new(ModelId::Gpt);
        let resp = server.chat(&ChatRequest::new("", "How many tasks failed?"));
        assert!(!resp.is_code);
        assert!(provql::parse(&resp.text).is_err());
    }

    #[test]
    fn context_overflow_truncates() {
        let server = SimLlmServer::new(ModelId::Llama8B); // 8k window
        let huge_schema: String = (0..4000)
            .map(|i| format!("- very_long_column_name_number_{i} (float): description text\n"))
            .collect();
        let system = format!("{}\n{}", prompt(), huge_schema);
        let resp = server.chat(&ChatRequest::new(system, "How many tasks failed?"));
        assert!(resp.truncated);
        assert!(resp.input_tokens > server.profile().context_window);
    }

    #[test]
    fn gpt_q5_quirk_sums_atoms() {
        let server = SimLlmServer::new(ModelId::Gpt);
        let chem_prompt = prompt().replace(
            "- duration (float): seconds",
            "- n_atoms (int): atoms\n- molecule_label (str): molecule",
        );
        let resp = server.chat(&ChatRequest::new(
            chem_prompt,
            "What is the number of atoms in the parent molecule?",
        ));
        assert!(
            resp.text.contains("sum"),
            "expected the Q5 trap: {}",
            resp.text
        );
    }

    #[test]
    fn fleet_has_five_models() {
        assert_eq!(SimLlmServer::fleet().len(), 5);
    }
}
