//! Model profiles for the five evaluated LLMs (§5.1).
//!
//! Each profile captures what the paper's evaluation characterizes about
//! the model: context window, latency shape, overall competence, score
//! variability, and its *signature failure modes* (§5.2: "LLaMA 3–8B often
//! hallucinated non-existing fields like `node` or `execution_id` and
//! ignored guidelines. LLaMA 3–70B struggled with group-by logic or time
//! comparisons. Gemini's performance has the greatest variability…
//! Claude's and GPT-4's errors typically involved logic misinterpretations
//! (e.g., using `.min()` on IDs instead of timestamps).").

use crate::latency::LatencyModel;

/// The five evaluated models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelId {
    /// LLaMA 3 8B (ORNL cloud).
    Llama8B,
    /// LLaMA 3 70B (ORNL cloud).
    Llama70B,
    /// Gemini 2.5 Flash Lite (GCP).
    Gemini,
    /// GPT-4 (Azure).
    Gpt,
    /// Claude Opus 4 (GCP).
    Claude,
}

impl ModelId {
    /// All models in paper order.
    pub fn all() -> [ModelId; 5] {
        [
            ModelId::Llama8B,
            ModelId::Llama70B,
            ModelId::Gemini,
            ModelId::Gpt,
            ModelId::Claude,
        ]
    }

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::Llama8B => "LLaMA 3-8B",
            ModelId::Llama70B => "LLaMA 3-70B",
            ModelId::Gemini => "Gemini",
            ModelId::Gpt => "GPT",
            ModelId::Claude => "Claude",
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Relative weights of the model's characteristic error modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorWeights {
    /// Replace a real column with a fabricated one (`node`, `execution_id`).
    pub hallucinate_field: f64,
    /// Wrong aggregation function or dropped/incorrect group key.
    pub group_logic: f64,
    /// Time-comparison slips: sorting/filtering by the wrong temporal field
    /// or by an ID instead of a timestamp.
    pub time_logic: f64,
    /// Wrong filter literal or dropped conjunct.
    pub filter_logic: f64,
    /// Output that fails to parse at all.
    pub syntax: f64,
    /// Ignores guideline conventions even when present.
    pub ignores_guidelines: f64,
}

/// Full behavioral profile of one model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Which model this is.
    pub id: ModelId,
    /// Context window in tokens.
    pub context_window: usize,
    /// Latency model of the hosting endpoint.
    pub latency: LatencyModel,
    /// Base probability of a flawless translation under full context.
    pub competence: f64,
    /// Score spread: scales error probability multiplicatively and
    /// introduces occasional multi-error outputs (Gemini-style).
    pub variability: f64,
    /// Signature error-mode weights (normalized at use).
    pub errors: ErrorWeights,
}

impl ModelProfile {
    /// Profile for a model id, calibrated to §5.1–5.2.
    pub fn of(id: ModelId) -> ModelProfile {
        match id {
            ModelId::Llama8B => ModelProfile {
                id,
                context_window: 8_192,
                latency: LatencyModel {
                    base_ms: 120.0,
                    prefill_ms_per_token: 0.09,
                    decode_ms_per_token: 11.0,
                    jitter: 0.18,
                },
                competence: 0.60,
                variability: 0.22,
                errors: ErrorWeights {
                    hallucinate_field: 0.42,
                    group_logic: 0.16,
                    time_logic: 0.10,
                    filter_logic: 0.12,
                    syntax: 0.10,
                    ignores_guidelines: 0.10,
                },
            },
            ModelId::Llama70B => ModelProfile {
                id,
                context_window: 8_192,
                latency: LatencyModel {
                    base_ms: 200.0,
                    prefill_ms_per_token: 0.14,
                    decode_ms_per_token: 16.0,
                    jitter: 0.15,
                },
                competence: 0.80,
                variability: 0.12,
                errors: ErrorWeights {
                    hallucinate_field: 0.10,
                    group_logic: 0.40,
                    time_logic: 0.28,
                    filter_logic: 0.12,
                    syntax: 0.04,
                    ignores_guidelines: 0.06,
                },
            },
            ModelId::Gemini => ModelProfile {
                id,
                context_window: 1_000_000,
                latency: LatencyModel {
                    base_ms: 150.0,
                    prefill_ms_per_token: 0.05,
                    decode_ms_per_token: 6.0,
                    jitter: 0.25,
                },
                competence: 0.85,
                variability: 0.38,
                errors: ErrorWeights {
                    hallucinate_field: 0.18,
                    group_logic: 0.22,
                    time_logic: 0.15,
                    filter_logic: 0.25,
                    syntax: 0.12,
                    ignores_guidelines: 0.08,
                },
            },
            ModelId::Gpt => ModelProfile {
                id,
                context_window: 128_000,
                latency: LatencyModel {
                    base_ms: 260.0,
                    prefill_ms_per_token: 0.11,
                    decode_ms_per_token: 12.0,
                    jitter: 0.12,
                },
                competence: 0.975,
                variability: 0.05,
                errors: ErrorWeights {
                    hallucinate_field: 0.04,
                    group_logic: 0.16,
                    time_logic: 0.44,
                    filter_logic: 0.28,
                    syntax: 0.02,
                    ignores_guidelines: 0.06,
                },
            },
            ModelId::Claude => ModelProfile {
                id,
                context_window: 200_000,
                latency: LatencyModel {
                    base_ms: 280.0,
                    prefill_ms_per_token: 0.12,
                    decode_ms_per_token: 13.0,
                    jitter: 0.11,
                },
                competence: 0.978,
                variability: 0.05,
                errors: ErrorWeights {
                    hallucinate_field: 0.03,
                    group_logic: 0.14,
                    time_logic: 0.46,
                    filter_logic: 0.29,
                    syntax: 0.02,
                    ignores_guidelines: 0.06,
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_models() {
        assert_eq!(ModelId::all().len(), 5);
        for id in ModelId::all() {
            let p = ModelProfile::of(id);
            assert_eq!(p.id, id);
            assert!(p.competence > 0.5 && p.competence < 1.0);
            assert!(p.context_window >= 8_192);
        }
    }

    #[test]
    fn frontier_models_most_competent() {
        let gpt = ModelProfile::of(ModelId::Gpt);
        let claude = ModelProfile::of(ModelId::Claude);
        let llama8 = ModelProfile::of(ModelId::Llama8B);
        let gemini = ModelProfile::of(ModelId::Gemini);
        assert!(gpt.competence > gemini.competence);
        assert!(claude.competence > gemini.competence);
        assert!(gemini.competence > llama8.competence);
        // Gemini has the greatest variability (§5.2).
        for id in ModelId::all() {
            if id != ModelId::Gemini {
                assert!(ModelProfile::of(id).variability < gemini.variability);
            }
        }
    }

    #[test]
    fn signature_error_modes() {
        // LLaMA-8B: hallucination-dominant.
        let l8 = ModelProfile::of(ModelId::Llama8B).errors;
        assert!(l8.hallucinate_field > l8.group_logic);
        // LLaMA-70B: group-by logic dominant.
        let l70 = ModelProfile::of(ModelId::Llama70B).errors;
        assert!(l70.group_logic > l70.hallucinate_field);
        // GPT/Claude: time-logic misinterpretations dominate.
        let gpt = ModelProfile::of(ModelId::Gpt).errors;
        assert!(gpt.time_logic > gpt.hallucinate_field);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ModelId::Llama8B.name(), "LLaMA 3-8B");
        assert_eq!(ModelId::Gpt.to_string(), "GPT");
    }
}
