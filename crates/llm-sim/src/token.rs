//! Approximate tokenizer.
//!
//! Prompt budgeting (§3, Fig 8) needs a deterministic token count with
//! realistic magnitudes, not any particular vendor's BPE. This tokenizer
//! mimics the empirical "≈4 characters per token, punctuation splits"
//! behaviour of common BPE vocabularies.

/// Count tokens in a text.
///
/// Rules: each run of alphanumeric characters costs `ceil(len/4)` tokens
/// (long identifiers split like BPE does), every punctuation character is
/// its own token, and whitespace is free.
pub fn count_tokens(text: &str) -> usize {
    let mut tokens = 0usize;
    let mut word_len = 0usize;
    for c in text.chars() {
        if c.is_alphanumeric() {
            word_len += 1;
        } else {
            tokens += word_len.div_ceil(4);
            word_len = 0;
            if !c.is_whitespace() {
                tokens += 1;
            }
        }
    }
    tokens + word_len.div_ceil(4)
}

/// Token count of a (system, user) prompt pair plus chat framing overhead.
pub fn prompt_tokens(system: &str, user: &str) -> usize {
    // ~8 tokens of chat-format scaffolding per message.
    count_tokens(system) + count_tokens(user) + 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("   \n\t"), 0);
    }

    #[test]
    fn short_words_one_token() {
        assert_eq!(count_tokens("the cat"), 2);
    }

    #[test]
    fn long_identifiers_split() {
        // 19 chars → ceil(19/4) = 5
        assert_eq!(
            count_tokens("bond_dissociation_e".replace('_', "x").as_str()),
            5
        );
    }

    #[test]
    fn punctuation_counts() {
        // df [ " cpu " ] → df(1) + [(1) + "(1) + cpu(1) + "(1) + ](1) = 6
        assert_eq!(count_tokens("df[\"cpu\"]"), 6);
    }

    #[test]
    fn realistic_magnitude() {
        // ~400 chars of prose should land near 100 tokens (4 chars/token).
        let text = "The provenance agent translates natural language questions \
                    into structured DataFrame queries over the in-memory buffer \
                    of recent workflow task messages, returning tables, plots, \
                    or summaries to the scientist during execution. "
            .repeat(2);
        let t = count_tokens(&text);
        let chars = text.len();
        let ratio = chars as f64 / t as f64;
        assert!((3.0..6.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn monotone_in_length() {
        let a = count_tokens("one two three");
        let b = count_tokens("one two three four five");
        assert!(b > a);
    }

    #[test]
    fn prompt_overhead() {
        assert_eq!(prompt_tokens("", ""), 16);
        assert!(prompt_tokens("system prompt", "user query") > 16);
    }
}
