//! Query structures for the document store (the language-agnostic Query API
//! of §2.3, in its Rust form).

use prov_model::Value;

/// Comparison operator for document conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Lte,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Gte,
    /// Substring containment on strings.
    Contains,
    /// Field exists.
    Exists,
}

/// One condition on a dotted field path.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Dotted path, e.g. `generated.bd_energy`.
    pub path: String,
    /// Operator.
    pub op: Op,
    /// Comparand (ignored by `Exists`).
    pub value: Value,
}

impl Condition {
    /// Evaluate against one document.
    pub fn matches(&self, doc: &Value) -> bool {
        let field = doc.get_path(&self.path);
        match self.op {
            Op::Exists => field.is_some(),
            Op::Contains => match (field.and_then(Value::as_str), self.value.as_str()) {
                (Some(s), Some(pat)) => s.contains(pat),
                _ => false,
            },
            op => {
                let Some(v) = field else { return op == Op::Ne };
                let equal = match (v, &self.value) {
                    (Value::Int(a), Value::Float(b)) => *a as f64 == *b,
                    (Value::Float(a), Value::Int(b)) => *a == *b as f64,
                    (a, b) => a == b,
                };
                let ord = v.compare(&self.value);
                match op {
                    Op::Eq => equal,
                    Op::Ne => !equal,
                    Op::Lt => ord == std::cmp::Ordering::Less,
                    Op::Lte => ord != std::cmp::Ordering::Greater,
                    Op::Gt => ord == std::cmp::Ordering::Greater,
                    Op::Gte => ord != std::cmp::Ordering::Less,
                    Op::Contains | Op::Exists => unreachable!("handled above"),
                }
            }
        }
    }
}

/// A document query: AND of conditions, optional projection/sort/limit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DocQuery {
    /// Conditions, all of which must hold.
    pub conditions: Vec<Condition>,
    /// Paths to keep in results (empty = whole document).
    pub projection: Vec<String>,
    /// Optional `(path, ascending)` sort.
    pub sort: Option<(String, bool)>,
    /// Optional result cap.
    pub limit: Option<usize>,
}

impl DocQuery {
    /// Query matching everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a condition (builder style).
    pub fn filter(mut self, path: impl Into<String>, op: Op, value: impl Into<Value>) -> Self {
        self.conditions.push(Condition {
            path: path.into(),
            op,
            value: value.into(),
        });
        self
    }

    /// Set the projection.
    pub fn project(mut self, paths: &[&str]) -> Self {
        self.projection = paths.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Set the sort key.
    pub fn sort_by(mut self, path: impl Into<String>, ascending: bool) -> Self {
        self.sort = Some((path.into(), ascending));
        self
    }

    /// Cap the number of results.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Whether a document satisfies all conditions.
    pub fn matches(&self, doc: &Value) -> bool {
        self.conditions.iter().all(|c| c.matches(doc))
    }
}

/// Aggregation operator over grouped values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Count of present values.
    Count,
    /// Numeric sum.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggOp {
    /// Name used to build output field names.
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Count => "count",
            AggOp::Sum => "sum",
            AggOp::Mean => "mean",
            AggOp::Min => "min",
            AggOp::Max => "max",
        }
    }
}

/// One aggregation over a value path.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Dotted path to the aggregated value.
    pub path: String,
    /// Operator.
    pub op: AggOp,
}

impl Aggregate {
    /// Output field name, e.g. `generated.duration_mean`.
    pub fn output_name(&self) -> String {
        format!("{}_{}", self.path, self.op.name())
    }

    /// Apply to collected values.
    pub fn apply(&self, values: &[Value]) -> Value {
        match self.op {
            AggOp::Count => Value::Int(values.len() as i64),
            AggOp::Sum => Value::Float(values.iter().filter_map(Value::as_f64).sum()),
            AggOp::Mean => {
                let nums: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
                if nums.is_empty() {
                    Value::Null
                } else {
                    Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            AggOp::Min | AggOp::Max => {
                let mut best: Option<&Value> = None;
                for v in values {
                    if v.is_null() {
                        continue;
                    }
                    best = match best {
                        None => Some(v),
                        Some(b) => {
                            let take = if self.op == AggOp::Min {
                                v.compare(b) == std::cmp::Ordering::Less
                            } else {
                                v.compare(b) == std::cmp::Ordering::Greater
                            };
                            if take {
                                Some(v)
                            } else {
                                Some(b)
                            }
                        }
                    };
                }
                best.cloned().unwrap_or(Value::Null)
            }
        }
    }
}

/// Group specification: a key path plus aggregations.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    /// Dotted path whose values define the groups.
    pub key: String,
    /// Aggregations computed per group.
    pub aggs: Vec<Aggregate>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::obj;

    #[test]
    fn condition_semantics() {
        let doc = obj! {"a" => 5, "s" => "run_dft", "nested" => obj!{"x" => 1.5}};
        assert!(Condition {
            path: "a".into(),
            op: Op::Gte,
            value: Value::Int(5)
        }
        .matches(&doc));
        assert!(Condition {
            path: "s".into(),
            op: Op::Contains,
            value: "dft".into()
        }
        .matches(&doc));
        assert!(Condition {
            path: "nested.x".into(),
            op: Op::Exists,
            value: Value::Null
        }
        .matches(&doc));
        // Missing field: only Ne matches.
        assert!(Condition {
            path: "missing".into(),
            op: Op::Ne,
            value: Value::Int(1)
        }
        .matches(&doc));
        assert!(!Condition {
            path: "missing".into(),
            op: Op::Eq,
            value: Value::Int(1)
        }
        .matches(&doc));
    }

    #[test]
    fn int_float_equality() {
        let doc = obj! {"x" => 2};
        assert!(Condition {
            path: "x".into(),
            op: Op::Eq,
            value: Value::Float(2.0)
        }
        .matches(&doc));
    }

    #[test]
    fn aggregate_output_names() {
        let a = Aggregate {
            path: "generated.duration".into(),
            op: AggOp::Mean,
        };
        assert_eq!(a.output_name(), "generated.duration_mean");
    }

    #[test]
    fn agg_min_max_strings() {
        let a = Aggregate {
            path: "x".into(),
            op: AggOp::Max,
        };
        assert_eq!(
            a.apply(&[Value::from("a"), Value::from("c"), Value::from("b")]),
            Value::from("c")
        );
    }
}
