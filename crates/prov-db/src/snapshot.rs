//! Generation-pinned immutable read views.
//!
//! [`StoreSnapshot`] is the query-side read API: every query-shaped
//! caller (the agent tool layer, the serve front-end, tests) reads
//! through a snapshot instead of the raw flushing accessors on
//! [`ProvenanceDatabase`], which stay for ingest/admin. That makes
//! "reads don't block writers" a type-level property — a snapshot method
//! never takes the flusher lock and never mutates a view, so a query
//! storm can run entirely in parallel with ingest bursts.
//!
//! A snapshot pins `(generation, per-shard row high-water mark)` at
//! creation ([`ProvenanceDatabase::snapshot`]). The document shards are
//! append-only, so the rows below the mark are immutable and the bounded
//! kernels in [`crate::document`] answer any query *as of* that
//! generation, no matter how much ingest lands afterwards. Query
//! execution routes through the plan-keyed result cache
//! ([`crate::cache`]) keyed on the pinned generation.

use crate::csr::CsrGraph;
use crate::document::DocumentStore;
use crate::graph::GraphStore;
use crate::kv::KvStore;
use crate::query::{DocQuery, Op};
use crate::store::ProvenanceDatabase;
use crate::{cache::CacheOutcome, exec};
use dataframe::DataFrame;
use prov_model::TaskMessage;
use provql::plan::PushdownCapability;
use provql::{ExecError, Query, QueryOutput};
use std::sync::{Arc, OnceLock};

/// An immutable view of one database generation.
///
/// Cloneable via `Arc`; holding one costs a refcount on the database plus
/// one `usize` per shard. The oracle frame — the full materialization of
/// the visible corpus — is built lazily on first need and shared by every
/// caller of the same snapshot.
pub struct StoreSnapshot {
    db: Arc<ProvenanceDatabase>,
    generation: u64,
    /// Per-shard visible row counts ([`DocumentStore::shard_rows`] at
    /// creation): document id `slot * nshards + s` is visible iff
    /// `slot < hwm[s]`.
    hwm: Vec<usize>,
    oracle: OnceLock<Arc<DataFrame>>,
    /// The CSR graph compaction this snapshot's graph reads run against
    /// (lazy, usually shared with sibling snapshots via the store memo).
    csr: OnceLock<Arc<CsrGraph>>,
}

impl StoreSnapshot {
    pub(crate) fn new(db: Arc<ProvenanceDatabase>, generation: u64, hwm: Vec<usize>) -> Self {
        Self {
            db,
            generation,
            hwm,
            oracle: OnceLock::new(),
            csr: OnceLock::new(),
        }
    }

    /// The pinned store generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The database this snapshot views.
    pub fn database(&self) -> &Arc<ProvenanceDatabase> {
        &self.db
    }

    /// The per-shard row bound (internal: handed to the bounded kernels).
    pub(crate) fn bound(&self) -> &[usize] {
        &self.hwm
    }

    /// The document store, for bounded reads (internal; public callers go
    /// through [`find`], [`count`], or [`query`]).
    ///
    /// [`find`]: StoreSnapshot::find
    /// [`count`]: StoreSnapshot::count
    /// [`query`]: StoreSnapshot::query
    pub(crate) fn documents(&self) -> &DocumentStore {
        self.db.documents_unflushed()
    }

    /// Visible documents (the snapshot's corpus size).
    pub fn len(&self) -> usize {
        self.hwm.iter().sum()
    }

    /// Whether the snapshot sees no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Filter/sort/limit query over the visible documents.
    pub fn find(&self, query: &DocQuery) -> Vec<Arc<prov_model::Value>> {
        self.documents().find_bounded(query, &self.hwm)
    }

    /// Count visible matching documents.
    pub fn count(&self, query: &DocQuery) -> usize {
        self.documents().count_bounded(query, &self.hwm)
    }

    /// Point lookup by task id, served from the visible documents (the
    /// KV view is not used here: a newer version of the task could have
    /// landed after the snapshot was taken).
    pub fn get_task(&self, task_id: &str) -> Option<TaskMessage> {
        let mut q = DocQuery::new().filter("task_id", Op::Eq, task_id);
        q.limit = Some(1);
        self.find(&q)
            .first()
            .and_then(|d| TaskMessage::from_value(d))
    }

    /// The graph backend as materialized at snapshot creation.
    ///
    /// The graph store has no row high-water mark, so this is a *live*
    /// view that is guaranteed to contain at least everything accepted up
    /// to the snapshot's generation and may contain newer nodes/edges.
    /// Unlike the flushing [`ProvenanceDatabase::graph`] accessor it
    /// never materializes, so it cannot block on ingest.
    pub fn graph(&self) -> &GraphStore {
        self.db.graph_unflushed()
    }

    /// The CSR-compacted graph this snapshot's traversals run against
    /// (see [`crate::csr`]). Built lazily — one compaction pass under a
    /// single graph read lock, shared through the store's generation-keyed
    /// memo with sibling snapshots — and **pinned**: every call on this
    /// snapshot returns the same compaction, so graph reads are repeatable
    /// even while ingest keeps mutating the live adjacency maps. Like
    /// [`graph`](StoreSnapshot::graph), the view contains at least
    /// everything accepted up to the snapshot's generation.
    pub fn graph_csr(&self) -> &Arc<CsrGraph> {
        self.csr.get_or_init(|| self.db.csr_for(self.generation))
    }

    /// The KV backend as materialized at snapshot creation (same
    /// at-least-this-generation caveat as [`graph`]).
    ///
    /// [`graph`]: StoreSnapshot::graph
    pub fn kv(&self) -> &KvStore {
        self.db.kv_unflushed()
    }

    /// The full-materialize oracle frame over the visible corpus: every
    /// visible document decoded into a task message and flattened into
    /// one frame. Built once per snapshot, shared by all callers — this
    /// is both the fallback executor for plans the store cannot serve and
    /// the reference the differential tests compare every answer against.
    pub fn oracle_frame(&self) -> Arc<DataFrame> {
        self.oracle
            .get_or_init(|| {
                let docs = self.find(&DocQuery::new());
                let msgs: Vec<TaskMessage> = docs
                    .iter()
                    .filter_map(|d| TaskMessage::from_value(d))
                    .collect();
                Arc::new(DataFrame::from_messages(&msgs))
            })
            .clone()
    }

    /// Whether the oracle frame has been materialized for this snapshot —
    /// false means every query so far was served from the store's indexes
    /// and column vectors (tests assert the pushdown paths stay pushed).
    pub fn oracle_built(&self) -> bool {
        self.oracle.get().is_some()
    }

    /// Execute a provql query against this snapshot, consulting the
    /// shared plan-keyed result cache. Returns the output (shared — cache
    /// hits hand out the same allocation) and how the cache was involved.
    pub fn query(&self, query: &Query) -> (Result<Arc<QueryOutput>, ExecError>, CacheOutcome) {
        self.query_with(query, true)
    }

    /// [`query`](StoreSnapshot::query) with the cache switchable —
    /// `use_cache = false` always executes (the cache-equivalence
    /// proptest runs both arms on one snapshot).
    pub fn query_with(
        &self,
        query: &Query,
        use_cache: bool,
    ) -> (Result<Arc<QueryOutput>, ExecError>, CacheOutcome) {
        let plan = provql::plan(query, self);
        if !use_cache {
            return (self.execute_uncached(query, &plan), CacheOutcome::Bypass);
        }
        let key = provql::plan::cache_key(&plan);
        let cache = self.db.plan_cache();
        if let Some(out) = cache.get(&key, self.generation) {
            return (Ok(out), CacheOutcome::Hit);
        }
        let res = self.execute_uncached(query, &plan);
        if let Ok(out) = &res {
            cache.insert(key, self.generation, out.clone());
        }
        (res, CacheOutcome::Miss)
    }

    /// Execute without the cache: route selective plans — every pipeline
    /// pushes a conjunct, carries a pushed limit, or runs fully columnar
    /// — through the bounded pushdown executor, and everything else (or
    /// any pushdown fallback) through the stage machine on the shared
    /// oracle frame. The routing rule mirrors the agent tool's historical
    /// heuristic: unselective corpus-wide queries are exactly the ones
    /// that amortize the oracle frame.
    fn execute_uncached(
        &self,
        query: &Query,
        plan: &provql::QueryPlan,
    ) -> Result<Arc<QueryOutput>, ExecError> {
        // Graph path primitives have no frame fallback (the oracle frame
        // cannot answer them — `provql::execute` would return
        // `GraphUnsupported`), so they always go to the plan executor.
        let selective = query.has_graph()
            || plan
                .pipelines()
                .iter()
                .all(|p| p.has_pushdown() || p.scan.limit.is_some() || p.scan.columnar_only);
        if selective {
            if let exec::Pushdown::Executed(res) = exec::execute_plan_snapshot(self, plan) {
                return res.map(Arc::new);
            }
        }
        provql::execute(query, &self.oracle_frame()).map(Arc::new)
    }
}

/// Planning capability: delegate to the database's advertisement. The
/// columnar flags are monotonic (a column can be poisoned later but never
/// un-poisoned), so a plan made against a snapshot can at worst be
/// *stale-optimistic*; the bounded executor re-checks servability at
/// execution time and defers to the snapshot's oracle when the layer has
/// moved underneath the plan.
impl PushdownCapability for StoreSnapshot {
    fn pushable_eq(&self, column: &str) -> bool {
        self.db.pushable_eq(column)
    }
    fn pushable_range(&self, column: &str) -> bool {
        self.db.pushable_range(column)
    }
    fn pushable_columnar(&self, column: &str) -> bool {
        self.db.pushable_columnar(column)
    }
    fn pushable_sort(&self, column: &str) -> bool {
        self.db.pushable_sort(column)
    }
    fn pushable_graph(&self) -> bool {
        self.db.pushable_graph()
    }
}
