//! Thread-pool query front-end with admission control.
//!
//! [`QueryServer`] is the "heavy traffic" leg of the serving story: many
//! concurrent clients submitting provql query text against one shared
//! [`ProvenanceDatabase`] while ingest keeps streaming in. The design is
//! deliberately boring:
//!
//! * a fixed pool of worker threads executes queries against
//!   [`StoreSnapshot`]s — each worker pins a snapshot and re-pins only
//!   when the store generation moves, so a query storm between ingest
//!   bursts costs zero flushes and zero write-lock waits;
//! * a bounded submission queue provides **backpressure**: when the
//!   queue is full, [`QueryServer::submit`] fails fast with
//!   [`SubmitError::QueueFull`] instead of buffering without bound —
//!   the client retries or sheds load, and ingest never starves behind
//!   an unbounded read backlog;
//! * results route through the shared plan-keyed cache
//!   ([`crate::cache`]), so storms of identical dashboard queries cost
//!   one execution per store generation;
//! * per-query latency is recorded, and [`QueryServer::stats`] reports
//!   p50/p99 plus cache counters — the numbers the `mixed_load`
//!   benchmark commits.
//!
//! Synchronization is `std::sync` (`Mutex` + `Condvar` + `mpsc`): the
//! repo's `parking_lot` shim has no condition variables, and none of this
//! is on a per-row hot path.

use crate::cache::{CacheOutcome, CacheStats};
use crate::snapshot::StoreSnapshot;
use crate::store::ProvenanceDatabase;
use provql::{ExecError, ParseError, QueryOutput};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Server sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Maximum queued (accepted, not yet executing) queries before
    /// submissions are rejected.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8);
        Self {
            workers,
            queue_depth: 4 * workers,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity — shed load or retry.
    QueueFull,
    /// The server is shutting down.
    ShuttingDown,
}

/// Why an accepted query produced no output.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The query text did not parse.
    Parse(ParseError),
    /// The query executed and raised (identical to what the oracle path
    /// raises for the same query).
    Exec(ExecError),
}

/// One answered query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The output (shared — cache hits hand out the cached allocation).
    pub result: Result<Arc<QueryOutput>, ServeError>,
    /// How the plan cache was involved.
    pub cache: CacheOutcome,
    /// The store generation the answer is exact as of.
    pub generation: u64,
    /// Wall-clock service time (queue wait excluded), in microseconds.
    pub micros: u64,
}

/// Point-in-time server counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeStats {
    /// Accepted submissions.
    pub submitted: u64,
    /// Completed queries.
    pub completed: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Median service latency, microseconds (0 before any completion).
    pub p50_micros: u64,
    /// 99th-percentile service latency, microseconds.
    pub p99_micros: u64,
    /// Plan-cache counters (shared with every other caller of the
    /// database's cache).
    pub cache: CacheStats,
    /// Chunk-pager counters (all zero unless the database was opened
    /// lazily over sealed segments — see [`crate::pager`]'s module docs).
    pub pager: crate::PagerStats,
}

struct Job {
    text: String,
    reply: mpsc::Sender<QueryResponse>,
}

struct Shared {
    db: Arc<ProvenanceDatabase>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_depth: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    latencies_micros: Mutex<Vec<u64>>,
}

/// A fixed worker pool serving provql query text over snapshots of one
/// database, with bounded admission. Dropping the server drains nothing:
/// shutdown is signalled, workers finish their in-flight query and exit,
/// and queued-but-unstarted jobs see their reply channel disconnect.
pub struct QueryServer {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl QueryServer {
    /// Start a server over `db` with the given sizing.
    pub fn start(db: Arc<ProvenanceDatabase>, config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            db,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_depth: config.queue_depth.max(1),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            latencies_micros: Mutex::new(Vec::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("prov-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Submit query text; returns a receiver for the response, or fails
    /// fast when the admission queue is full.
    pub fn submit(
        &self,
        text: impl Into<String>,
    ) -> Result<mpsc::Receiver<QueryResponse>, SubmitError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.shared.queue.lock().expect("serve queue poisoned");
            if queue.len() >= self.shared.queue_depth {
                drop(queue);
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull);
            }
            queue.push_back(Job {
                text: text.into(),
                reply: tx,
            });
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.available.notify_one();
        Ok(rx)
    }

    /// Submit and block for the answer (test/bench convenience).
    pub fn query(&self, text: impl Into<String>) -> Result<QueryResponse, SubmitError> {
        let rx = self.submit(text)?;
        rx.recv().map_err(|_| SubmitError::ShuttingDown)
    }

    /// Current counters and latency percentiles.
    pub fn stats(&self) -> ServeStats {
        let (p50, p99) = {
            let lat = self
                .shared
                .latencies_micros
                .lock()
                .expect("latency log poisoned");
            percentiles(&lat)
        };
        ServeStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            p50_micros: p50,
            p99_micros: p99,
            cache: self.shared.db.plan_cache().stats(),
            pager: self.shared.db.pager_stats(),
        }
    }

    /// The served database.
    pub fn database(&self) -> &Arc<ProvenanceDatabase> {
        &self.shared.db
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Per-worker pinned snapshot, refreshed only when the generation
    // moves: between ingest bursts, a storm of queries re-uses one
    // snapshot and pays zero flushes.
    let mut snap: Option<Arc<StoreSnapshot>> = None;
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("serve queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.available.wait(queue).expect("serve queue poisoned");
            }
        };
        let start = Instant::now();
        let current = shared.db.generation();
        let snap = match &mut snap {
            Some(s) if s.generation() == current => s,
            slot => slot.insert(shared.db.snapshot()),
        };
        let (result, cache) = match provql::parse(&job.text) {
            Ok(query) => {
                let (res, outcome) = snap.query(&query);
                (res.map_err(ServeError::Exec), outcome)
            }
            Err(e) => (Err(ServeError::Parse(e)), CacheOutcome::Bypass),
        };
        let micros = start.elapsed().as_micros() as u64;
        shared
            .latencies_micros
            .lock()
            .expect("latency log poisoned")
            .push(micros);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        // The client may have gone away (timeout, shed load) — fine.
        let _ = job.reply.send(QueryResponse {
            result,
            cache,
            generation: snap.generation(),
            micros,
        });
    }
}

/// `(p50, p99)` of a latency log (nearest-rank on a sorted copy).
fn percentiles(lat: &[u64]) -> (u64, u64) {
    if lat.is_empty() {
        return (0, 0);
    }
    let mut sorted = lat.to_vec();
    sorted.sort_unstable();
    let rank = |p: f64| {
        let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    };
    (rank(0.50), rank(0.99))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::TaskMessageBuilder;

    fn seeded() -> Arc<ProvenanceDatabase> {
        let db = ProvenanceDatabase::shared();
        let msgs: Vec<_> = (0..32)
            .map(|i| {
                TaskMessageBuilder::new(format!("t{i}"), format!("wf-{}", i % 4), "simulate")
                    .span(i as f64, i as f64 + 1.0)
                    .build()
            })
            .collect();
        db.insert_batch(&msgs);
        db
    }

    #[test]
    fn serves_queries_and_reports_stats() {
        let server = QueryServer::start(
            seeded(),
            ServeConfig {
                workers: 2,
                queue_depth: 16,
            },
        );
        let r = server.query("len(df)").unwrap();
        assert_eq!(
            *r.result.unwrap(),
            QueryOutput::Scalar(prov_model::Value::Int(32))
        );
        // The identical query again — same generation — hits the cache.
        let r2 = server.query("len(df)").unwrap();
        assert_eq!(r2.cache, CacheOutcome::Hit);
        let stats = server.stats();
        assert_eq!(stats.completed, 2);
        assert!(stats.cache.hits >= 1);
    }

    #[test]
    fn parse_errors_come_back_as_responses() {
        let server = QueryServer::start(seeded(), ServeConfig::default());
        let r = server.query("df[[[").unwrap();
        assert!(matches!(r.result, Err(ServeError::Parse(_))));
    }

    #[test]
    fn full_queue_rejects_instead_of_buffering() {
        // No workers draining... we can't start zero workers (max(1)), so
        // saturate a depth-1 queue from the submitting thread while the
        // single worker is blocked on an earlier long queue. Simplest
        // deterministic variant: fill the queue beyond depth before the
        // worker can drain it and accept that rejection is *possible* —
        // assert the accounting instead on a server whose worker is busy.
        let server = QueryServer::start(
            seeded(),
            ServeConfig {
                workers: 1,
                queue_depth: 1,
            },
        );
        let mut rejected = 0;
        let mut receivers = Vec::new();
        for _ in 0..64 {
            match server.submit("df[df[\"started_at\"] > 3.0][[\"task_id\"]].head(5)") {
                Ok(rx) => receivers.push(rx),
                Err(SubmitError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        for rx in receivers {
            assert!(rx.recv().unwrap().result.is_ok());
        }
        assert_eq!(server.stats().rejected, rejected);
    }
}
