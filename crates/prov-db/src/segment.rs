//! Sealed, immutable on-disk columnar segments.
//!
//! A durable store ([`crate::store::ProvenanceDatabase::open`]) period-
//! ically seals the already-materialized prefix of every document-store
//! shard to disk and rotates the sealed records out of the WAL. A
//! segment is one shard's rows `[start, end)` — always whole
//! `PROVDB_CHUNK`-row chunks, so the in-memory chunk zone maps of
//! [`crate::columnar`] (`StrZone`/`F64Zone`) can be serialized *as* the
//! segment footer instead of inventing a second pruning structure:
//! on-disk scans consult the footer and prune whole segments before
//! reading a single document.
//!
//! ## File layout (`seg-nNN-sSS-rAAAAAAAAAA-BBBBBBBBBB.seg`)
//!
//! ```text
//! "PSEG1\n"                                  magic (6 bytes)
//! [nshards u32][shard u32][start u64][end u64][chunk u32][n_docs u32]
//! n_docs × [len u32][crc u32][payload]       documents, slot order
//! footer                                     see ZoneTables::to_bytes
//! [footer_len u32][footer_crc u32]"PSEGF\n"  tail (14 bytes)
//! ```
//!
//! * `nshards` is the shard count **at seal time**. A segment covers
//!   shard `shard`'s slots `[start, end)`, i.e. the arrival indexes
//!   `{k : k % nshards == shard, start ≤ k / nshards < end}` — the
//!   facade routes arrivals round-robin, so this is self-describing
//!   even if the store is later reopened with a different shard count.
//! * Documents use the WAL's binary value codec, individually
//!   checksummed. The footer is the serialized zone tables plus the
//!   per-column dictionaries (codes are shard-local; the dictionary
//!   snapshot makes the code intervals meaningful after restart).
//! * The tail makes the footer locatable without parsing the documents:
//!   [`read_footer`] reads 14 bytes from the end, then the footer.
//!
//! Segments are written to a temp file, synced, and renamed into place;
//! a crash mid-seal leaves at most an ignorable `*.tmp`. **Compaction**
//! merges a shard's contiguous sealed runs into one segment (reusing the
//! inputs' serialized chunk zones when their dictionaries are
//! prefix-compatible, rebuilding them from a fresh columnar pass
//! otherwise) and
//! deletes the inputs after the rename; a crash in between leaves
//! overlapping segments, which [`scan_dir`] resolves by keeping the
//! widest coverage and deleting the contained leftovers.

use crate::columnar::ColumnarShard;
use crate::wal::{crc32, decode_value, encode_value, sync_dir};
use dataframe::CmpOp;
use prov_model::{Sym, Value};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 6] = b"PSEG1\n";
const TAIL_MAGIC: &[u8; 6] = b"PSEGF\n";

/// The serialized form of one segment's chunk zone maps — exactly the
/// in-memory `StrZone`/`F64Zone` tables of [`crate::columnar`] for the
/// sealed chunk range, plus the per-column dictionary snapshot that
/// makes string codes meaningful across restarts.
pub(crate) struct ZoneTables {
    /// Per string column: the shard dictionary at seal time (`code →
    /// symbol`, first-appearance order — a prefix of any later dict).
    pub(crate) str_dicts: Vec<Vec<Sym>>,
    /// Per string column, per sealed chunk: `(min_code, max_code,
    /// present)` with the empty-interval sentinel `min > max`.
    pub(crate) str_zones: Vec<Vec<(u32, u32, u32)>>,
    /// Per float column, per sealed chunk: `(min, max, present, nan)`
    /// over the finite present cells (`min = ∞, max = -∞` when none).
    pub(crate) f64_zones: Vec<Vec<(f64, f64, u32, u32)>>,
    /// Decodable rows per sealed chunk.
    pub(crate) chunk_decodable: Vec<u32>,
    /// Store-wide irregular-column bitmask at seal time (the columnar
    /// sidecar's pushdown poison state). A lazily opened store ORs the
    /// masks of its attached segments instead of re-extracting every
    /// sealed document, which yields the same bits: every document's
    /// ingest report is folded into the store mask before its seal.
    pub(crate) irregular: u16,
    /// Store-wide telemetry-poison bitmask at seal time (same contract
    /// as [`irregular`](Self::irregular)).
    pub(crate) poison: u16,
}

impl ZoneTables {
    /// Canonical serialization (the byte-identity the round-trip tests
    /// pin): dictionaries, string zones, float zones (raw `f64` bits),
    /// decodable counts — all length-prefixed little-endian.
    pub(crate) fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.str_dicts.len() as u32);
        for dict in &self.str_dicts {
            put_u32(&mut out, dict.len() as u32);
            for sym in dict {
                let b = sym.as_str().as_bytes();
                put_u32(&mut out, b.len() as u32);
                out.extend_from_slice(b);
            }
        }
        put_u32(&mut out, self.str_zones.len() as u32);
        for zones in &self.str_zones {
            put_u32(&mut out, zones.len() as u32);
            for &(min, max, present) in zones {
                put_u32(&mut out, min);
                put_u32(&mut out, max);
                put_u32(&mut out, present);
            }
        }
        put_u32(&mut out, self.f64_zones.len() as u32);
        for zones in &self.f64_zones {
            put_u32(&mut out, zones.len() as u32);
            for &(min, max, present, nan) in zones {
                out.extend_from_slice(&min.to_bits().to_le_bytes());
                out.extend_from_slice(&max.to_bits().to_le_bytes());
                put_u32(&mut out, present);
                put_u32(&mut out, nan);
            }
        }
        put_u32(&mut out, self.chunk_decodable.len() as u32);
        for &n in &self.chunk_decodable {
            put_u32(&mut out, n);
        }
        put_u32(&mut out, self.irregular as u32);
        put_u32(&mut out, self.poison as u32);
        out
    }

    /// Inverse of [`to_bytes`](Self::to_bytes); `None` on malformed
    /// input.
    pub(crate) fn from_bytes(buf: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let ncols = get_u32(buf, &mut pos)? as usize;
        let mut str_dicts = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let n = get_u32(buf, &mut pos)? as usize;
            if n > buf.len() - pos {
                return None;
            }
            let mut dict = Vec::with_capacity(n);
            for _ in 0..n {
                let len = get_u32(buf, &mut pos)? as usize;
                let bytes = buf.get(pos..pos + len)?;
                pos += len;
                dict.push(Sym::from(std::str::from_utf8(bytes).ok()?));
            }
            str_dicts.push(dict);
        }
        let ncols = get_u32(buf, &mut pos)? as usize;
        let mut str_zones = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let n = get_u32(buf, &mut pos)? as usize;
            if n > buf.len() - pos {
                return None;
            }
            let mut zones = Vec::with_capacity(n);
            for _ in 0..n {
                let min = get_u32(buf, &mut pos)?;
                let max = get_u32(buf, &mut pos)?;
                let present = get_u32(buf, &mut pos)?;
                zones.push((min, max, present));
            }
            str_zones.push(zones);
        }
        let ncols = get_u32(buf, &mut pos)? as usize;
        let mut f64_zones = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let n = get_u32(buf, &mut pos)? as usize;
            if n > buf.len() - pos {
                return None;
            }
            let mut zones = Vec::with_capacity(n);
            for _ in 0..n {
                let min = f64::from_bits(u64::from_le_bytes(get8(buf, &mut pos)?));
                let max = f64::from_bits(u64::from_le_bytes(get8(buf, &mut pos)?));
                let present = get_u32(buf, &mut pos)?;
                let nan = get_u32(buf, &mut pos)?;
                zones.push((min, max, present, nan));
            }
            f64_zones.push(zones);
        }
        let n = get_u32(buf, &mut pos)? as usize;
        if n > buf.len() - pos {
            return None;
        }
        let mut chunk_decodable = Vec::with_capacity(n);
        for _ in 0..n {
            chunk_decodable.push(get_u32(buf, &mut pos)?);
        }
        let irregular = u16::try_from(get_u32(buf, &mut pos)?).ok()?;
        let poison = u16::try_from(get_u32(buf, &mut pos)?).ok()?;
        (pos == buf.len()).then_some(Self {
            str_dicts,
            str_zones,
            f64_zones,
            chunk_decodable,
            irregular,
            poison,
        })
    }

    /// Zone verdict for one predicate against one chunk — the exact
    /// semantics of the in-memory `zone_skips` (conservative: `false`
    /// means "must read", never "matches"). `rows` is the chunk's row
    /// count (needed for the null-matching widening of `!=`).
    pub(crate) fn chunk_skips(
        &self,
        field: &str,
        op: CmpOp,
        lit: &Value,
        c: usize,
        rows: u32,
    ) -> bool {
        if let Some(i) = crate::columnar::str_field_index(field) {
            let (min, max, present) = self.str_zones[i][c];
            // `!=` matches null cells against a non-null literal, so a
            // chunk with any null cell can never be skipped for it.
            let null_matches = op == CmpOp::Ne && !lit.is_null();
            if null_matches && present < rows {
                return false;
            }
            let present_possible = match (op, lit.as_str()) {
                (CmpOp::Eq, Some(s)) => match dict_code(&self.str_dicts[i], s) {
                    Some(code) => present > 0 && code >= min && code <= max,
                    None => false,
                },
                (CmpOp::Ne, Some(s)) => match dict_code(&self.str_dicts[i], s) {
                    // Only provably all-equal when the interval is one
                    // point at the literal's code.
                    Some(code) => present > 0 && !(min == code && max == code),
                    None => present > 0,
                },
                // Null literal: only `!=` over non-null cells matches.
                (CmpOp::Ne, None) if lit.is_null() => present > 0,
                (_, None) if lit.is_null() => false,
                // Ordering ops over strings (or kind-tag comparisons
                // against non-string literals): the footer has no
                // per-symbol table, so stay conservative.
                _ => present > 0,
            };
            return !present_possible;
        }
        if let Some(i) = crate::columnar::f64_field_index(field) {
            let (min, max, present, nan) = self.f64_zones[i][c];
            let null_matches = op == CmpOp::Ne && !lit.is_null();
            if null_matches && present < rows {
                return false;
            }
            if lit.is_null() {
                // Null literal: `!=` matches every present cell.
                return !(op == CmpOp::Ne && present > 0);
            }
            let Some(l) = lit.as_f64() else {
                // Non-numeric literal: kind-tag compare — conservative.
                return present == 0;
            };
            let finite = present > nan;
            // NaN cells compare `Equal` under `Value::compare`, so they
            // match Ne/Le/Ge.
            let nan_hit = nan > 0 && matches!(op, CmpOp::Ne | CmpOp::Le | CmpOp::Ge);
            let finite_hit = finite
                && match op {
                    CmpOp::Eq => l >= min && l <= max,
                    CmpOp::Ne => !(min == l && max == l),
                    CmpOp::Lt => min < l,
                    CmpOp::Le => min <= l,
                    CmpOp::Gt => max > l,
                    CmpOp::Ge => max >= l,
                };
            return !(nan_hit || finite_hit);
        }
        // Not a zone-mapped column: never prunable.
        false
    }
}

/// Code of `s` in a serialized dictionary (linear: footers are read
/// rarely, and only one literal per predicate is looked up).
fn dict_code(dict: &[Sym], s: &str) -> Option<u32> {
    dict.iter().position(|d| d.as_str() == s).map(|i| i as u32)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let b = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(b.try_into().ok()?))
}

fn get8(buf: &[u8], pos: &mut usize) -> Option<[u8; 8]> {
    let b = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    b.try_into().ok()
}

/// Identity and coverage of one sealed segment file.
#[derive(Debug, Clone)]
pub(crate) struct SegmentMeta {
    pub(crate) path: PathBuf,
    /// Shard count at seal time (coverage is defined in its terms).
    pub(crate) nshards: u32,
    pub(crate) shard: u32,
    /// First covered slot of the shard.
    pub(crate) start: u64,
    /// One past the last covered slot.
    pub(crate) end: u64,
    /// Rows per chunk at seal time.
    pub(crate) chunk: u32,
    pub(crate) n_docs: u32,
}

fn segment_name(nshards: u32, shard: u32, start: u64, end: u64) -> String {
    format!("seg-n{nshards:02}-s{shard:02}-r{start:010}-{end:010}.seg")
}

/// Write one sealed segment atomically: temp file, fsync, rename.
/// Returns the metadata of the new file.
pub(crate) fn write_segment(
    dir: &Path,
    nshards: u32,
    shard: u32,
    start: u64,
    chunk: u32,
    docs: &[Arc<Value>],
    footer: &ZoneTables,
) -> std::io::Result<SegmentMeta> {
    let end = start + docs.len() as u64;
    let path = dir.join(segment_name(nshards, shard, start, end));
    let tmp = path.with_extension("tmp");
    {
        let mut f = BufWriter::new(File::create(&tmp)?);
        f.write_all(MAGIC)?;
        f.write_all(&nshards.to_le_bytes())?;
        f.write_all(&shard.to_le_bytes())?;
        f.write_all(&start.to_le_bytes())?;
        f.write_all(&end.to_le_bytes())?;
        f.write_all(&chunk.to_le_bytes())?;
        f.write_all(&(docs.len() as u32).to_le_bytes())?;
        let mut payload = Vec::new();
        for doc in docs {
            payload.clear();
            encode_value(doc, &mut payload);
            f.write_all(&(payload.len() as u32).to_le_bytes())?;
            f.write_all(&crc32(&[&payload]).to_le_bytes())?;
            f.write_all(&payload)?;
        }
        let footer_bytes = footer.to_bytes();
        f.write_all(&footer_bytes)?;
        f.write_all(&(footer_bytes.len() as u32).to_le_bytes())?;
        f.write_all(&crc32(&[&footer_bytes]).to_le_bytes())?;
        f.write_all(TAIL_MAGIC)?;
        f.flush()?;
        f.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp, &path)?;
    sync_dir(dir);
    Ok(SegmentMeta {
        path,
        nshards,
        shard,
        start,
        end,
        chunk,
        n_docs: docs.len() as u32,
    })
}

fn corrupt(msg: &str, path: &Path) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("{msg}: {}", path.display()),
    )
}

/// Parse a segment file's header (the first 40 bytes).
fn read_header(path: &Path, f: &mut File) -> std::io::Result<SegmentMeta> {
    let mut head = [0u8; 6 + 4 + 4 + 8 + 8 + 4 + 4];
    f.read_exact(&mut head)
        .map_err(|_| corrupt("segment too short", path))?;
    if &head[..6] != MAGIC {
        return Err(corrupt("bad segment magic", path));
    }
    let u32_at = |o: usize| u32::from_le_bytes(head[o..o + 4].try_into().expect("4 bytes"));
    let u64_at = |o: usize| u64::from_le_bytes(head[o..o + 8].try_into().expect("8 bytes"));
    Ok(SegmentMeta {
        path: path.to_path_buf(),
        nshards: u32_at(6),
        shard: u32_at(10),
        start: u64_at(14),
        end: u64_at(22),
        chunk: u32_at(30),
        n_docs: u32_at(34),
    })
}

/// Read a segment's documents (slot order), verifying every checksum.
pub(crate) fn read_docs(meta: &SegmentMeta) -> std::io::Result<Vec<Value>> {
    let mut f = File::open(&meta.path)?;
    let hdr = read_header(&meta.path, &mut f)?;
    let mut rest = Vec::new();
    f.read_to_end(&mut rest)?;
    let mut docs = Vec::with_capacity(hdr.n_docs as usize);
    let mut pos = 0usize;
    for _ in 0..hdr.n_docs {
        let len =
            get_u32(&rest, &mut pos).ok_or_else(|| corrupt("torn document", &meta.path))? as usize;
        let crc = get_u32(&rest, &mut pos).ok_or_else(|| corrupt("torn document", &meta.path))?;
        let payload = rest
            .get(pos..pos + len)
            .ok_or_else(|| corrupt("torn document", &meta.path))?;
        pos += len;
        if crc32(&[payload]) != crc {
            return Err(corrupt("document checksum mismatch", &meta.path));
        }
        let mut dpos = 0usize;
        let doc = decode_value(payload, &mut dpos)
            .filter(|_| dpos == len)
            .ok_or_else(|| corrupt("undecodable document", &meta.path))?;
        docs.push(doc);
    }
    Ok(docs)
}

/// Read only a segment's footer (zone tables) — seek to the tail, never
/// touching the documents. This is what lets a scan prune a segment for
/// the cost of its footer.
pub(crate) fn read_footer(meta: &SegmentMeta) -> std::io::Result<ZoneTables> {
    let mut f = File::open(&meta.path)?;
    let size = f.metadata()?.len();
    if size < 14 {
        return Err(corrupt("segment too short for tail", &meta.path));
    }
    f.seek(SeekFrom::End(-14))?;
    let mut tail = [0u8; 14];
    f.read_exact(&mut tail)?;
    if &tail[8..] != TAIL_MAGIC {
        return Err(corrupt("bad segment tail magic", &meta.path));
    }
    let len = u32::from_le_bytes(tail[0..4].try_into().expect("4 bytes")) as u64;
    let crc = u32::from_le_bytes(tail[4..8].try_into().expect("4 bytes"));
    if size < 14 + len {
        return Err(corrupt("footer length overruns file", &meta.path));
    }
    f.seek(SeekFrom::End(-14 - len as i64))?;
    let mut bytes = vec![0u8; len as usize];
    f.read_exact(&mut bytes)?;
    if crc32(&[&bytes]) != crc {
        return Err(corrupt("footer checksum mismatch", &meta.path));
    }
    ZoneTables::from_bytes(&bytes).ok_or_else(|| corrupt("undecodable footer", &meta.path))
}

/// Whether the footer proves no document of this segment can satisfy
/// `field op lit` (frame comparison semantics) — i.e. every sealed
/// chunk's zone map excludes it. Conservative, like the in-memory
/// chunk pruning it is serialized from.
pub(crate) fn segment_prunes(
    meta: &SegmentMeta,
    zones: &ZoneTables,
    field: &str,
    op: CmpOp,
    lit: &Value,
) -> bool {
    let chunks = zones.chunk_decodable.len();
    (0..chunks).all(|c| {
        // Every sealed chunk is full by construction (seals happen at
        // chunk boundaries), so rows-per-chunk is exactly `chunk`.
        zones.chunk_decodable[c] == 0 || zones.chunk_skips(field, op, lit, c, meta.chunk)
    })
}

/// Scan `dir` for sealed segments, resolving compaction leftovers: if
/// one segment's coverage contains another's (same seal-epoch shard
/// count, same shard), the contained file is deleted — it is a fully
/// shadowed pre-compaction input whose removal crashed mid-way. Temp
/// files are removed too. Returns metas sorted by (nshards, shard,
/// start).
pub(crate) fn scan_dir(dir: &Path) -> std::io::Result<Vec<SegmentMeta>> {
    let mut metas: Vec<SegmentMeta> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".tmp") {
            let _ = std::fs::remove_file(&path);
            continue;
        }
        if !(name.starts_with("seg-") && name.ends_with(".seg")) {
            continue;
        }
        let mut f = File::open(&path)?;
        metas.push(read_header(&path, &mut f)?);
    }
    // Widest coverage first within a shard, so contained segments are
    // detected against already-kept survivors.
    metas.sort_by_key(|m| (m.nshards, m.shard, m.start, std::cmp::Reverse(m.end)));
    let mut kept: Vec<SegmentMeta> = Vec::new();
    for m in metas {
        let shadowed = kept.iter().any(|k| {
            k.nshards == m.nshards && k.shard == m.shard && k.start <= m.start && m.end <= k.end
        });
        if shadowed {
            let _ = std::fs::remove_file(&m.path);
        } else {
            kept.push(m);
        }
    }
    Ok(kept)
}

/// Merge a shard's contiguous sealed runs into one segment. `runs` must
/// be same-shard, same-epoch, sorted, and contiguous. Returns the
/// merged meta.
///
/// Chunks are never re-cut (every input is a whole-chunk run at the same
/// chunk size), so when the inputs' dictionaries are prefix-compatible —
/// always true for live seals of one shard, whose dictionary only grows —
/// the merged footer is just the inputs' chunk zones concatenated under
/// the last (largest) dictionary snapshot, and the documents are copied
/// as raw CRC-verified records without a decode + re-extract pass. The
/// fallback (non-compatible dictionaries, e.g. inputs from an older
/// compaction epoch, or an unreadable footer) rebuilds the footer from a
/// fresh columnar pass as before.
pub(crate) fn compact_runs(dir: &Path, runs: &[SegmentMeta]) -> std::io::Result<SegmentMeta> {
    debug_assert!(runs.len() >= 2);
    debug_assert!(runs.windows(2).all(|w| {
        w[0].end == w[1].start && w[0].shard == w[1].shard && w[0].nshards == w[1].nshards
    }));
    if let Ok(footers) = runs
        .iter()
        .map(read_footer)
        .collect::<std::io::Result<Vec<_>>>()
    {
        if dicts_prefix_compatible(&footers) {
            return compact_runs_reusing_footers(dir, runs, footers);
        }
    }
    let first = &runs[0];
    let chunk = first.chunk as usize;
    let mut docs: Vec<Arc<Value>> = Vec::new();
    for run in runs {
        docs.extend(read_docs(run)?.into_iter().map(Arc::new));
    }
    let mut cols = ColumnarShard::with_chunk(chunk);
    let (mut irregular, mut poison) = (0u16, 0u16);
    for doc in &docs {
        let report = cols.push_doc(doc);
        irregular |= report.irregular;
        poison |= report.poison;
    }
    let mut footer = cols
        .export_zone_tables(0, docs.len())
        .expect("merged run is whole chunks");
    footer.irregular = irregular;
    footer.poison = poison;
    let merged = write_segment(
        dir,
        first.nshards,
        first.shard,
        first.start,
        first.chunk,
        &docs,
        &footer,
    )?;
    for run in runs {
        let _ = std::fs::remove_file(&run.path);
    }
    sync_dir(dir);
    Ok(merged)
}

/// Whether every footer's dictionaries are a prefix of the next one's —
/// the condition under which their chunk zone code intervals all stay
/// meaningful under the last footer's dictionary snapshot.
fn dicts_prefix_compatible(footers: &[ZoneTables]) -> bool {
    footers.windows(2).all(|w| {
        w[0].str_dicts.len() == w[1].str_dicts.len()
            && w[0].str_dicts.iter().zip(&w[1].str_dicts).all(|(a, b)| {
                a.len() <= b.len() && a.iter().zip(b).all(|(x, y)| x.as_str() == y.as_str())
            })
    })
}

/// The footer-reuse merge: stream the inputs' record regions (verifying
/// every checksum, decoding nothing) into the merged file and write a
/// footer assembled from the inputs' already-serialized chunk zones.
fn compact_runs_reusing_footers(
    dir: &Path,
    runs: &[SegmentMeta],
    footers: Vec<ZoneTables>,
) -> std::io::Result<SegmentMeta> {
    let first = &runs[0];
    let last = runs.last().expect("at least two runs");
    let n_docs: u64 = runs.iter().map(|r| u64::from(r.n_docs)).sum();
    let path = dir.join(segment_name(
        first.nshards,
        first.shard,
        first.start,
        last.end,
    ));
    let tmp = path.with_extension("tmp");
    {
        let mut f = BufWriter::new(File::create(&tmp)?);
        f.write_all(MAGIC)?;
        f.write_all(&first.nshards.to_le_bytes())?;
        f.write_all(&first.shard.to_le_bytes())?;
        f.write_all(&first.start.to_le_bytes())?;
        f.write_all(&last.end.to_le_bytes())?;
        f.write_all(&first.chunk.to_le_bytes())?;
        f.write_all(&(n_docs as u32).to_le_bytes())?;
        for run in runs {
            f.write_all(&read_record_region(run)?)?;
        }
        let merged = merge_footers(footers);
        let footer_bytes = merged.to_bytes();
        f.write_all(&footer_bytes)?;
        f.write_all(&(footer_bytes.len() as u32).to_le_bytes())?;
        f.write_all(&crc32(&[&footer_bytes]).to_le_bytes())?;
        f.write_all(TAIL_MAGIC)?;
        f.flush()?;
        f.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp, &path)?;
    sync_dir(dir);
    for run in runs {
        let _ = std::fs::remove_file(&run.path);
    }
    sync_dir(dir);
    Ok(SegmentMeta {
        path,
        nshards: first.nshards,
        shard: first.shard,
        start: first.start,
        end: last.end,
        chunk: first.chunk,
        n_docs: n_docs as u32,
    })
}

/// A segment's raw record region (`[len][crc][payload]*`), with every
/// record's structure and checksum verified but no payload decoded.
fn read_record_region(meta: &SegmentMeta) -> std::io::Result<Vec<u8>> {
    let mut f = File::open(&meta.path)?;
    let hdr = read_header(&meta.path, &mut f)?;
    let mut rest = Vec::new();
    f.read_to_end(&mut rest)?;
    let mut pos = 0usize;
    for _ in 0..hdr.n_docs {
        let len =
            get_u32(&rest, &mut pos).ok_or_else(|| corrupt("torn document", &meta.path))? as usize;
        let crc = get_u32(&rest, &mut pos).ok_or_else(|| corrupt("torn document", &meta.path))?;
        let payload = rest
            .get(pos..pos + len)
            .ok_or_else(|| corrupt("torn document", &meta.path))?;
        pos += len;
        if crc32(&[payload]) != crc {
            return Err(corrupt("document checksum mismatch", &meta.path));
        }
    }
    rest.truncate(pos);
    Ok(rest)
}

/// Concatenate prefix-compatible footers: the last dictionary snapshot
/// maps every code the earlier zones reference, chunk zones append in
/// slot order, and the store-wide pushdown masks OR together.
fn merge_footers(mut footers: Vec<ZoneTables>) -> ZoneTables {
    let last = footers.pop().expect("at least two footers");
    let mut merged = ZoneTables {
        str_dicts: last.str_dicts,
        str_zones: vec![Vec::new(); last.str_zones.len()],
        f64_zones: vec![Vec::new(); last.f64_zones.len()],
        chunk_decodable: Vec::new(),
        irregular: last.irregular,
        poison: last.poison,
    };
    for ft in footers.into_iter().chain(std::iter::once(ZoneTables {
        str_dicts: Vec::new(),
        str_zones: last.str_zones,
        f64_zones: last.f64_zones,
        chunk_decodable: last.chunk_decodable,
        irregular: 0,
        poison: 0,
    })) {
        for (i, zones) in ft.str_zones.into_iter().enumerate() {
            merged.str_zones[i].extend(zones);
        }
        for (i, zones) in ft.f64_zones.into_iter().enumerate() {
            merged.f64_zones[i].extend(zones);
        }
        merged.chunk_decodable.extend(ft.chunk_decodable);
        merged.irregular |= ft.irregular;
        merged.poison |= ft.poison;
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::cmp_matches;
    use prov_model::TaskMessageBuilder;

    fn corpus(n: usize) -> Vec<Arc<Value>> {
        (0..n)
            .map(|i| {
                let mut b = TaskMessageBuilder::new(
                    format!("t{i}"),
                    format!("wf-{}", i / 10),
                    format!("act-{}", i % 5),
                )
                .span(i as f64, i as f64 + 0.5);
                if i % 7 == 0 {
                    b = b.agent("agent-x");
                }
                Arc::new(b.build().to_value())
            })
            .collect()
    }

    fn tables_for(docs: &[Arc<Value>], chunk: usize) -> (ColumnarShard, ZoneTables) {
        let mut cols = ColumnarShard::with_chunk(chunk);
        for d in docs {
            cols.push_doc(d);
        }
        let sealed = (docs.len() / chunk) * chunk;
        let t = cols.export_zone_tables(0, sealed).unwrap();
        (cols, t)
    }

    #[test]
    fn footer_roundtrips_byte_identically() {
        let docs = corpus(50);
        let (_, tables) = tables_for(&docs, 8);
        let bytes = tables.to_bytes();
        let back = ZoneTables::from_bytes(&bytes).unwrap();
        assert_eq!(bytes, back.to_bytes());
        assert_eq!(tables.chunk_decodable, back.chunk_decodable);
        assert_eq!(tables.str_zones, back.str_zones);
        // Float zones carry infinities for empty intervals; compare by
        // bits via the canonical bytes (already asserted) and by value
        // where finite.
        assert_eq!(tables.f64_zones.len(), back.f64_zones.len());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Random sealed prefixes of random corpora (NaN spans included):
        /// footer serialization must be a byte-identical fixpoint through
        /// `from_bytes ∘ to_bytes`.
        #[test]
        fn footer_roundtrip_is_byte_identical_on_random_corpora(
            n in 1usize..120,
            chunk in 2usize..17,
            nan_every in 2usize..9,
        ) {
            let docs: Vec<Arc<Value>> = (0..n)
                .map(|i| {
                    let start = if i % nan_every == 0 { f64::NAN } else { i as f64 };
                    Arc::new(
                        TaskMessageBuilder::new(
                            format!("t{i}"),
                            format!("wf-{}", i % 4),
                            format!("act-{}", i % 3),
                        )
                        .span(start, i as f64 + 0.25)
                        .build()
                        .to_value(),
                    )
                })
                .collect();
            let (_, tables) = tables_for(&docs, chunk);
            let bytes = tables.to_bytes();
            let back = ZoneTables::from_bytes(&bytes).expect("footer decodes");
            proptest::prop_assert_eq!(bytes, back.to_bytes());
        }
    }

    #[test]
    fn segment_file_roundtrips_and_footer_prunes_soundly() {
        let dir = std::env::temp_dir().join(format!("provdb-seg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let chunk = 8usize;
        let docs = corpus(64);
        let (cols, tables) = tables_for(&docs, chunk);
        let meta = write_segment(&dir, 1, 0, 0, chunk as u32, &docs, &tables).unwrap();

        // Documents survive bit-exactly (canonical codec).
        let back = read_docs(&meta).unwrap();
        assert_eq!(back.len(), docs.len());
        for (a, b) in docs.iter().zip(&back) {
            let (mut ea, mut eb) = (Vec::new(), Vec::new());
            encode_value(a, &mut ea);
            encode_value(b, &mut eb);
            assert_eq!(ea, eb);
        }

        // Footer reads without touching documents and round-trips.
        let footer = read_footer(&meta).unwrap();
        assert_eq!(footer.to_bytes(), tables.to_bytes());

        // Pruning is sound: a pruned segment provably has no matching
        // frame cell for the predicate.
        let preds: Vec<(&str, CmpOp, Value)> = vec![
            ("activity_id", CmpOp::Eq, Value::from("act-3")),
            ("activity_id", CmpOp::Eq, Value::from("nope")),
            ("task_id", CmpOp::Eq, Value::from("t63")),
            ("started_at", CmpOp::Gt, Value::Float(100.0)),
            ("started_at", CmpOp::Lt, Value::Float(0.0)),
            ("started_at", CmpOp::Le, Value::Float(3.0)),
            ("hostname", CmpOp::Ne, Value::from("localhost")),
            ("duration", CmpOp::Eq, Value::Float(0.5)),
        ];
        let mut pruned_any = false;
        for (field, op, lit) in &preds {
            if segment_prunes(&meta, &footer, field, *op, lit) {
                pruned_any = true;
                let f = crate::columnar::lookup(field).unwrap();
                for slot in 0..docs.len() {
                    assert!(
                        !cmp_matches(&cols.value(slot, f), *op, lit),
                        "footer pruned a matching row: {field} {op:?} {lit:?} slot {slot}"
                    );
                }
            }
        }
        assert!(pruned_any, "no predicate pruned — test corpus too weak");

        // scan_dir finds it; compaction of two halves equals the whole.
        let metas = scan_dir(&dir).unwrap();
        assert_eq!(metas.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_merges_contiguous_runs() {
        let dir = std::env::temp_dir().join(format!("provdb-seg-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let chunk = 8usize;
        let docs = corpus(48);
        let (_, t1) = tables_for(&docs[..16], chunk);
        let m1 = write_segment(&dir, 1, 0, 0, chunk as u32, &docs[..16], &t1).unwrap();
        // Second run: zones exported from a shard that saw all 32 rows,
        // sealed range [16, 32) — mirrors the live incremental seal.
        let mut cols = ColumnarShard::with_chunk(chunk);
        for d in &docs[..32] {
            cols.push_doc(d);
        }
        let t2 = cols.export_zone_tables(16, 32).unwrap();
        let m2 = write_segment(&dir, 1, 0, 16, chunk as u32, &docs[16..32], &t2).unwrap();

        let merged = compact_runs(&dir, &[m1, m2]).unwrap();
        assert_eq!((merged.start, merged.end), (0, 32));
        let back = read_docs(&merged).unwrap();
        assert_eq!(back.len(), 32);
        // Inputs deleted; only the merged file (and nothing else) left.
        let metas = scan_dir(&dir).unwrap();
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].end - metas[0].start, 32);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
