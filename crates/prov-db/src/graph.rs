//! Property graph — the Neo4j-shaped backend ("graph traversal queries",
//! §2.3). Holds PROV nodes/edges and answers lineage and path queries the
//! DataFrame engine cannot express (§5.4 limitations discussion).

use parking_lot::RwLock;
use prov_model::{Map, Value};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A node in the property graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphNode {
    /// Unique id.
    pub id: String,
    /// Label, e.g. `prov:Activity`.
    pub label: String,
    /// Arbitrary properties as a shared object value: the ingest path hands
    /// the graph the *same* `Arc` the document store holds, so node
    /// properties cost no per-node map construction.
    pub props: Arc<Value>,
}

impl GraphNode {
    /// Property lookup (`None` for absent keys or non-object props).
    pub fn prop(&self, key: &str) -> Option<&Value> {
        self.props.get(key)
    }
}

/// A directed, typed edge.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphEdge {
    /// Source node id.
    pub from: String,
    /// Target node id.
    pub to: String,
    /// Relation type, e.g. `prov:wasInformedBy`.
    pub rel: String,
}

#[derive(Default)]
pub(crate) struct Inner {
    pub(crate) nodes: HashMap<String, GraphNode>,
    pub(crate) out_edges: HashMap<String, Vec<GraphEdge>>,
    pub(crate) in_edges: HashMap<String, Vec<GraphEdge>>,
    pub(crate) edge_count: usize,
}

/// A batch of node upserts and edge inserts applied under one lock
/// acquisition (see [`GraphStore::apply_batch`]). Build it lock-free on the
/// producer side, then apply in one shot.
#[derive(Default)]
pub struct GraphBatch {
    nodes: Vec<GraphNode>,
    edges: Vec<GraphEdge>,
}

impl GraphBatch {
    /// Empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a node insert-or-replace.
    pub fn upsert_node(&mut self, id: impl Into<String>, label: impl Into<String>, props: Map) {
        self.upsert_node_shared(id, label, Arc::new(Value::object(props)));
    }

    /// Queue a node insert-or-replace with an already-shared property
    /// object (the zero-copy ingest path: pass the document itself).
    pub fn upsert_node_shared(
        &mut self,
        id: impl Into<String>,
        label: impl Into<String>,
        props: Arc<Value>,
    ) {
        self.nodes.push(GraphNode {
            id: id.into(),
            label: label.into(),
            props,
        });
    }

    /// Queue a directed edge.
    pub fn add_edge(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        rel: impl Into<String>,
    ) {
        self.edges.push(GraphEdge {
            from: from.into(),
            to: to.into(),
            rel: rel.into(),
        });
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }

    /// Queued node + edge count.
    pub fn len(&self) -> usize {
        self.nodes.len() + self.edges.len()
    }
}

/// Thread-safe property graph with traversal queries.
#[derive(Default)]
pub struct GraphStore {
    inner: RwLock<Inner>,
}

impl GraphStore {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a node.
    pub fn upsert_node(&self, id: impl Into<String>, label: impl Into<String>, props: Map) {
        let id = id.into();
        let node = GraphNode {
            id: id.clone(),
            label: label.into(),
            props: Arc::new(Value::object(props)),
        };
        self.inner.write().nodes.insert(id, node);
    }

    /// Add a directed edge.
    pub fn add_edge(&self, from: impl Into<String>, to: impl Into<String>, rel: impl Into<String>) {
        let e = GraphEdge {
            from: from.into(),
            to: to.into(),
            rel: rel.into(),
        };
        let mut g = self.inner.write();
        g.out_edges
            .entry(e.from.clone())
            .or_default()
            .push(e.clone());
        g.in_edges.entry(e.to.clone()).or_default().push(e);
        g.edge_count += 1;
    }

    /// Apply a pre-built batch of upserts and edges under a **single**
    /// write-lock acquisition, in queued order. The per-message ingest path
    /// used to take one lock per node plus one per edge; a keeper flushing a
    /// 64-message batch now locks the graph once instead of ~192 times.
    pub fn apply_batch(&self, batch: GraphBatch) {
        if batch.is_empty() {
            return;
        }
        let mut g = self.inner.write();
        g.nodes.reserve(batch.nodes.len());
        for node in batch.nodes {
            g.nodes.insert(node.id.clone(), node);
        }
        for e in batch.edges {
            g.out_edges
                .entry(e.from.clone())
                .or_default()
                .push(e.clone());
            g.in_edges.entry(e.to.clone()).or_default().push(e);
            g.edge_count += 1;
        }
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// Edge count.
    pub fn edge_count(&self) -> usize {
        self.inner.read().edge_count
    }

    /// Fetch a node.
    pub fn node(&self, id: &str) -> Option<GraphNode> {
        self.inner.read().nodes.get(id).cloned()
    }

    /// Outgoing neighbors via a relation (empty `rel` = any).
    pub fn neighbors_out(&self, id: &str, rel: &str) -> Vec<String> {
        let g = self.inner.read();
        g.out_edges
            .get(id)
            .map(|es| {
                es.iter()
                    .filter(|e| rel.is_empty() || e.rel == rel)
                    .map(|e| e.to.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Incoming neighbors via a relation (empty `rel` = any).
    pub fn neighbors_in(&self, id: &str, rel: &str) -> Vec<String> {
        let g = self.inner.read();
        g.in_edges
            .get(id)
            .map(|es| {
                es.iter()
                    .filter(|e| rel.is_empty() || e.rel == rel)
                    .map(|e| e.from.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// BFS over outgoing `rel` edges from `start`, up to `max_depth` hops.
    /// Returns reached node ids with their hop distance (start excluded).
    ///
    /// Holds the read lock once for the whole walk and works on `&str`
    /// borrows of the stored edges; the only `String` allocations are the
    /// final emitted ids (the pre-PR8 version reacquired the lock and
    /// cloned a `String` per visited node — pathological on large graphs,
    /// and this method is the differential oracle the CSR kernels are
    /// tested against).
    pub fn traverse(&self, start: &str, rel: &str, max_depth: usize) -> Vec<(String, usize)> {
        let g = self.inner.read();
        Self::bfs_locked(&g.out_edges, |e| (&e.rel, &e.to), start, rel, max_depth)
    }

    /// Multi-hop causal chain: all upstream activities that (transitively)
    /// informed `task`, following `prov:wasInformedBy`.
    pub fn upstream_lineage(&self, task: &str, max_depth: usize) -> Vec<(String, usize)> {
        self.traverse(task, "prov:wasInformedBy", max_depth)
    }

    /// Downstream impact: activities informed by `task`.
    pub fn downstream_impact(&self, task: &str, max_depth: usize) -> Vec<(String, usize)> {
        let g = self.inner.read();
        Self::bfs_locked(
            &g.in_edges,
            |e| (&e.rel, &e.from),
            task,
            "prov:wasInformedBy",
            max_depth,
        )
    }

    /// One-guard BFS over an adjacency map (`rel` empty = any relation),
    /// shared by the directed traversals above.
    fn bfs_locked<'g>(
        adj: &'g HashMap<String, Vec<GraphEdge>>,
        endpoint: impl Fn(&'g GraphEdge) -> (&'g String, &'g String),
        start: &str,
        rel: &str,
        max_depth: usize,
    ) -> Vec<(String, usize)> {
        let mut out: Vec<(&str, usize)> = Vec::new();
        let mut seen: HashSet<&str> = HashSet::from([start]);
        let mut queue: VecDeque<(&str, usize)> = VecDeque::from([(start, 0)]);
        while let Some((cur, depth)) = queue.pop_front() {
            if depth == max_depth {
                continue;
            }
            if let Some(es) = adj.get(cur) {
                for e in es {
                    let (erel, next) = endpoint(e);
                    if (rel.is_empty() || erel == rel) && seen.insert(next) {
                        out.push((next, depth + 1));
                        queue.push_back((next, depth + 1));
                    }
                }
            }
        }
        out.into_iter().map(|(id, d)| (id.to_string(), d)).collect()
    }

    /// The k-hop neighborhood of `start` over any relation, treating edges
    /// as undirected: BFS emitting `(id, hop)` with out-neighbors before
    /// in-neighbors per visited node, start excluded. This is the
    /// adjacency-map reference the CSR `khop` kernel is tested against.
    pub fn khop(&self, start: &str, k: usize) -> Vec<(String, usize)> {
        let g = self.inner.read();
        let mut out: Vec<(&str, usize)> = Vec::new();
        let mut seen: HashSet<&str> = HashSet::from([start]);
        let mut queue: VecDeque<(&str, usize)> = VecDeque::from([(start, 0)]);
        while let Some((cur, depth)) = queue.pop_front() {
            if depth == k {
                continue;
            }
            let outs = g.out_edges.get(cur).into_iter().flatten().map(|e| &e.to);
            let ins = g.in_edges.get(cur).into_iter().flatten().map(|e| &e.from);
            for next in outs.chain(ins) {
                if seen.insert(next) {
                    out.push((next, depth + 1));
                    queue.push_back((next, depth + 1));
                }
            }
        }
        out.into_iter().map(|(id, d)| (id.to_string(), d)).collect()
    }

    /// Shortest directed path between two nodes over any relation.
    ///
    /// Single-guard forward BFS with `&str` parent links; ties break by
    /// global BFS discovery order (edge insertion order per node), which
    /// the CSR forward kernel reproduces exactly.
    pub fn shortest_path(&self, from: &str, to: &str) -> Option<Vec<String>> {
        if from == to {
            return Some(vec![from.to_string()]);
        }
        let g = self.inner.read();
        let mut prev: HashMap<&str, &str> = HashMap::new();
        let mut queue: VecDeque<&str> = VecDeque::from([from]);
        let mut seen: HashSet<&str> = HashSet::from([from]);
        while let Some(cur) = queue.pop_front() {
            if let Some(es) = g.out_edges.get(cur) {
                for e in es {
                    let next = e.to.as_str();
                    if !seen.insert(next) {
                        continue;
                    }
                    prev.insert(next, cur);
                    if next == to {
                        let mut path = vec![next];
                        let mut at = next;
                        while let Some(p) = prev.get(at) {
                            path.push(p);
                            at = p;
                        }
                        path.reverse();
                        return Some(path.into_iter().map(str::to_string).collect());
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Read access to the adjacency state under one guard — the CSR
    /// snapshot builder compacts from here ([`crate::csr`]).
    pub(crate) fn with_inner<R>(&self, f: impl FnOnce(&Inner) -> R) -> R {
        f(&self.inner.read())
    }

    /// Nodes with a given label.
    pub fn nodes_with_label(&self, label: &str) -> Vec<GraphNode> {
        self.inner
            .read()
            .nodes
            .values()
            .filter(|n| n.label == label)
            .cloned()
            .collect()
    }

    /// Nodes whose property `key` equals `value`.
    pub fn nodes_with_prop(&self, key: &str, value: &Value) -> Vec<GraphNode> {
        self.inner
            .read()
            .nodes
            .values()
            .filter(|n| n.props.get(key) == Some(value))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a → b → c → d chain plus a side branch b → e (wasInformedBy points
    /// from consumer to producer: d informs nothing; d wasInformedBy c...).
    fn chain() -> GraphStore {
        let g = GraphStore::new();
        for id in ["a", "b", "c", "d", "e"] {
            g.upsert_node(id, "prov:Activity", Map::new());
        }
        g.add_edge("b", "a", "prov:wasInformedBy");
        g.add_edge("c", "b", "prov:wasInformedBy");
        g.add_edge("d", "c", "prov:wasInformedBy");
        g.add_edge("e", "b", "prov:wasInformedBy");
        g
    }

    #[test]
    fn counts() {
        let g = chain();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn upstream_lineage_with_depth() {
        let g = chain();
        let up = g.upstream_lineage("d", 10);
        let ids: Vec<&str> = up.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, vec!["c", "b", "a"]);
        assert_eq!(up[2].1, 3); // a is 3 hops up
                                // Depth-limited traversal stops early.
        assert_eq!(g.upstream_lineage("d", 1).len(), 1);
    }

    #[test]
    fn downstream_impact() {
        let g = chain();
        let down = g.downstream_impact("b", 10);
        let ids: HashSet<&str> = down.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(ids, HashSet::from(["c", "d", "e"]));
    }

    #[test]
    fn shortest_path_found_and_missing() {
        let g = chain();
        assert_eq!(g.shortest_path("d", "a").unwrap(), vec!["d", "c", "b", "a"]);
        assert!(g.shortest_path("a", "d").is_none()); // edges are directed
        assert_eq!(g.shortest_path("a", "a").unwrap(), vec!["a"]);
    }

    #[test]
    fn label_and_prop_queries() {
        let g = chain();
        let mut props = Map::new();
        props.insert("hostname".into(), Value::from("n7"));
        g.upsert_node("agent-1", "prov:Agent", props);
        assert_eq!(g.nodes_with_label("prov:Agent").len(), 1);
        assert_eq!(
            g.nodes_with_prop("hostname", &Value::from("n7"))[0].id,
            "agent-1"
        );
    }

    #[test]
    fn batch_apply_matches_incremental() {
        let g = chain();
        let batched = GraphStore::new();
        let mut batch = GraphBatch::new();
        for id in ["a", "b", "c", "d", "e"] {
            batch.upsert_node(id, "prov:Activity", Map::new());
        }
        batch.add_edge("b", "a", "prov:wasInformedBy");
        batch.add_edge("c", "b", "prov:wasInformedBy");
        batch.add_edge("d", "c", "prov:wasInformedBy");
        batch.add_edge("e", "b", "prov:wasInformedBy");
        assert_eq!(batch.len(), 9);
        batched.apply_batch(batch);
        assert_eq!(batched.node_count(), g.node_count());
        assert_eq!(batched.edge_count(), g.edge_count());
        assert_eq!(
            batched.upstream_lineage("d", 10),
            g.upstream_lineage("d", 10)
        );
    }

    #[test]
    fn cycles_terminate() {
        let g = GraphStore::new();
        g.upsert_node("x", "prov:Activity", Map::new());
        g.upsert_node("y", "prov:Activity", Map::new());
        g.add_edge("x", "y", "prov:wasInformedBy");
        g.add_edge("y", "x", "prov:wasInformedBy");
        // Must not loop forever.
        assert_eq!(g.upstream_lineage("x", 100).len(), 1);
    }
}
