//! Append-only write-ahead log for the streaming accept path.
//!
//! The facade's LSM-style ingest hands batches of accepted messages to
//! [`crate::store::ProvenanceDatabase`]'s materialization pass; when the
//! database was opened durably ([`ProvenanceDatabase::open`]), that pass
//! serializes every drained document into this log *before* the in-memory
//! views observe it. A crash therefore loses at most the pending log that
//! was never handed over — everything a flush accepted is replayable.
//!
//! ## Record format
//!
//! The log is a header followed by length-prefixed, checksummed records:
//!
//! ```text
//! "PWAL1\n"                                      file header (6 bytes)
//! [seq: u64 LE][len: u32 LE][crc: u32 LE][payload: len bytes]   × N
//! ```
//!
//! * `seq` is the document's **arrival index** (0-based count of
//!   materialized messages since the store was created). Recovery keys
//!   everything on this: sealed segments name the arrival indexes they
//!   cover, so a record that survived a half-finished seal rotation is
//!   simply deduplicated instead of double-applied.
//! * `crc` is CRC-32 (IEEE) over the 8 `seq` bytes followed by the
//!   payload, so a torn header is as detectable as a torn payload.
//! * `payload` is the document [`Value`] in the binary codec below — the
//!   exact object `TaskMessage::to_value` produced, so a replayed store
//!   rebuilds bit-identical documents (NaN payloads included, which the
//!   textual JSON writer cannot represent).
//!
//! Replay accepts the longest valid prefix: the first short read, length
//! overrun, checksum mismatch, or undecodable payload ends the log. A
//! crash mid-append is thus indistinguishable from a clean shutdown one
//! record earlier.
//!
//! ## Sync policy
//!
//! `PROVDB_WAL_SYNC` picks the durability/throughput trade-off:
//! `always` issues one `fdatasync` per record, `batch` (the default) one
//! per drained batch. Recovery is identical under both; the policy only
//! bounds how much a *power* failure can lose (process crashes lose
//! nothing that was written, synced or not).
//!
//! ## Binary value codec
//!
//! One tag byte per node, little-endian fixed-width scalars, `u32`
//! length prefixes: `0` null, `1`/`2` false/true, `3` int (`i64`), `4`
//! float (raw `f64` bits — lossless for NaN and signed zero), `5` string
//! (len + UTF-8), `6` array (count + items), `7` object (count +
//! alternating key/value, keys in the map's sorted order). Encoding is
//! canonical — one byte string per value — which is what lets the
//! segment-footer round-trip tests assert byte identity.

use prov_model::{Map, Sym, Value};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// File header magic.
const MAGIC: &[u8; 6] = b"PWAL1\n";

/// How eagerly WAL appends reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every record — a power failure loses nothing
    /// that was accepted by a flush.
    Always,
    /// `fdatasync` once per drained batch (default) — a power failure
    /// can lose the tail of the last batch; a process crash loses
    /// nothing.
    Batch,
}

impl SyncPolicy {
    /// Resolve from `PROVDB_WAL_SYNC` (`always` / `batch`,
    /// case-insensitive); anything else — including unset — is `Batch`.
    pub fn from_env() -> Self {
        match std::env::var("PROVDB_WAL_SYNC") {
            Ok(v) if v.trim().eq_ignore_ascii_case("always") => SyncPolicy::Always,
            _ => SyncPolicy::Batch,
        }
    }
}

// ---------------------------------------------------------------- CRC-32

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 over `parts`, concatenated.
pub(crate) fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

// ------------------------------------------------------------ value codec

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_ARRAY: u8 = 6;
const TAG_OBJECT: u8 = 7;

/// Append the canonical binary encoding of `v` to `out`.
pub(crate) fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            // Raw bits: NaN payloads and -0.0 survive, unlike the JSON
            // writer (which maps non-finite floats to `null`).
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_bytes(s.as_str().as_bytes(), out);
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items.iter() {
                encode_value(item, out);
            }
        }
        Value::Object(map) => {
            out.push(TAG_OBJECT);
            out.extend_from_slice(&(map.len() as u32).to_le_bytes());
            for (k, val) in map.iter() {
                encode_bytes(k.as_str().as_bytes(), out);
                encode_value(val, out);
            }
        }
    }
}

fn encode_bytes(b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Decode one value from `buf` starting at `*pos`, advancing `*pos`.
/// `None` on any malformed input (recovery treats it as a torn record).
pub(crate) fn decode_value(buf: &[u8], pos: &mut usize) -> Option<Value> {
    let tag = *buf.get(*pos)?;
    *pos += 1;
    match tag {
        TAG_NULL => Some(Value::Null),
        TAG_FALSE => Some(Value::Bool(false)),
        TAG_TRUE => Some(Value::Bool(true)),
        TAG_INT => Some(Value::Int(i64::from_le_bytes(take8(buf, pos)?))),
        TAG_FLOAT => Some(Value::Float(f64::from_bits(u64::from_le_bytes(take8(
            buf, pos,
        )?)))),
        TAG_STR => Some(Value::Str(decode_sym(buf, pos)?)),
        TAG_ARRAY => {
            let n = u32::from_le_bytes(take4(buf, pos)?) as usize;
            // Cheap sanity bound: each element costs at least one byte.
            if n > buf.len() - *pos {
                return None;
            }
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(buf, pos)?);
            }
            Some(Value::array(items))
        }
        TAG_OBJECT => {
            let n = u32::from_le_bytes(take4(buf, pos)?) as usize;
            if n > buf.len() - *pos {
                return None;
            }
            let mut map = Map::new();
            for _ in 0..n {
                let key = decode_sym(buf, pos)?;
                let val = decode_value(buf, pos)?;
                // Keys were written in sorted order, so this takes the
                // append fast path of the flat map.
                map.insert(key, val);
            }
            Some(Value::object(map))
        }
        _ => None,
    }
}

fn decode_sym(buf: &[u8], pos: &mut usize) -> Option<Sym> {
    let len = u32::from_le_bytes(take4(buf, pos)?) as usize;
    let bytes = buf.get(*pos..*pos + len)?;
    *pos += len;
    Some(Sym::from(std::str::from_utf8(bytes).ok()?))
}

fn take4(buf: &[u8], pos: &mut usize) -> Option<[u8; 4]> {
    let b = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    b.try_into().ok()
}

fn take8(buf: &[u8], pos: &mut usize) -> Option<[u8; 8]> {
    let b = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    b.try_into().ok()
}

// ---------------------------------------------------------------- writer

/// Appender over the durable directory's `wal.log`.
///
/// Carries the crash-point injection hook: when `PROVDB_CRASH_AFTER=<n>`
/// is set, the process syncs and aborts immediately after the `n`-th
/// record written by this process reaches the file — the harness's
/// simulated crash, placed at the worst possible spot (mid-batch, views
/// half-applied).
pub(crate) struct WalWriter {
    file: BufWriter<File>,
    sync: SyncPolicy,
    /// Records written by this process (drives crash injection).
    written: u64,
    crash_after: Option<u64>,
}

impl WalWriter {
    /// Open (or create) the log at `path` for appending. A fresh or
    /// empty file gets the header; an existing one is trusted — replay
    /// validated it before the writer is attached.
    pub(crate) fn open(path: &Path, sync: SyncPolicy) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let fresh = file.metadata()?.len() == 0;
        let mut w = Self {
            file: BufWriter::new(file),
            sync,
            written: 0,
            crash_after: std::env::var("PROVDB_CRASH_AFTER")
                .ok()
                .and_then(|v| v.trim().parse().ok()),
        };
        if fresh {
            w.file.write_all(MAGIC)?;
            w.file.flush()?;
        }
        Ok(w)
    }

    /// Append one record batch: `docs[i]` gets arrival index
    /// `base_seq + i`. Honors the sync policy and the crash-injection
    /// hook; returns only after every record is at least in the OS.
    pub(crate) fn append(
        &mut self,
        base_seq: u64,
        docs: &[std::sync::Arc<Value>],
    ) -> std::io::Result<()> {
        let mut payload = Vec::new();
        for (i, doc) in docs.iter().enumerate() {
            payload.clear();
            encode_value(doc, &mut payload);
            let seq = base_seq + i as u64;
            let seq_bytes = seq.to_le_bytes();
            let crc = crc32(&[&seq_bytes, &payload]);
            self.file.write_all(&seq_bytes)?;
            self.file.write_all(&(payload.len() as u32).to_le_bytes())?;
            self.file.write_all(&crc.to_le_bytes())?;
            self.file.write_all(&payload)?;
            self.written += 1;
            if self.sync == SyncPolicy::Always {
                self.file.flush()?;
                self.file.get_ref().sync_data()?;
            }
            if let Some(n) = self.crash_after {
                if self.written >= n {
                    // Simulated crash: make exactly these records
                    // durable, then die without unwinding.
                    let _ = self.file.flush();
                    let _ = self.file.get_ref().sync_data();
                    std::process::abort();
                }
            }
        }
        self.file.flush()?;
        if self.sync == SyncPolicy::Batch {
            self.file.get_ref().sync_data()?;
        }
        Ok(())
    }

    /// Records written by this process so far (crash-injection counter).
    pub(crate) fn written(&self) -> u64 {
        self.written
    }

    /// Carry the crash-injection counter across a rotation: the fresh
    /// writer must keep counting from where the rotated one stopped, or
    /// `PROVDB_CRASH_AFTER` would reset at every seal.
    pub(crate) fn set_written(&mut self, written: u64) {
        self.written = written;
    }
}

// ---------------------------------------------------------------- reader

/// One replayable record: arrival index + raw payload bytes.
pub(crate) struct RawRecord {
    pub(crate) seq: u64,
    pub(crate) payload: Vec<u8>,
}

impl RawRecord {
    /// Decode the payload into the document value.
    pub(crate) fn decode(&self) -> Option<Value> {
        let mut pos = 0;
        let v = decode_value(&self.payload, &mut pos)?;
        (pos == self.payload.len()).then_some(v)
    }
}

/// Read the longest valid record prefix of the log at `path`. A missing
/// file is an empty log; a malformed header is treated as empty rather
/// than an error (the file is rewritten on the next rotation). Torn or
/// corrupt tails end the prefix silently — that is the crash contract.
pub(crate) fn read_records(path: &Path) -> std::io::Result<Vec<RawRecord>> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    }
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Ok(Vec::new());
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    while let Some(seq_bytes) = buf.get(pos..pos + 8) {
        let Some(len_bytes) = buf.get(pos + 8..pos + 12) else {
            break;
        };
        let Some(crc_bytes) = buf.get(pos + 12..pos + 16) else {
            break;
        };
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        let Some(payload) = buf.get(pos + 16..pos + 16 + len) else {
            break;
        };
        let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(&[seq_bytes, payload]) != crc {
            break;
        }
        records.push(RawRecord {
            seq: u64::from_le_bytes(seq_bytes.try_into().expect("8 bytes")),
            payload: payload.to_vec(),
        });
        pos += 16 + len;
    }
    Ok(records)
}

/// Atomically replace the log with `records` (seal rotation: the caller
/// passes the tail not yet covered by sealed segments). Writes a fresh
/// log beside the old one, syncs it, and renames it over `path`.
pub(crate) fn rewrite(path: &Path, records: &[RawRecord]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = BufWriter::new(File::create(&tmp)?);
        f.write_all(MAGIC)?;
        for r in records {
            let seq_bytes = r.seq.to_le_bytes();
            let crc = crc32(&[&seq_bytes, &r.payload]);
            f.write_all(&seq_bytes)?;
            f.write_all(&(r.payload.len() as u32).to_le_bytes())?;
            f.write_all(&crc.to_le_bytes())?;
            f.write_all(&r.payload)?;
        }
        f.flush()?;
        f.get_ref().sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_dir(path.parent().unwrap_or(Path::new(".")));
    Ok(())
}

/// Best-effort directory fsync after a rename (ignored on failure —
/// some filesystems refuse directory handles).
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn doc() -> Value {
        let mut m = Map::new();
        m.insert(Sym::from("a"), Value::Int(-7));
        m.insert(Sym::from("b"), Value::Float(f64::NAN));
        m.insert(Sym::from("c"), Value::Str(Sym::from("héllo")));
        m.insert(
            Sym::from("d"),
            Value::array(vec![Value::Null, Value::Bool(true), Value::Float(-0.0)]),
        );
        Value::object(m)
    }

    #[test]
    fn codec_roundtrips_bit_exactly() {
        let v = doc();
        let mut bytes = Vec::new();
        encode_value(&v, &mut bytes);
        let mut pos = 0;
        let back = decode_value(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        // NaN != NaN under PartialEq, so compare re-encodings instead:
        // the codec is canonical, so bit-identical bytes ⇔ same value.
        let mut again = Vec::new();
        encode_value(&back, &mut again);
        assert_eq!(bytes, again);
        // And -0.0 / NaN bits specifically survived.
        let b = back.get("b").unwrap();
        assert!(matches!(b, Value::Float(f) if f.is_nan()));
        let d = back.get("d").unwrap().get_index(2).unwrap();
        assert!(matches!(d, Value::Float(f) if f.to_bits() == (-0.0f64).to_bits()));
    }

    #[test]
    fn crc_is_ieee() {
        // Known vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }

    #[test]
    fn append_read_rewrite_roundtrip() {
        let dir = std::env::temp_dir().join(format!("provdb-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        let docs: Vec<Arc<Value>> = (0..5).map(|_| Arc::new(doc())).collect();
        let mut w = WalWriter::open(&path, SyncPolicy::Batch).unwrap();
        w.append(0, &docs[..3]).unwrap();
        w.append(3, &docs[3..]).unwrap();
        drop(w);
        let records = read_records(&path).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(records[4].seq, 4);
        assert!(records.iter().all(|r| r.decode().is_some()));

        // Rotation keeps the tail, drops the sealed prefix.
        rewrite(&path, &records[3..]).unwrap();
        let tail = read_records(&path).unwrap();
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 3);

        // A torn tail (partial last record) replays the valid prefix.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_records(&path).unwrap().len(), 1);

        // A flipped payload byte fails the checksum and ends the prefix.
        rewrite(&path, &records[3..4]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_records(&path).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
