//! Columnar sidecar for the document store — per-shard, append-only typed
//! column vectors of the hot scalar fields.
//!
//! PROV-AGENT-shaped corpora are queried over and over on a small set of
//! scalar fields (ids, status, timestamps, derived telemetry means). The
//! sidecar stores those fields *as the query frame sees them*: each vector
//! entry is the value `DataFrame::from_messages` would put in the
//! corresponding frame cell for that document — i.e. the value obtained by
//! decoding the document with `TaskMessage::from_value` and flattening it
//! with the frame's row policy (defaults applied, `duration` derived,
//! telemetry means computed). The executor (`crate::exec`) can therefore
//! evaluate `col op lit` filters and build projected frames straight from
//! the vectors, with *frame* comparison semantics
//! ([`dataframe::cmp_matches`]), and only decode a surviving document when
//! a referenced column is not columnar.
//!
//! ## Exactness contract
//!
//! For every document and every columnar field, [`ColumnarShard::value`]
//! must equal the cell `from_messages` produces (`Value::Null` standing in
//! for "the row does not provide the column"), and a document is marked
//! decodable exactly when `TaskMessage::from_value` succeeds — the oracle
//! drops undecodable documents, so the columnar path must too. A proptest
//! in `tests/columnar_differential.rs` pins this equivalence down over
//! random documents, including ones with missing or ill-typed hot fields.
//!
//! Two escape hatches keep the contract honest on adversarial data:
//!
//! * **Poisoning** — the frame's flatten policy lets a `used`/`generated`
//!   key shadow the bare column name of the non-protected telemetry means
//!   (`gpu_percent_end`, `mem_used_mb_end`). When such a key is ever
//!   ingested, the affected column is *poisoned*: it stops advertising as
//!   columnar and queries referencing it fall back to document decoding
//!   (always correct, merely slower).
//! * **Irregularity** — index probes operate on raw document values, while
//!   the frame sees decoded values. For well-formed corpora these agree,
//!   so index candidate sets are valid supersets; when a decodable
//!   document's raw field had to be defaulted or canonicalized during
//!   decoding (`status: "finished"` → `"FINISHED"`, a string
//!   `started_at` → `0.0`), the field is marked *irregular* and index
//!   hints on it are disabled — the scan then evaluates the conjunct over
//!   the full column vector instead, which is exact by construction.
//!
//! Consistency with the document store is structural: the vectors live
//! inside each shard, are appended under the same shard write lock as the
//! document itself, and are backfilled under that lock when the sidecar is
//! enabled on a non-empty store; the facade's `generation()` counter keys
//! caches built on top (the agent tool's oracle frame), not the sidecar.

use dataframe::{cmp_matches, CmpOp};
use prov_model::{MessageType, Sym, TaskStatus, Value};

/// String-typed hot columns, in vector order. All are frame "common
/// fields", so the flatten policy protects their bare names from
/// `used`/`generated` key clashes.
pub(crate) const STR_FIELDS: [&str; 7] = [
    "task_id",
    "campaign_id",
    "workflow_id",
    "activity_id",
    "hostname",
    "status",
    "type",
];

/// Float-typed hot columns, in vector order: the Listing-1 timestamps, the
/// derived `duration`, and the derived scalar telemetry means.
pub(crate) const F64_FIELDS: [&str; 7] = [
    "started_at",
    "ended_at",
    "duration",
    "cpu_percent_start",
    "cpu_percent_end",
    "gpu_percent_end",
    "mem_used_mb_end",
];

/// Columns whose bare frame name is *not* protected against a
/// `used`/`generated` key of the same name (see module docs): ingesting
/// such a key poisons the column.
pub(crate) const POISONABLE: [&str; 2] = ["gpu_percent_end", "mem_used_mb_end"];

/// Fields whose raw document value can back an index probe when regular
/// (pass-through fields; derived columns like `duration` have no document
/// path and never hint).
const HINTABLE: [&str; 9] = [
    "task_id",
    "campaign_id",
    "workflow_id",
    "activity_id",
    "hostname",
    "status",
    "type",
    "started_at",
    "ended_at",
];

/// Handle to one columnar field: kind + index into its typed vector array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColField {
    /// `STR_FIELDS[i]`.
    Str(usize),
    /// `F64_FIELDS[i]`.
    F64(usize),
}

/// Resolve a frame column name to its columnar field, if it has one.
pub(crate) fn lookup(name: &str) -> Option<ColField> {
    if let Some(i) = STR_FIELDS.iter().position(|f| *f == name) {
        return Some(ColField::Str(i));
    }
    F64_FIELDS
        .iter()
        .position(|f| *f == name)
        .map(ColField::F64)
}

/// The field's name.
pub(crate) fn field_name(f: ColField) -> &'static str {
    match f {
        ColField::Str(i) => STR_FIELDS[i],
        ColField::F64(i) => F64_FIELDS[i],
    }
}

/// Bit of a field in the store-level irregular/poison masks.
pub(crate) fn field_bit(f: ColField) -> u16 {
    match f {
        ColField::Str(i) => 1 << i,
        ColField::F64(i) => 1 << (STR_FIELDS.len() + i),
    }
}

/// True when index probes on this field's document path are a valid
/// superset of frame matches (pass-through field, no irregular doc seen).
pub(crate) fn hint_safe(f: ColField, irregular_mask: u16) -> bool {
    HINTABLE.contains(&field_name(f)) && irregular_mask & field_bit(f) == 0
}

/// What one appended document did to the store-level masks.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PushReport {
    /// Fields whose raw value was defaulted/canonicalized during decode.
    pub irregular: u16,
    /// Poisonable columns shadowed by a dataflow key in this document.
    pub poison: u16,
}

fn default_campaign() -> Sym {
    static CELL: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    CELL.get_or_init(|| Sym::from("default-campaign")).clone()
}

fn default_hostname() -> Sym {
    static CELL: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    CELL.get_or_init(|| Sym::from("localhost")).clone()
}

/// Mean of the numeric entries of the array at `path` (0.0 when absent or
/// empty) — exactly `Telemetry::from_value` + `cpu_mean`/`gpu_mean`.
fn telemetry_mean(telemetry: &Value, path: &str) -> f64 {
    let Some(a) = telemetry.get_path(path).and_then(Value::as_array) else {
        return 0.0;
    };
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in a.iter() {
        if let Some(x) = v.as_f64() {
            sum += x;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Column vectors of one document-store shard, slot-aligned with the
/// shard's document vector.
#[derive(Default)]
pub(crate) struct ColumnarShard {
    /// Whether `TaskMessage::from_value` succeeds on the slot's document.
    decodable: Vec<bool>,
    strs: [Vec<Option<Sym>>; STR_FIELDS.len()],
    floats: [Vec<Option<f64>>; F64_FIELDS.len()],
    /// Non-absent entries per field (`strs` first, then `floats`) —
    /// answers corpus-wide column existence without a scan.
    present: [usize; STR_FIELDS.len() + F64_FIELDS.len()],
}

impl ColumnarShard {
    /// Rows covered (equals the shard's document count while in sync).
    pub(crate) fn len(&self) -> usize {
        self.decodable.len()
    }

    /// Whether the slot's document decodes into a task message.
    pub(crate) fn is_decodable(&self, slot: usize) -> bool {
        self.decodable.get(slot).copied().unwrap_or(false)
    }

    /// Non-absent entries of a field in this shard.
    pub(crate) fn present(&self, f: ColField) -> usize {
        match f {
            ColField::Str(i) => self.present[i],
            ColField::F64(i) => self.present[STR_FIELDS.len() + i],
        }
    }

    /// The frame cell for `(slot, field)`; `Null` when the row does not
    /// provide the column (or the document is undecodable).
    pub(crate) fn value(&self, slot: usize, f: ColField) -> Value {
        match f {
            ColField::Str(i) => self.strs[i]
                .get(slot)
                .and_then(Clone::clone)
                .map(Value::Str)
                .unwrap_or(Value::Null),
            ColField::F64(i) => self.floats[i]
                .get(slot)
                .and_then(|v| *v)
                .map(Value::Float)
                .unwrap_or(Value::Null),
        }
    }

    /// Evaluate `value(slot, f) op lit` with frame semantics.
    pub(crate) fn matches(&self, slot: usize, f: ColField, op: CmpOp, lit: &Value) -> bool {
        cmp_matches(&self.value(slot, f), op, lit)
    }

    fn push_str(&mut self, i: usize, v: Option<Sym>) {
        if v.is_some() {
            self.present[i] += 1;
        }
        self.strs[i].push(v);
    }

    fn push_f64(&mut self, i: usize, v: Option<f64>) {
        if v.is_some() {
            self.present[STR_FIELDS.len() + i] += 1;
        }
        self.floats[i].push(v);
    }

    /// Append one pre-extracted row (must be called exactly once per
    /// document, in slot order, under the shard's write lock — extraction
    /// itself is pure and can run before any lock is taken).
    pub(crate) fn push_row(&mut self, row: ExtractedRow) -> PushReport {
        self.decodable.push(row.decodable);
        for (i, v) in row.strs.into_iter().enumerate() {
            self.push_str(i, v);
        }
        for (i, v) in row.floats.into_iter().enumerate() {
            self.push_f64(i, v);
        }
        row.report
    }

    /// Extract-and-append in one step (backfill path, tests).
    pub(crate) fn push_doc(&mut self, doc: &Value) -> PushReport {
        self.push_row(extract(doc))
    }
}

/// One document's hot fields, decoded to frame cells but not yet appended
/// to a shard — the pure half of ingest-time population, computable
/// outside every lock.
pub(crate) struct ExtractedRow {
    decodable: bool,
    strs: [Option<Sym>; STR_FIELDS.len()],
    floats: [Option<f64>; F64_FIELDS.len()],
    report: PushReport,
}

/// Decode one document's hot fields into an [`ExtractedRow`] (see the
/// module docs for the exactness contract with `TaskMessage::from_value`
/// and the frame's row policy).
pub(crate) fn extract(doc: &Value) -> ExtractedRow {
    let mut report = PushReport::default();
    let get_str = |k: &str| match doc.get(k) {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    };
    // `TaskMessage::from_value` requires these three as strings; a
    // document missing any of them never reaches the oracle frame.
    let task_id = get_str("task_id");
    let workflow_id = get_str("workflow_id");
    let activity_id = get_str("activity_id");
    let decodable = task_id.is_some() && workflow_id.is_some() && activity_id.is_some();
    if !decodable {
        return ExtractedRow {
            decodable,
            strs: Default::default(),
            floats: Default::default(),
            report,
        };
    }

    let mut irregular = |name: &str| {
        report.irregular |= field_bit(lookup(name).expect("known field"));
    };

    // Pass-through strings with decode defaults.
    let campaign = get_str("campaign_id").unwrap_or_else(|| {
        irregular("campaign_id");
        default_campaign()
    });
    let hostname = get_str("hostname").unwrap_or_else(|| {
        irregular("hostname");
        default_hostname()
    });
    // Canonicalized enums: the decode parses (case-insensitively for
    // status) and falls back to the default; the frame cell is the
    // canonical wire symbol. Irregular whenever canonical != raw.
    let status = match get_str("status") {
        Some(raw) => {
            let parsed = TaskStatus::parse(raw.as_str()).unwrap_or_default();
            if parsed.sym().as_str() != raw.as_str() {
                irregular("status");
            }
            parsed.sym()
        }
        None => {
            irregular("status");
            TaskStatus::default().sym()
        }
    };
    let msg_type = match get_str("type") {
        Some(raw) => {
            let parsed = MessageType::parse(raw.as_str()).unwrap_or_default();
            if parsed.sym().as_str() != raw.as_str() {
                irregular("type");
            }
            parsed.sym()
        }
        None => {
            irregular("type");
            MessageType::default().sym()
        }
    };

    // Timestamps: decode coerces to f64 with a 0.0 default; a raw
    // value an index cannot coerce the same way is irregular.
    let started_at = doc
        .get("started_at")
        .and_then(Value::as_f64)
        .unwrap_or_else(|| {
            irregular("started_at");
            0.0
        });
    let ended_at = doc
        .get("ended_at")
        .and_then(Value::as_f64)
        .unwrap_or_else(|| {
            irregular("ended_at");
            0.0
        });
    let duration = (ended_at - started_at).max(0.0);

    // Derived telemetry means: present exactly when the section key
    // is present (however malformed — decode defaults shine through).
    let tele_start = doc.get("telemetry_at_start");
    let tele_end = doc.get("telemetry_at_end");
    let cpu_start = tele_start.map(|t| telemetry_mean(t, "cpu.percent"));
    let cpu_end = tele_end.map(|t| telemetry_mean(t, "cpu.percent"));
    let gpu_end = tele_end.map(|t| telemetry_mean(t, "gpu.percent"));
    let mem_end = tele_end.map(|t| {
        t.get_path("memory.used_mb")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    });

    // Dataflow keys shadowing a non-protected bare column name poison
    // that column store-wide (a nested object would flatten to dotted
    // names, but an empty object or scalar takes the bare name — the
    // top-level check over-approximates on the safe side).
    for section in ["used", "generated"] {
        if let Some(Value::Object(m)) = doc.get(section) {
            for name in POISONABLE {
                if m.contains_key(name) {
                    report.poison |= field_bit(lookup(name).expect("poisonable field"));
                }
            }
        }
    }

    ExtractedRow {
        decodable,
        strs: [
            task_id,
            Some(campaign),
            workflow_id,
            activity_id,
            Some(hostname),
            Some(status),
            Some(msg_type),
        ],
        floats: [
            Some(started_at),
            Some(ended_at),
            Some(duration),
            cpu_start,
            cpu_end,
            gpu_end,
            mem_end,
        ],
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::obj;

    #[test]
    fn lookup_covers_all_fields_and_nothing_else() {
        for (i, name) in STR_FIELDS.iter().enumerate() {
            assert_eq!(lookup(name), Some(ColField::Str(i)));
        }
        for (i, name) in F64_FIELDS.iter().enumerate() {
            assert_eq!(lookup(name), Some(ColField::F64(i)));
        }
        assert_eq!(lookup("y"), None);
        assert_eq!(lookup("used.status"), None);
    }

    #[test]
    fn field_bits_are_distinct() {
        let mut seen = 0u16;
        for name in STR_FIELDS.iter().chain(F64_FIELDS.iter()) {
            let bit = field_bit(lookup(name).unwrap());
            assert_eq!(seen & bit, 0, "{name}");
            seen |= bit;
        }
    }

    #[test]
    fn well_formed_doc_extracts_regular() {
        let mut shard = ColumnarShard::default();
        let doc = prov_model::TaskMessageBuilder::new("t0", "wf", "act")
            .span(5.0, 8.5)
            .host("n0")
            .build()
            .to_value();
        let report = shard.push_doc(&doc);
        assert_eq!(report.irregular, 0);
        assert_eq!(report.poison, 0);
        assert!(shard.is_decodable(0));
        assert_eq!(
            shard.value(0, lookup("task_id").unwrap()),
            Value::from("t0")
        );
        assert_eq!(
            shard.value(0, lookup("duration").unwrap()),
            Value::Float(3.5)
        );
        assert_eq!(
            shard.value(0, lookup("status").unwrap()),
            Value::from("FINISHED")
        );
        // No telemetry: the derived means are absent, not zero.
        assert_eq!(
            shard.value(0, lookup("cpu_percent_end").unwrap()),
            Value::Null
        );
        assert_eq!(shard.present(lookup("cpu_percent_end").unwrap()), 0);
    }

    #[test]
    fn defaults_and_canonicalization_mark_irregular() {
        let mut shard = ColumnarShard::default();
        let doc = obj! {
            "task_id" => "t", "workflow_id" => "wf", "activity_id" => "a",
            "status" => "finished", "started_at" => "not-a-number",
        };
        let report = shard.push_doc(&doc);
        assert!(shard.is_decodable(0));
        assert_eq!(
            shard.value(0, lookup("status").unwrap()),
            Value::from("FINISHED")
        );
        assert_eq!(
            shard.value(0, lookup("started_at").unwrap()),
            Value::Float(0.0)
        );
        for name in [
            "status",
            "started_at",
            "campaign_id",
            "hostname",
            "type",
            "ended_at",
        ] {
            let bit = field_bit(lookup(name).unwrap());
            assert_ne!(report.irregular & bit, 0, "{name} should be irregular");
        }
        assert!(!hint_safe(lookup("status").unwrap(), report.irregular));
        assert!(hint_safe(lookup("task_id").unwrap(), report.irregular));
        // Derived fields never back an index hint, regular or not.
        assert!(!hint_safe(lookup("duration").unwrap(), 0));
    }

    #[test]
    fn undecodable_doc_is_all_absent() {
        let mut shard = ColumnarShard::default();
        shard.push_doc(&obj! {"task_id" => "t-only"});
        assert!(!shard.is_decodable(0));
        assert_eq!(shard.value(0, lookup("task_id").unwrap()), Value::Null);
        assert_eq!(shard.present(lookup("task_id").unwrap()), 0);
    }

    #[test]
    fn dataflow_shadow_poisons_unprotected_columns() {
        let mut shard = ColumnarShard::default();
        let doc = obj! {
            "task_id" => "t", "workflow_id" => "wf", "activity_id" => "a",
            "generated" => obj! {"gpu_percent_end" => 99.0},
        };
        let report = shard.push_doc(&doc);
        assert_ne!(
            report.poison & field_bit(lookup("gpu_percent_end").unwrap()),
            0
        );
        assert_eq!(
            report.poison & field_bit(lookup("mem_used_mb_end").unwrap()),
            0
        );
    }

    #[test]
    fn telemetry_means_match_decode() {
        use prov_model::TaskMessage;
        let synth = prov_model::TelemetrySynth::frontier(3);
        let msg = prov_model::TaskMessageBuilder::new("t", "wf", "a")
            .telemetry(synth.snapshot(1, 0, 0.4), synth.snapshot(1, 1, 0.4))
            .build();
        let doc = msg.to_value();
        let mut shard = ColumnarShard::default();
        shard.push_doc(&doc);
        let back = TaskMessage::from_value(&doc).unwrap();
        let end = back.telemetry_at_end.unwrap();
        assert_eq!(
            shard.value(0, lookup("cpu_percent_end").unwrap()),
            Value::Float(end.cpu_mean())
        );
        assert_eq!(
            shard.value(0, lookup("gpu_percent_end").unwrap()),
            Value::Float(end.gpu_mean())
        );
        assert_eq!(
            shard.value(0, lookup("mem_used_mb_end").unwrap()),
            Value::Float(end.mem_used_mb)
        );
    }
}
