//! Vectorized columnar sidecar for the document store — per-shard,
//! append-only, dictionary-encoded and chunked column vectors of the hot
//! scalar fields.
//!
//! PROV-AGENT-shaped corpora are queried over and over on a small set of
//! scalar fields (ids, status, timestamps, derived telemetry means). The
//! sidecar stores those fields *as the query frame sees them*: each vector
//! entry is the value `DataFrame::from_messages` would put in the
//! corresponding frame cell for that document — i.e. the value obtained by
//! decoding the document with `TaskMessage::from_value` and flattening it
//! with the frame's row policy (defaults applied, `duration` derived,
//! telemetry means computed). The executor (`crate::exec`) can therefore
//! evaluate `col op lit` and `col.isin([...])` filters and build projected
//! frames straight from the vectors, with *frame* comparison semantics
//! ([`dataframe::cmp_matches`]), and only decode a surviving document when
//! a referenced column is not columnar.
//!
//! ## Physical layout
//!
//! * **Dictionary encoding** — every string column is a `Vec<u32>` of
//!   codes plus a per-shard, per-column dictionary (`code → Sym`, with a
//!   hash map for the reverse direction). Codes are assigned in first
//!   appearance order and are **stable**: once a symbol has a code in a
//!   shard, that code never changes and is never reused, so any later
//!   symbol gets a strictly larger code. `NULL_CODE` (`u32::MAX`) marks an
//!   absent cell. Filters compile their literal to a code (or a per-code
//!   truth table) once per shard and then compare integers.
//! * **Chunking + zone maps** — every column vector is logically split
//!   into fixed-size chunks ([`chunk_rows`] rows, overridable with the
//!   `PROVDB_CHUNK` env var). Each chunk carries a zone map: per float
//!   column `min`/`max` over the finite present cells plus present and NaN
//!   counts, per string column `min`/`max` *code* plus a present count,
//!   and a per-chunk decodable count. Selective scans consult the zone
//!   maps first and skip whole chunks without touching a cell. Code
//!   stability is what makes the string zones sound: a chunk's `max_code`
//!   bounds every symbol the chunk can contain, so an equality literal
//!   first seen later than the chunk was written can never be inside it.
//!   This is deliberately the same zone-map shape an on-disk segment
//!   footer needs (see ROADMAP's durability item).
//! * **Kernels** — a scan compiles its conjuncts once per shard
//!   ([`ColumnarShard::compile`]) and evaluates each chunk with
//!   [`ColumnarShard::filter_chunk`]: the selection starts from the
//!   decodable rows of the chunk and each predicate shrinks it with a
//!   branch-light compaction pass, replacing the per-row short-circuit
//!   `matches()` loop. The sequential and shard-parallel scan paths and
//!   the top-k buffer all route through the same kernels.
//!
//! ## Exactness contract
//!
//! For every document and every columnar field, [`ColumnarShard::value`]
//! must equal the cell `from_messages` produces (`Value::Null` standing in
//! for "the row does not provide the column"), and a document is marked
//! decodable exactly when `TaskMessage::from_value` succeeds — the oracle
//! drops undecodable documents, so the columnar path must too. The
//! compiled kernels must agree with [`dataframe::cmp_matches`] (and, for
//! `isin`, with [`dataframe::values_equal`] any-match) on every cell,
//! including null cells (`!=` against a non-null literal matches a null
//! cell) and NaN cells (`Value::compare` calls mixed NaN comparisons
//! `Equal`, so NaN matches `!=`, `<=` and `>=`). Proptests in
//! `tests/columnar_differential.rs` pin this equivalence down over random
//! documents — including corpora straddling chunk boundaries and
//! adversarial dictionaries — by comparing against the decode oracle.
//!
//! Two escape hatches keep the contract honest on adversarial data:
//!
//! * **Poisoning** — the frame's flatten policy lets a `used`/`generated`
//!   key shadow the bare column name of the non-protected telemetry means
//!   (`gpu_percent_end`, `mem_used_mb_end`). When such a key is ever
//!   ingested, the affected column is *poisoned*: it stops advertising as
//!   columnar and queries referencing it fall back to document decoding
//!   (always correct, merely slower). Poisoning is store-level and
//!   orthogonal to the physical layout: a poisoned column's codes and
//!   zones keep accumulating, they are just never consulted.
//! * **Irregularity** — index probes operate on raw document values, while
//!   the frame sees decoded values. For well-formed corpora these agree,
//!   so index candidate sets are valid supersets; when a decodable
//!   document's raw field had to be defaulted or canonicalized during
//!   decoding (`status: "finished"` → `"FINISHED"`, a string
//!   `started_at` → `0.0`), the field is marked *irregular* and index
//!   hints on it are disabled — the scan then evaluates the conjunct over
//!   the full column vector instead, which is exact by construction.
//!   Irregular values are still dictionary-encoded and zone-mapped like
//!   any other cell: irregularity gates only the *index hint*, never the
//!   vectors.
//!
//! Consistency with the document store is structural: the vectors live
//! inside each shard, are appended under the same shard write lock as the
//! document itself, and are backfilled under that lock when the sidecar is
//! enabled on a non-empty store; the facade's `generation()` counter keys
//! caches built on top (the agent tool's oracle frame), not the sidecar.

use dataframe::{cmp_matches, values_equal, CmpOp};
use prov_model::{MessageType, Sym, TaskStatus, Value};
use std::cmp::Ordering;

/// String-typed hot columns, in vector order. All are frame "common
/// fields", so the flatten policy protects their bare names from
/// `used`/`generated` key clashes.
pub(crate) const STR_FIELDS: [&str; 7] = [
    "task_id",
    "campaign_id",
    "workflow_id",
    "activity_id",
    "hostname",
    "status",
    "type",
];

/// Float-typed hot columns, in vector order: the Listing-1 timestamps, the
/// derived `duration`, and the derived scalar telemetry means.
pub(crate) const F64_FIELDS: [&str; 7] = [
    "started_at",
    "ended_at",
    "duration",
    "cpu_percent_start",
    "cpu_percent_end",
    "gpu_percent_end",
    "mem_used_mb_end",
];

/// Columns whose bare frame name is *not* protected against a
/// `used`/`generated` key of the same name (see module docs): ingesting
/// such a key poisons the column.
pub(crate) const POISONABLE: [&str; 2] = ["gpu_percent_end", "mem_used_mb_end"];

/// Fields whose raw document value can back an index probe when regular
/// (pass-through fields; derived columns like `duration` have no document
/// path and never hint).
const HINTABLE: [&str; 9] = [
    "task_id",
    "campaign_id",
    "workflow_id",
    "activity_id",
    "hostname",
    "status",
    "type",
    "started_at",
    "ended_at",
];

/// Dictionary code standing in for an absent string cell.
pub(crate) const NULL_CODE: u32 = u32::MAX;

/// Default rows per chunk (and per zone-map entry).
pub(crate) const DEFAULT_CHUNK: usize = 4096;

/// Rows per chunk: `PROVDB_CHUNK` when set to a positive integer (clamped
/// to a sane band so zone maps stay meaningful and bounded), else
/// [`DEFAULT_CHUNK`]. Resolved once per process, like the shard and
/// thread overrides.
pub(crate) fn chunk_rows() -> usize {
    static CELL: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CELL.get_or_init(|| {
        std::env::var("PROVDB_CHUNK")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .map(|n| n.clamp(16, 65_536))
            .unwrap_or(DEFAULT_CHUNK)
    })
}

/// Handle to one columnar field: kind + index into its typed vector array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColField {
    /// `STR_FIELDS[i]`.
    Str(usize),
    /// `F64_FIELDS[i]`.
    F64(usize),
}

/// Resolve a frame column name to its columnar field, if it has one.
pub(crate) fn lookup(name: &str) -> Option<ColField> {
    if let Some(i) = STR_FIELDS.iter().position(|f| *f == name) {
        return Some(ColField::Str(i));
    }
    F64_FIELDS
        .iter()
        .position(|f| *f == name)
        .map(ColField::F64)
}

/// Position of `name` in [`STR_FIELDS`], if it is a string hot column.
pub(crate) fn str_field_index(name: &str) -> Option<usize> {
    STR_FIELDS.iter().position(|f| *f == name)
}

/// Position of `name` in [`F64_FIELDS`], if it is a float hot column.
pub(crate) fn f64_field_index(name: &str) -> Option<usize> {
    F64_FIELDS.iter().position(|f| *f == name)
}

/// The field's name.
pub(crate) fn field_name(f: ColField) -> &'static str {
    match f {
        ColField::Str(i) => STR_FIELDS[i],
        ColField::F64(i) => F64_FIELDS[i],
    }
}

/// Bit of a field in the store-level irregular/poison masks.
pub(crate) fn field_bit(f: ColField) -> u16 {
    match f {
        ColField::Str(i) => 1 << i,
        ColField::F64(i) => 1 << (STR_FIELDS.len() + i),
    }
}

/// True when index probes on this field's document path are a valid
/// superset of frame matches (pass-through field, no irregular doc seen).
pub(crate) fn hint_safe(f: ColField, irregular_mask: u16) -> bool {
    HINTABLE.contains(&field_name(f)) && irregular_mask & field_bit(f) == 0
}

/// What one appended document did to the store-level masks.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PushReport {
    /// Fields whose raw value was defaulted/canonicalized during decode.
    pub irregular: u16,
    /// Poisonable columns shadowed by a dataflow key in this document.
    pub poison: u16,
}

/// One scan conjunct against the columnar vectors, as handed down by the
/// executor: either a comparison or an in-list membership test.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ColPredicate<'a> {
    /// `column op literal` under [`cmp_matches`] semantics.
    Cmp(ColField, CmpOp, &'a Value),
    /// `column.isin(list)` under [`values_equal`] any-match semantics.
    In(ColField, &'a [Value]),
}

fn default_campaign() -> Sym {
    static CELL: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    CELL.get_or_init(|| Sym::from("default-campaign")).clone()
}

fn default_hostname() -> Sym {
    static CELL: std::sync::OnceLock<Sym> = std::sync::OnceLock::new();
    CELL.get_or_init(|| Sym::from("localhost")).clone()
}

/// Mean of the numeric entries of the array at `path` (0.0 when absent or
/// empty) — exactly `Telemetry::from_value` + `cpu_mean`/`gpu_mean`.
fn telemetry_mean(telemetry: &Value, path: &str) -> f64 {
    let Some(a) = telemetry.get_path(path).and_then(Value::as_array) else {
        return 0.0;
    };
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in a.iter() {
        if let Some(x) = v.as_f64() {
            sum += x;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// One dictionary-encoded string column: codes in slot order plus the
/// shard-local dictionary. Codes are first-appearance ordered and stable
/// (see module docs).
///
/// The reverse map is keyed on the symbol's *cached* content digest
/// (pass-through hasher) — a `HashMap<Sym, _>` would re-hash the string
/// bytes on every cell pushed, and encode runs once per cell per string
/// column on the materialize hot path. Digest collisions land in the same
/// bucket and are resolved by the content-equality probe (whose `Sym`
/// pointer fast path hits for interned repeats).
#[derive(Default)]
struct DictColumn {
    codes: Vec<u32>,
    dict: Vec<Sym>,
    rev: crate::document::PrehashedMap<Vec<u32>>,
}

impl DictColumn {
    fn push(&mut self, v: Option<Sym>) {
        match v {
            None => self.codes.push(NULL_CODE),
            Some(s) => {
                let bucket = self.rev.entry(s.hash_u64()).or_default();
                let code = match bucket.iter().copied().find(|&c| self.dict[c as usize] == s) {
                    Some(c) => c,
                    None => {
                        let c = self.dict.len() as u32;
                        debug_assert!(c < NULL_CODE);
                        self.dict.push(s);
                        bucket.push(c);
                        c
                    }
                };
                self.codes.push(code);
            }
        }
    }

    fn code_of(&self, s: &Sym) -> Option<u32> {
        self.rev
            .get(&s.hash_u64())?
            .iter()
            .copied()
            .find(|&c| self.dict[c as usize] == *s)
    }
}

/// Zone map of one chunk of a string column: code interval of the present
/// cells plus their count. An empty interval (`min > max`) means no
/// present cell.
#[derive(Clone, Copy)]
struct StrZone {
    min_code: u32,
    max_code: u32,
    present: u32,
}

impl Default for StrZone {
    fn default() -> Self {
        Self {
            min_code: u32::MAX,
            max_code: 0,
            present: 0,
        }
    }
}

/// Zone map of one chunk of a float column: `min`/`max` over the finite
/// (non-NaN) present cells, plus present and NaN counts.
#[derive(Clone, Copy)]
struct F64Zone {
    min: f64,
    max: f64,
    present: u32,
    nan: u32,
}

impl Default for F64Zone {
    fn default() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            present: 0,
            nan: 0,
        }
    }
}

/// A scan conjunct compiled against one shard's dictionaries — integer
/// comparisons (or table lookups) only, evaluated by
/// [`ColumnarShard::filter_chunk`].
pub(crate) enum ShardPred {
    /// Matches every row (e.g. `!=` against a literal of a kind the column
    /// can never hold) — evaluated for free.
    Always,
    /// Matches no row in this shard (e.g. `==` with a symbol absent from
    /// the dictionary, plus null cells not matching).
    Never,
    /// String-column predicate.
    Str {
        col: usize,
        test: StrTest,
        null_matches: bool,
    },
    /// Float-column predicate.
    F64 {
        col: usize,
        test: F64Test,
        null_matches: bool,
    },
}

/// The per-present-cell test of a compiled string predicate.
pub(crate) enum StrTest {
    /// Cell code equals this code (`None`: literal not in the dictionary,
    /// no present cell can match).
    EqCode(Option<u32>),
    /// Cell code differs from this code (`None`: every present cell
    /// matches).
    NeCode(Option<u32>),
    /// Cell code is one of these (sorted) codes — the compiled in-list.
    InCodes(Vec<u32>),
    /// Arbitrary op: truth table indexed by code, computed once per shard
    /// with real [`cmp_matches`] over the dictionary.
    Table(Vec<bool>),
    /// Every present cell gets the same verdict (kind-tag comparison
    /// against a non-string literal).
    Const(bool),
}

/// The per-present-cell test of a compiled float predicate.
pub(crate) enum F64Test {
    /// Numeric comparison against the literal coerced to `f64` (the exact
    /// coercion `cmp_matches` applies for Int/Float literals).
    Cmp(CmpOp, f64),
    /// Membership in a (numeric) literal set.
    In(Vec<f64>),
    /// Every present cell gets the same verdict (kind-tag comparison
    /// against a non-numeric literal).
    Const(bool),
}

/// Column vectors of one document-store shard, slot-aligned with the
/// shard's document vector. See the module docs for the layout.
pub(crate) struct ColumnarShard {
    /// Rows per chunk (fixed for the shard's lifetime).
    chunk: usize,
    /// Whether `TaskMessage::from_value` succeeds on the slot's document.
    decodable: Vec<bool>,
    /// Decodable rows per chunk.
    chunk_decodable: Vec<u32>,
    strs: [DictColumn; STR_FIELDS.len()],
    str_zones: [Vec<StrZone>; STR_FIELDS.len()],
    floats: [Vec<Option<f64>>; F64_FIELDS.len()],
    f64_zones: [Vec<F64Zone>; F64_FIELDS.len()],
    /// Non-absent entries per field (`strs` first, then `floats`) —
    /// answers corpus-wide column existence without a scan.
    present: [usize; STR_FIELDS.len() + F64_FIELDS.len()],
}

impl Default for ColumnarShard {
    fn default() -> Self {
        Self::with_chunk(chunk_rows())
    }
}

impl ColumnarShard {
    /// A shard with an explicit chunk size (tests exercise tiny chunks).
    pub(crate) fn with_chunk(chunk: usize) -> Self {
        Self {
            chunk: chunk.max(1),
            decodable: Vec::new(),
            chunk_decodable: Vec::new(),
            strs: Default::default(),
            str_zones: Default::default(),
            floats: Default::default(),
            f64_zones: Default::default(),
            present: Default::default(),
        }
    }

    /// Rows covered (equals the shard's document count while in sync).
    pub(crate) fn len(&self) -> usize {
        self.decodable.len()
    }

    /// Number of chunks currently held.
    pub(crate) fn n_chunks(&self) -> usize {
        self.chunk_decodable.len()
    }

    /// Slot range of chunk `c`.
    pub(crate) fn chunk_span(&self, c: usize) -> (usize, usize) {
        let start = c * self.chunk;
        (start, (start + self.chunk).min(self.len()))
    }

    /// Whether the slot's document decodes into a task message.
    pub(crate) fn is_decodable(&self, slot: usize) -> bool {
        self.decodable.get(slot).copied().unwrap_or(false)
    }

    /// Whether every row in this shard decodes (the per-chunk decodable
    /// counts sum to the row count). Gates whole-corpus fast paths that
    /// require the sidecar to mirror the documents verbatim.
    pub(crate) fn all_decodable(&self) -> bool {
        let decodable: usize = self.chunk_decodable.iter().map(|&n| n as usize).sum();
        decodable == self.decodable.len()
    }

    /// Non-absent entries of a field in this shard.
    pub(crate) fn present(&self, f: ColField) -> usize {
        match f {
            ColField::Str(i) => self.present[i],
            ColField::F64(i) => self.present[STR_FIELDS.len() + i],
        }
    }

    /// Non-absent entries of a field among the first `n` slots — the
    /// snapshot-bounded counterpart of [`present`](Self::present). Sums
    /// the per-chunk zone counts for whole chunks and scans only the one
    /// boundary chunk, so the cost is `O(n / chunk + chunk)`.
    pub(crate) fn present_prefix(&self, f: ColField, n: usize) -> usize {
        if n >= self.len() {
            return self.present(f);
        }
        let full = n / self.chunk;
        let boundary = full * self.chunk..n;
        match f {
            ColField::Str(i) => {
                let whole: usize = self.str_zones[i][..full]
                    .iter()
                    .map(|z| z.present as usize)
                    .sum();
                whole
                    + self.strs[i].codes[boundary]
                        .iter()
                        .filter(|&&c| c != NULL_CODE)
                        .count()
            }
            ColField::F64(i) => {
                // `Some(NaN)` counts as present, mirroring `push_f64`.
                let whole: usize = self.f64_zones[i][..full]
                    .iter()
                    .map(|z| z.present as usize)
                    .sum();
                whole
                    + self.floats[i][boundary]
                        .iter()
                        .filter(|v| v.is_some())
                        .count()
            }
        }
    }

    /// The code vector of string column `i` (slot-aligned; `NULL_CODE`
    /// marks absent cells). Exposed for code-based group-by.
    pub(crate) fn str_codes(&self, i: usize) -> &[u32] {
        &self.strs[i].codes
    }

    /// The dictionary of string column `i` (`code → Sym`).
    pub(crate) fn dict(&self, i: usize) -> &[Sym] {
        &self.strs[i].dict
    }

    /// The frame cell for `(slot, field)`; `Null` when the row does not
    /// provide the column (or the document is undecodable).
    pub(crate) fn value(&self, slot: usize, f: ColField) -> Value {
        match f {
            ColField::Str(i) => match self.strs[i].codes.get(slot) {
                Some(&c) if c != NULL_CODE => Value::Str(self.strs[i].dict[c as usize].clone()),
                _ => Value::Null,
            },
            ColField::F64(i) => self.floats[i]
                .get(slot)
                .and_then(|v| *v)
                .map(Value::Float)
                .unwrap_or(Value::Null),
        }
    }

    /// Evaluate `value(slot, f) op lit` with frame semantics.
    pub(crate) fn matches(&self, slot: usize, f: ColField, op: CmpOp, lit: &Value) -> bool {
        cmp_matches(&self.value(slot, f), op, lit)
    }

    /// Evaluate one predicate on one row with frame semantics — the
    /// single-row fallback the ordered top-k cursor uses.
    pub(crate) fn matches_pred(&self, slot: usize, p: &ColPredicate<'_>) -> bool {
        match p {
            ColPredicate::Cmp(f, op, lit) => self.matches(slot, *f, *op, lit),
            ColPredicate::In(f, list) => {
                let v = self.value(slot, *f);
                list.iter().any(|x| values_equal(x, &v))
            }
        }
    }

    fn push_str(&mut self, i: usize, v: Option<Sym>) {
        if v.is_some() {
            self.present[i] += 1;
        }
        self.strs[i].push(v);
        let code = *self.strs[i].codes.last().expect("just pushed");
        let z = self.str_zones[i].last_mut().expect("zone opened");
        if code != NULL_CODE {
            z.min_code = z.min_code.min(code);
            z.max_code = z.max_code.max(code);
            z.present += 1;
        }
    }

    fn push_f64(&mut self, i: usize, v: Option<f64>) {
        if v.is_some() {
            self.present[STR_FIELDS.len() + i] += 1;
        }
        self.floats[i].push(v);
        let z = self.f64_zones[i].last_mut().expect("zone opened");
        if let Some(x) = v {
            z.present += 1;
            if x.is_nan() {
                z.nan += 1;
            } else {
                z.min = z.min.min(x);
                z.max = z.max.max(x);
            }
        }
    }

    /// Append one pre-extracted row (must be called exactly once per
    /// document, in slot order, under the shard's write lock — extraction
    /// itself is pure and can run before any lock is taken).
    pub(crate) fn push_row(&mut self, row: ExtractedRow) -> PushReport {
        if self.decodable.len().is_multiple_of(self.chunk) {
            // Open a fresh chunk: one zone entry per column.
            self.chunk_decodable.push(0);
            for z in &mut self.str_zones {
                z.push(StrZone::default());
            }
            for z in &mut self.f64_zones {
                z.push(F64Zone::default());
            }
        }
        self.decodable.push(row.decodable);
        if row.decodable {
            *self.chunk_decodable.last_mut().expect("chunk opened") += 1;
        }
        for (i, v) in row.strs.into_iter().enumerate() {
            self.push_str(i, v);
        }
        for (i, v) in row.floats.into_iter().enumerate() {
            self.push_f64(i, v);
        }
        row.report
    }

    /// Extract-and-append in one step (backfill path, tests).
    pub(crate) fn push_doc(&mut self, doc: &Value) -> PushReport {
        self.push_row(extract(doc))
    }

    /// Serialize the chunk zone maps of rows `[start, end)` for a sealed
    /// segment footer (see [`crate::segment`]). Both bounds must sit on
    /// chunk boundaries and be covered — seals only ever cover whole
    /// chunks, whose zones are frozen (only the trailing partial chunk
    /// still mutates). The string dictionaries are snapshotted whole:
    /// codes are first-appearance stable, so the snapshot maps every
    /// code the sealed zones can reference, and symbol clones are
    /// refcount bumps.
    pub(crate) fn export_zone_tables(
        &self,
        start: usize,
        end: usize,
    ) -> Option<crate::segment::ZoneTables> {
        if !start.is_multiple_of(self.chunk)
            || !end.is_multiple_of(self.chunk)
            || end > self.len()
            || start > end
        {
            return None;
        }
        let (c0, c1) = (start / self.chunk, end / self.chunk);
        Some(crate::segment::ZoneTables {
            str_dicts: self.strs.iter().map(|col| col.dict.clone()).collect(),
            str_zones: self
                .str_zones
                .iter()
                .map(|zs| {
                    zs[c0..c1]
                        .iter()
                        .map(|z| (z.min_code, z.max_code, z.present))
                        .collect()
                })
                .collect(),
            f64_zones: self
                .f64_zones
                .iter()
                .map(|zs| {
                    zs[c0..c1]
                        .iter()
                        .map(|z| (z.min, z.max, z.present, z.nan))
                        .collect()
                })
                .collect(),
            chunk_decodable: self.chunk_decodable[c0..c1].to_vec(),
            // The sealer stamps the store-wide pushdown masks in before
            // writing (the shard has no view of sibling shards' rows).
            irregular: 0,
            poison: 0,
        })
    }

    /// Compile scan conjuncts against this shard's dictionaries. The
    /// result evaluates every cell exactly like
    /// [`ColumnarShard::matches_pred`], but over integer codes.
    pub(crate) fn compile(&self, preds: &[ColPredicate<'_>]) -> Vec<ShardPred> {
        preds.iter().map(|p| self.compile_one(p)).collect()
    }

    fn compile_one(&self, p: &ColPredicate<'_>) -> ShardPred {
        match *p {
            ColPredicate::Cmp(f, op, lit) => {
                // `cmp_matches` with a null literal: `!=` is true unless
                // the cell is also null; every other op is false.
                if lit.is_null() {
                    return match (op, f) {
                        (CmpOp::Ne, ColField::Str(col)) => ShardPred::Str {
                            col,
                            test: StrTest::Const(true),
                            null_matches: false,
                        },
                        (CmpOp::Ne, ColField::F64(col)) => ShardPred::F64 {
                            col,
                            test: F64Test::Const(true),
                            null_matches: false,
                        },
                        _ => ShardPred::Never,
                    };
                }
                // Null cell vs non-null literal: only `!=` matches.
                let null_matches = matches!(op, CmpOp::Ne);
                match f {
                    ColField::Str(col) => {
                        let test = match (op, lit.as_sym()) {
                            (CmpOp::Eq, Some(s)) => StrTest::EqCode(self.strs[col].code_of(s)),
                            (CmpOp::Ne, Some(s)) => StrTest::NeCode(self.strs[col].code_of(s)),
                            (_, Some(_)) => {
                                // Ordering op over strings: one
                                // `cmp_matches` per distinct symbol.
                                let table = self.strs[col]
                                    .dict
                                    .iter()
                                    .map(|s| cmp_matches(&Value::Str(s.clone()), op, lit))
                                    .collect();
                                StrTest::Table(table)
                            }
                            (_, None) => {
                                // Non-string literal: `Value::compare`
                                // falls back to kind tags, so every
                                // present cell gets the same verdict.
                                let probe = Value::Str(Sym::from(""));
                                StrTest::Const(cmp_matches(&probe, op, lit))
                            }
                        };
                        match test {
                            StrTest::EqCode(None) if !null_matches => ShardPred::Never,
                            StrTest::Const(false) if !null_matches => ShardPred::Never,
                            StrTest::Const(true) if null_matches => ShardPred::Always,
                            test => ShardPred::Str {
                                col,
                                test,
                                null_matches,
                            },
                        }
                    }
                    ColField::F64(col) => {
                        let test = match lit.as_f64() {
                            Some(l) => F64Test::Cmp(op, l),
                            None => {
                                // Non-numeric literal: kind-tag compare is
                                // constant over all Float cells.
                                let probe = Value::Float(0.0);
                                F64Test::Const(cmp_matches(&probe, op, lit))
                            }
                        };
                        match test {
                            F64Test::Const(false) if !null_matches => ShardPred::Never,
                            F64Test::Const(true) if null_matches => ShardPred::Always,
                            test => ShardPred::F64 {
                                col,
                                test,
                                null_matches,
                            },
                        }
                    }
                }
            }
            ColPredicate::In(f, list) => {
                // `values_equal(Null, x)` holds only for a null x, so a
                // null cell matches exactly when the list contains null.
                let null_matches = list.iter().any(Value::is_null);
                match f {
                    ColField::Str(col) => {
                        let mut codes: Vec<u32> = list
                            .iter()
                            .filter_map(Value::as_sym)
                            .filter_map(|s| self.strs[col].code_of(s))
                            .collect();
                        codes.sort_unstable();
                        codes.dedup();
                        if codes.is_empty() && !null_matches {
                            ShardPred::Never
                        } else {
                            ShardPred::Str {
                                col,
                                test: StrTest::InCodes(codes),
                                null_matches,
                            }
                        }
                    }
                    ColField::F64(col) => {
                        // Only numeric list entries can equal a Float
                        // cell (`values_equal` coerces Int, nothing
                        // else); a NaN entry never equals anything.
                        let lits: Vec<f64> = list.iter().filter_map(Value::as_f64).collect();
                        if lits.is_empty() && !null_matches {
                            ShardPred::Never
                        } else {
                            ShardPred::F64 {
                                col,
                                test: F64Test::In(lits),
                                null_matches,
                            }
                        }
                    }
                }
            }
        }
    }

    /// Zone-map verdict: can chunk `c` be skipped for this predicate
    /// (provably no matching row)? Conservative — `false` means "must
    /// evaluate", never "matches".
    fn zone_skips(&self, p: &ShardPred, c: usize) -> bool {
        let (start, end) = self.chunk_span(c);
        let rows = (end - start) as u32;
        match p {
            ShardPred::Always => false,
            ShardPred::Never => true,
            ShardPred::Str {
                col,
                test,
                null_matches,
            } => {
                let z = &self.str_zones[*col][c];
                if *null_matches && z.present < rows {
                    return false;
                }
                let present_possible = match test {
                    StrTest::EqCode(None) => false,
                    StrTest::EqCode(Some(code)) => {
                        z.present > 0 && *code >= z.min_code && *code <= z.max_code
                    }
                    StrTest::NeCode(None) => z.present > 0,
                    StrTest::NeCode(Some(code)) => {
                        // Only provably all-equal when the interval is a
                        // single point at the literal's code.
                        z.present > 0 && !(z.min_code == *code && z.max_code == *code)
                    }
                    StrTest::InCodes(codes) => {
                        z.present > 0
                            && codes
                                .iter()
                                .any(|&code| code >= z.min_code && code <= z.max_code)
                    }
                    StrTest::Table(_) => z.present > 0,
                    StrTest::Const(b) => *b && z.present > 0,
                };
                !present_possible
            }
            ShardPred::F64 {
                col,
                test,
                null_matches,
            } => {
                let z = &self.f64_zones[*col][c];
                if *null_matches && z.present < rows {
                    return false;
                }
                let finite = z.present > z.nan;
                let present_possible = match test {
                    F64Test::Cmp(op, l) => {
                        // NaN cells compare `Equal` under `Value::compare`,
                        // so they match Ne/Le/Ge.
                        let nan_hit = z.nan > 0 && matches!(op, CmpOp::Ne | CmpOp::Le | CmpOp::Ge);
                        let finite_hit = finite
                            && match op {
                                CmpOp::Eq => *l >= z.min && *l <= z.max,
                                CmpOp::Ne => !(z.min == *l && z.max == *l),
                                CmpOp::Lt => z.min < *l,
                                CmpOp::Le => z.min <= *l,
                                CmpOp::Gt => z.max > *l,
                                CmpOp::Ge => z.max >= *l,
                            };
                        nan_hit || finite_hit
                    }
                    F64Test::In(lits) => finite && lits.iter().any(|l| *l >= z.min && *l <= z.max),
                    F64Test::Const(b) => *b && z.present > 0,
                };
                !present_possible
            }
        }
    }

    /// True when the zone maps prove no row of chunk `c` can satisfy all
    /// predicates (the chunk-skip fast path).
    pub(crate) fn chunk_prunable(&self, preds: &[ShardPred], c: usize) -> bool {
        self.chunk_decodable[c] == 0 || preds.iter().any(|p| self.zone_skips(p, c))
    }

    /// Evaluate the compiled conjuncts over chunk `c`, writing the
    /// surviving (decodable) slots into `sel` in ascending order. `sel` is
    /// cleared first; returns quickly when the zone maps prune the chunk.
    pub(crate) fn filter_chunk(&self, preds: &[ShardPred], c: usize, sel: &mut Vec<u32>) {
        sel.clear();
        if self.chunk_prunable(preds, c) {
            return;
        }
        let (start, end) = self.chunk_span(c);
        // Seed with the decodable slots of the chunk.
        if self.chunk_decodable[c] as usize == end - start {
            sel.extend(start as u32..end as u32);
        } else {
            for s in start..end {
                if self.decodable[s] {
                    sel.push(s as u32);
                }
            }
        }
        for p in preds {
            match p {
                ShardPred::Always => continue,
                ShardPred::Never => {
                    sel.clear();
                    return;
                }
                ShardPred::Str {
                    col,
                    test,
                    null_matches,
                } => {
                    let codes = &self.strs[*col].codes;
                    let nm = *null_matches;
                    match test {
                        StrTest::EqCode(code) => {
                            let want = code.unwrap_or(NULL_CODE - 1);
                            retain_sel(sel, |s| {
                                let c = codes[s];
                                if c == NULL_CODE {
                                    nm
                                } else {
                                    c == want
                                }
                            });
                        }
                        StrTest::NeCode(code) => {
                            // A null cell (`NULL_CODE`) differs from every
                            // real code, and `!=` matches null cells
                            // against a non-null literal — one compare
                            // covers both when `nm` holds. The compiled
                            // `nm` is always true here, but stay exact.
                            match code {
                                Some(want) if nm => {
                                    retain_sel(sel, |s| codes[s] != *want);
                                }
                                Some(want) => {
                                    retain_sel(sel, |s| {
                                        let c = codes[s];
                                        c != NULL_CODE && c != *want
                                    });
                                }
                                None => {
                                    retain_sel(sel, |s| codes[s] != NULL_CODE || nm);
                                }
                            }
                        }
                        StrTest::InCodes(want) => {
                            retain_sel(sel, |s| {
                                let c = codes[s];
                                if c == NULL_CODE {
                                    nm
                                } else {
                                    want.binary_search(&c).is_ok()
                                }
                            });
                        }
                        StrTest::Table(table) => {
                            retain_sel(sel, |s| {
                                let c = codes[s];
                                if c == NULL_CODE {
                                    nm
                                } else {
                                    table[c as usize]
                                }
                            });
                        }
                        StrTest::Const(b) => {
                            let b = *b;
                            retain_sel(sel, |s| if codes[s] == NULL_CODE { nm } else { b });
                        }
                    }
                }
                ShardPred::F64 {
                    col,
                    test,
                    null_matches,
                } => {
                    let vals = &self.floats[*col];
                    let nm = *null_matches;
                    match test {
                        F64Test::Cmp(op, l) => {
                            let (op, l) = (*op, *l);
                            retain_sel(sel, |s| match vals[s] {
                                Some(x) => {
                                    let ord = x.partial_cmp(&l).unwrap_or(Ordering::Equal);
                                    op.test(ord, x == l)
                                }
                                None => nm,
                            });
                        }
                        F64Test::In(lits) => {
                            retain_sel(sel, |s| match vals[s] {
                                Some(x) => lits.contains(&x),
                                None => nm,
                            });
                        }
                        F64Test::Const(b) => {
                            let b = *b;
                            retain_sel(sel, |s| match vals[s] {
                                Some(_) => b,
                                None => nm,
                            });
                        }
                    }
                }
            }
            if sel.is_empty() {
                return;
            }
        }
    }
}

/// Branch-light in-place selection compaction: keep `sel[i]` when the
/// predicate holds, preserving order.
fn retain_sel(sel: &mut Vec<u32>, mut keep: impl FnMut(usize) -> bool) {
    let mut n = 0usize;
    for i in 0..sel.len() {
        let s = sel[i];
        sel[n] = s;
        n += keep(s as usize) as usize;
    }
    sel.truncate(n);
}

/// One document's hot fields, decoded to frame cells but not yet appended
/// to a shard — the pure half of ingest-time population, computable
/// outside every lock.
pub(crate) struct ExtractedRow {
    pub(crate) decodable: bool,
    pub(crate) strs: [Option<Sym>; STR_FIELDS.len()],
    pub(crate) floats: [Option<f64>; F64_FIELDS.len()],
    pub(crate) report: PushReport,
}

/// Decode one document's hot fields into an [`ExtractedRow`] (see the
/// module docs for the exactness contract with `TaskMessage::from_value`
/// and the frame's row policy).
pub(crate) fn extract(doc: &Value) -> ExtractedRow {
    let mut report = PushReport::default();

    // Extraction runs once per ingested document, so gather every hot
    // top-level value in a single pass over the sorted entries instead
    // of a binary search per field.
    let mut v_task_id = None;
    let mut v_workflow_id = None;
    let mut v_activity_id = None;
    let mut v_campaign_id = None;
    let mut v_hostname = None;
    let mut v_status = None;
    let mut v_type = None;
    let mut v_started_at = None;
    let mut v_ended_at = None;
    let mut tele_start = None;
    let mut tele_end = None;
    let mut v_used = None;
    let mut v_generated = None;
    if let Value::Object(m) = doc {
        for (k, v) in m.iter() {
            let slot = match k.as_str() {
                "task_id" => &mut v_task_id,
                "workflow_id" => &mut v_workflow_id,
                "activity_id" => &mut v_activity_id,
                "campaign_id" => &mut v_campaign_id,
                "hostname" => &mut v_hostname,
                "status" => &mut v_status,
                "type" => &mut v_type,
                "started_at" => &mut v_started_at,
                "ended_at" => &mut v_ended_at,
                "telemetry_at_start" => &mut tele_start,
                "telemetry_at_end" => &mut tele_end,
                "used" => &mut v_used,
                "generated" => &mut v_generated,
                _ => continue,
            };
            *slot = Some(v);
        }
    }
    let get_str = |v: Option<&Value>| match v {
        Some(Value::Str(s)) => Some(s.clone()),
        _ => None,
    };
    // `TaskMessage::from_value` requires these three as strings; a
    // document missing any of them never reaches the oracle frame.
    let task_id = get_str(v_task_id);
    let workflow_id = get_str(v_workflow_id);
    let activity_id = get_str(v_activity_id);
    let decodable = task_id.is_some() && workflow_id.is_some() && activity_id.is_some();
    if !decodable {
        return ExtractedRow {
            decodable,
            strs: Default::default(),
            floats: Default::default(),
            report,
        };
    }

    let mut irregular = |name: &str| {
        report.irregular |= field_bit(lookup(name).expect("known field"));
    };

    // Pass-through strings with decode defaults.
    let campaign = get_str(v_campaign_id).unwrap_or_else(|| {
        irregular("campaign_id");
        default_campaign()
    });
    let hostname = get_str(v_hostname).unwrap_or_else(|| {
        irregular("hostname");
        default_hostname()
    });
    // Canonicalized enums: the decode parses (case-insensitively for
    // status) and falls back to the default; the frame cell is the
    // canonical wire symbol. Irregular whenever canonical != raw.
    let status = match get_str(v_status) {
        Some(raw) => {
            let parsed = TaskStatus::parse(raw.as_str()).unwrap_or_default();
            if parsed.sym().as_str() != raw.as_str() {
                irregular("status");
            }
            parsed.sym()
        }
        None => {
            irregular("status");
            TaskStatus::default().sym()
        }
    };
    let msg_type = match get_str(v_type) {
        Some(raw) => {
            let parsed = MessageType::parse(raw.as_str()).unwrap_or_default();
            if parsed.sym().as_str() != raw.as_str() {
                irregular("type");
            }
            parsed.sym()
        }
        None => {
            irregular("type");
            MessageType::default().sym()
        }
    };

    // Timestamps: decode coerces to f64 with a 0.0 default; a raw
    // value an index cannot coerce the same way is irregular.
    let started_at = v_started_at.and_then(Value::as_f64).unwrap_or_else(|| {
        irregular("started_at");
        0.0
    });
    let ended_at = v_ended_at.and_then(Value::as_f64).unwrap_or_else(|| {
        irregular("ended_at");
        0.0
    });
    let duration = (ended_at - started_at).max(0.0);

    // Derived telemetry means: present exactly when the section key
    // is present (however malformed — decode defaults shine through).
    let cpu_start = tele_start.map(|t| telemetry_mean(t, "cpu.percent"));
    let cpu_end = tele_end.map(|t| telemetry_mean(t, "cpu.percent"));
    let gpu_end = tele_end.map(|t| telemetry_mean(t, "gpu.percent"));
    let mem_end = tele_end.map(|t| {
        t.get_path("memory.used_mb")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
    });

    // Dataflow keys shadowing a non-protected bare column name poison
    // that column store-wide (a nested object would flatten to dotted
    // names, but an empty object or scalar takes the bare name — the
    // top-level check over-approximates on the safe side).
    for section in [v_used, v_generated] {
        if let Some(Value::Object(m)) = section {
            for name in POISONABLE {
                if m.contains_key(name) {
                    report.poison |= field_bit(lookup(name).expect("poisonable field"));
                }
            }
        }
    }

    ExtractedRow {
        decodable,
        strs: [
            task_id,
            Some(campaign),
            workflow_id,
            activity_id,
            Some(hostname),
            Some(status),
            Some(msg_type),
        ],
        floats: [
            Some(started_at),
            Some(ended_at),
            Some(duration),
            cpu_start,
            cpu_end,
            gpu_end,
            mem_end,
        ],
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::obj;

    #[test]
    fn lookup_covers_all_fields_and_nothing_else() {
        for (i, name) in STR_FIELDS.iter().enumerate() {
            assert_eq!(lookup(name), Some(ColField::Str(i)));
        }
        for (i, name) in F64_FIELDS.iter().enumerate() {
            assert_eq!(lookup(name), Some(ColField::F64(i)));
        }
        assert_eq!(lookup("y"), None);
        assert_eq!(lookup("used.status"), None);
    }

    #[test]
    fn field_bits_are_distinct() {
        let mut seen = 0u16;
        for name in STR_FIELDS.iter().chain(F64_FIELDS.iter()) {
            let bit = field_bit(lookup(name).unwrap());
            assert_eq!(seen & bit, 0, "{name}");
            seen |= bit;
        }
    }

    #[test]
    fn well_formed_doc_extracts_regular() {
        let mut shard = ColumnarShard::default();
        let doc = prov_model::TaskMessageBuilder::new("t0", "wf", "act")
            .span(5.0, 8.5)
            .host("n0")
            .build()
            .to_value();
        let report = shard.push_doc(&doc);
        assert_eq!(report.irregular, 0);
        assert_eq!(report.poison, 0);
        assert!(shard.is_decodable(0));
        assert_eq!(
            shard.value(0, lookup("task_id").unwrap()),
            Value::from("t0")
        );
        assert_eq!(
            shard.value(0, lookup("duration").unwrap()),
            Value::Float(3.5)
        );
        assert_eq!(
            shard.value(0, lookup("status").unwrap()),
            Value::from("FINISHED")
        );
        // No telemetry: the derived means are absent, not zero.
        assert_eq!(
            shard.value(0, lookup("cpu_percent_end").unwrap()),
            Value::Null
        );
        assert_eq!(shard.present(lookup("cpu_percent_end").unwrap()), 0);
    }

    #[test]
    fn defaults_and_canonicalization_mark_irregular() {
        let mut shard = ColumnarShard::default();
        let doc = obj! {
            "task_id" => "t", "workflow_id" => "wf", "activity_id" => "a",
            "status" => "finished", "started_at" => "not-a-number",
        };
        let report = shard.push_doc(&doc);
        assert!(shard.is_decodable(0));
        assert_eq!(
            shard.value(0, lookup("status").unwrap()),
            Value::from("FINISHED")
        );
        assert_eq!(
            shard.value(0, lookup("started_at").unwrap()),
            Value::Float(0.0)
        );
        for name in [
            "status",
            "started_at",
            "campaign_id",
            "hostname",
            "type",
            "ended_at",
        ] {
            let bit = field_bit(lookup(name).unwrap());
            assert_ne!(report.irregular & bit, 0, "{name} should be irregular");
        }
        assert!(!hint_safe(lookup("status").unwrap(), report.irregular));
        assert!(hint_safe(lookup("task_id").unwrap(), report.irregular));
        // Derived fields never back an index hint, regular or not.
        assert!(!hint_safe(lookup("duration").unwrap(), 0));
    }

    #[test]
    fn undecodable_doc_is_all_absent() {
        let mut shard = ColumnarShard::default();
        shard.push_doc(&obj! {"task_id" => "t-only"});
        assert!(!shard.is_decodable(0));
        assert_eq!(shard.value(0, lookup("task_id").unwrap()), Value::Null);
        assert_eq!(shard.present(lookup("task_id").unwrap()), 0);
    }

    #[test]
    fn dataflow_shadow_poisons_unprotected_columns() {
        let mut shard = ColumnarShard::default();
        let doc = obj! {
            "task_id" => "t", "workflow_id" => "wf", "activity_id" => "a",
            "generated" => obj! {"gpu_percent_end" => 99.0},
        };
        let report = shard.push_doc(&doc);
        assert_ne!(
            report.poison & field_bit(lookup("gpu_percent_end").unwrap()),
            0
        );
        assert_eq!(
            report.poison & field_bit(lookup("mem_used_mb_end").unwrap()),
            0
        );
    }

    #[test]
    fn telemetry_means_match_decode() {
        use prov_model::TaskMessage;
        let synth = prov_model::TelemetrySynth::frontier(3);
        let msg = prov_model::TaskMessageBuilder::new("t", "wf", "a")
            .telemetry(synth.snapshot(1, 0, 0.4), synth.snapshot(1, 1, 0.4))
            .build();
        let doc = msg.to_value();
        let mut shard = ColumnarShard::default();
        shard.push_doc(&doc);
        let back = TaskMessage::from_value(&doc).unwrap();
        let end = back.telemetry_at_end.unwrap();
        assert_eq!(
            shard.value(0, lookup("cpu_percent_end").unwrap()),
            Value::Float(end.cpu_mean())
        );
        assert_eq!(
            shard.value(0, lookup("gpu_percent_end").unwrap()),
            Value::Float(end.gpu_mean())
        );
        assert_eq!(
            shard.value(0, lookup("mem_used_mb_end").unwrap()),
            Value::Float(end.mem_used_mb)
        );
    }

    fn doc(task: &str, status: &str, dur_end: f64) -> Value {
        prov_model::TaskMessageBuilder::new(task, "wf", "act")
            .status(TaskStatus::parse(status).unwrap())
            .span(0.0, dur_end)
            .host("n0")
            .build()
            .to_value()
    }

    /// Reference evaluation: per-row `matches_pred` over every decodable
    /// slot — the oracle the kernels must agree with.
    fn scan_oracle(shard: &ColumnarShard, preds: &[ColPredicate<'_>]) -> Vec<u32> {
        (0..shard.len())
            .filter(|&s| shard.is_decodable(s) && preds.iter().all(|p| shard.matches_pred(s, p)))
            .map(|s| s as u32)
            .collect()
    }

    fn scan_kernels(shard: &ColumnarShard, preds: &[ColPredicate<'_>]) -> Vec<u32> {
        let compiled = shard.compile(preds);
        let mut out = Vec::new();
        let mut sel = Vec::new();
        for c in 0..shard.n_chunks() {
            shard.filter_chunk(&compiled, c, &mut sel);
            out.extend_from_slice(&sel);
        }
        out
    }

    #[test]
    fn kernels_agree_with_per_row_oracle_across_chunk_boundaries() {
        let mut shard = ColumnarShard::with_chunk(4);
        for i in 0..23 {
            let status = if i % 3 == 0 { "ERROR" } else { "FINISHED" };
            shard.push_doc(&doc(&format!("t{i}"), status, i as f64));
        }
        // Undecodable row in the middle of a chunk.
        shard.push_doc(&obj! {"task_id" => "broken"});
        let err = Value::from("ERROR");
        let lo = Value::Float(5.0);
        let t7 = Value::from("t7");
        let missing = Value::from("not-in-dict");
        let int_lit = Value::Int(3);
        let list = [Value::from("t1"), Value::from("t20"), Value::from("zzz")];
        let status_f = lookup("status").unwrap();
        let dur_f = lookup("duration").unwrap();
        let task_f = lookup("task_id").unwrap();
        let cases: Vec<Vec<ColPredicate<'_>>> = vec![
            vec![ColPredicate::Cmp(status_f, CmpOp::Eq, &err)],
            vec![ColPredicate::Cmp(status_f, CmpOp::Ne, &err)],
            vec![
                ColPredicate::Cmp(status_f, CmpOp::Eq, &err),
                ColPredicate::Cmp(dur_f, CmpOp::Gt, &lo),
            ],
            vec![ColPredicate::Cmp(task_f, CmpOp::Eq, &t7)],
            vec![ColPredicate::Cmp(task_f, CmpOp::Eq, &missing)],
            vec![ColPredicate::Cmp(task_f, CmpOp::Ne, &missing)],
            vec![ColPredicate::Cmp(task_f, CmpOp::Gt, &t7)],
            vec![ColPredicate::Cmp(status_f, CmpOp::Eq, &int_lit)],
            vec![ColPredicate::Cmp(status_f, CmpOp::Ne, &int_lit)],
            vec![ColPredicate::Cmp(dur_f, CmpOp::Le, &lo)],
            vec![ColPredicate::In(task_f, &list)],
            vec![
                ColPredicate::In(task_f, &list),
                ColPredicate::Cmp(dur_f, CmpOp::Ge, &lo),
            ],
        ];
        for preds in &cases {
            assert_eq!(
                scan_kernels(&shard, preds),
                scan_oracle(&shard, preds),
                "kernel mismatch for {preds:?}"
            );
        }
    }

    #[test]
    fn nan_and_null_cells_follow_frame_semantics() {
        let mut shard = ColumnarShard::with_chunk(4);
        // started_at = NaN survives as a Float cell.
        shard.push_doc(&obj! {
            "task_id" => "t0", "workflow_id" => "wf", "activity_id" => "a",
            "started_at" => f64::NAN,
        });
        // No telemetry → cpu_percent_end is a null cell.
        shard.push_doc(&doc("t1", "FINISHED", 2.0));
        let zero = Value::Float(0.0);
        let started = lookup("started_at").unwrap();
        let cpu = lookup("cpu_percent_end").unwrap();
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let preds = vec![ColPredicate::Cmp(started, op, &zero)];
            assert_eq!(
                scan_kernels(&shard, &preds),
                scan_oracle(&shard, &preds),
                "NaN semantics for {op:?}"
            );
            let preds = vec![ColPredicate::Cmp(cpu, op, &zero)];
            assert_eq!(
                scan_kernels(&shard, &preds),
                scan_oracle(&shard, &preds),
                "null-cell semantics for {op:?}"
            );
        }
        // Null literal: only `!=` matches non-null cells.
        let null = Value::Null;
        for op in [CmpOp::Eq, CmpOp::Ne] {
            let preds = vec![ColPredicate::Cmp(started, op, &null)];
            assert_eq!(scan_kernels(&shard, &preds), scan_oracle(&shard, &preds));
        }
        // In-list containing null matches null cells.
        let list = [Value::Null, Value::Float(2.0)];
        let preds = vec![ColPredicate::In(cpu, &list)];
        assert_eq!(scan_kernels(&shard, &preds), scan_oracle(&shard, &preds));
    }

    #[test]
    fn zone_maps_prune_whole_chunks() {
        let mut shard = ColumnarShard::with_chunk(8);
        for i in 0..64 {
            shard.push_doc(&doc(&format!("t{i}"), "FINISHED", i as f64));
        }
        // Range predicate selecting only the last chunk's durations.
        let bound = Value::Float(59.5);
        let preds = [ColPredicate::Cmp(
            lookup("duration").unwrap(),
            CmpOp::Gt,
            &bound,
        )];
        let compiled = shard.compile(&preds);
        let pruned = (0..shard.n_chunks())
            .filter(|&c| shard.chunk_prunable(&compiled, c))
            .count();
        assert_eq!(pruned, 7, "all but the last chunk must be zone-pruned");
        // Eq on a late-appearing symbol prunes every earlier chunk via
        // code stability.
        let last = Value::from("t63");
        let preds = [ColPredicate::Cmp(
            lookup("task_id").unwrap(),
            CmpOp::Eq,
            &last,
        )];
        let compiled = shard.compile(&preds);
        assert!((0..7).all(|c| shard.chunk_prunable(&compiled, c)));
        assert!(!shard.chunk_prunable(&compiled, 7));
        assert_eq!(scan_kernels(&shard, &preds), vec![63]);
    }

    #[test]
    fn dictionary_codes_are_stable_and_first_appearance_ordered() {
        let mut shard = ColumnarShard::with_chunk(4);
        for s in ["ERROR", "FINISHED", "ERROR", "RUNNING"] {
            shard.push_doc(&doc(&format!("t-{s}"), s, 1.0));
        }
        let status = match lookup("status").unwrap() {
            ColField::Str(i) => i,
            _ => unreachable!(),
        };
        let dict: Vec<&str> = shard.dict(status).iter().map(Sym::as_str).collect();
        assert_eq!(dict, vec!["ERROR", "FINISHED", "RUNNING"]);
        assert_eq!(shard.str_codes(status), &[0, 1, 0, 2]);
    }
}
