//! Out-of-core read path over sealed segments: lazy chunk paging with a
//! bounded resident set.
//!
//! A durable store opened lazily ([`crate::store::ProvenanceDatabase::open`])
//! does not re-ingest its sealed history. Instead each document-store shard
//! carries a [`ColdShard`]: the sealed, chunk-aligned row prefix stays on
//! disk and is described only by per-segment metadata plus the parsed zone
//! footer ([`crate::segment::ZoneTables`]). Queries consult the footer zone
//! maps *before any I/O* — a chunk the zones prove predicate-free is never
//! read — and page the rest in whole [`chunk_rows`]-sized chunks through a
//! process-wide byte budget (`PROVDB_RESIDENT_MB`, LRU eviction), so the
//! resident set stays bounded no matter how large the corpus is.
//!
//! ## Exactness
//!
//! A paged chunk re-derives exactly the state the resident sidecar would
//! hold for the same rows: every record is CRC-verified, decoded with the
//! WAL's canonical codec, and run through the same [`crate::columnar::
//! extract`] pass ingest uses, so [`PagedChunk::value`] equals
//! [`crate::columnar::ColumnarShard::value`] cell for cell and predicate
//! evaluation ([`PagedChunk::matches_pred`]) agrees with the compiled
//! in-memory kernels on every row. The out-of-core differential suite pins
//! this: a store reopened with a tiny budget answers every golden and
//! random pipeline byte-identically to a fully-resident one.
//!
//! ## Immutability and locking
//!
//! Sealed rows sit below every snapshot high-water mark and are immutable
//! by construction, so paged reads need no coordination with writers: each
//! [`ColdSegment`] keeps the `File` handle it was attached with and serves
//! chunk loads with positional reads (`read_exact_at`), which share no
//! cursor and take no lock. Compaction may unlink or replace a segment
//! file at any time; the held descriptor keeps the original immutable
//! bytes readable (POSIX unlink semantics), so scans race nothing.
//!
//! Paging failures (I/O error, checksum mismatch) are store corruption
//! discovered after open — like the WAL append path, they panic with the
//! failing path rather than silently dropping rows.

use crate::columnar::{self, ColField, ColPredicate, ExtractedRow};
use crate::segment::{SegmentMeta, ZoneTables};
use crate::wal::{crc32, decode_value};
use dataframe::{cmp_matches, values_equal};
use parking_lot::Mutex;
use prov_model::{Sym, Value};
use std::collections::HashMap;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default resident-set budget for paged cold chunks (256 MiB).
pub(crate) const DEFAULT_RESIDENT_BYTES: usize = 256 << 20;

/// Byte length of a segment file's fixed header (magic + metadata:
/// 6 + 4 + 4 + 8 + 8 + 4 + 4), i.e. where the document records begin.
const DATA_START: u64 = 38;

/// `PROVDB_RESIDENT_MB` as bytes, when set to a positive integer.
pub(crate) fn env_resident_bytes() -> Option<usize> {
    std::env::var("PROVDB_RESIDENT_MB")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .map(|n| (n as usize) << 20)
}

/// Observability counters of the chunk pager (see
/// [`crate::ProvenanceDatabase::pager_stats`]). All zeros on in-memory
/// stores and eagerly opened stores, which never page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagerStats {
    /// Chunk reads served from the resident set.
    pub hits: u64,
    /// Chunks paged in from disk.
    pub paged_in: u64,
    /// Chunks evicted to stay under the byte budget.
    pub evicted: u64,
    /// Cold chunks skipped via the on-disk zone maps before any I/O.
    pub zone_skips: u64,
    /// Paged chunks currently resident.
    pub resident_chunks: u64,
    /// Estimated bytes of the resident paged chunks.
    pub resident_bytes: u64,
}

/// One cold chunk, fully hydrated: the decoded documents plus the same
/// per-row cells the resident columnar sidecar would hold for them.
pub(crate) struct PagedChunk {
    /// Decoded documents in slot order.
    pub(crate) docs: Vec<Arc<Value>>,
    decodable: Vec<bool>,
    strs: [Vec<Option<Sym>>; columnar::STR_FIELDS.len()],
    floats: [Vec<Option<f64>>; columnar::F64_FIELDS.len()],
    /// Resident-set accounting estimate: raw record bytes scaled for the
    /// decoded tree plus a per-row constant for the cell vectors.
    bytes: usize,
}

impl PagedChunk {
    /// Rows in this chunk.
    pub(crate) fn rows(&self) -> usize {
        self.docs.len()
    }

    /// Estimated resident bytes (see the field docs).
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    /// The frame cell for `(row, field)` — mirrors
    /// [`columnar::ColumnarShard::value`] exactly.
    pub(crate) fn value(&self, row: usize, f: ColField) -> Value {
        match f {
            ColField::Str(i) => match self.strs[i].get(row) {
                Some(Some(s)) => Value::Str(s.clone()),
                _ => Value::Null,
            },
            ColField::F64(i) => self.floats[i]
                .get(row)
                .and_then(|v| *v)
                .map(Value::Float)
                .unwrap_or(Value::Null),
        }
    }

    /// Evaluate one predicate on one row with frame semantics — mirrors
    /// [`columnar::ColumnarShard::matches_pred`].
    pub(crate) fn matches_pred(&self, row: usize, p: &ColPredicate<'_>) -> bool {
        match p {
            ColPredicate::Cmp(f, op, lit) => cmp_matches(&self.value(row, *f), *op, lit),
            ColPredicate::In(f, list) => {
                let v = self.value(row, *f);
                list.iter().any(|x| values_equal(x, &v))
            }
        }
    }

    /// Surviving decodable rows of the conjunction, chunk-relative and
    /// ascending — the paged counterpart of
    /// [`columnar::ColumnarShard::filter_chunk`] (which hands back the
    /// same verdicts via its compiled kernels).
    pub(crate) fn filter(&self, preds: &[ColPredicate<'_>], sel: &mut Vec<u32>) {
        sel.clear();
        for row in 0..self.rows() {
            if self.decodable[row] && preds.iter().all(|p| self.matches_pred(row, p)) {
                sel.push(row as u32);
            }
        }
    }

    /// Present cells of a field among the first `n` rows.
    pub(crate) fn present_prefix(&self, f: ColField, n: usize) -> usize {
        let n = n.min(self.rows());
        match f {
            ColField::Str(i) => self.strs[i][..n].iter().filter(|v| v.is_some()).count(),
            ColField::F64(i) => self.floats[i][..n].iter().filter(|v| v.is_some()).count(),
        }
    }
}

/// Fail loudly on a cold read that cannot be served: sealed bytes were
/// readable at attach time, so this is post-open corruption or a dying
/// disk — continuing would silently drop rows from query answers.
fn page_fault(msg: &str, meta: &SegmentMeta) -> ! {
    panic!("provdb: cold segment {msg}: {}", meta.path.display());
}

/// One sealed segment attached for paging: its metadata, the parsed zone
/// footer, the held file descriptor, and the lazily built chunk offset
/// table.
pub(crate) struct ColdSegment {
    meta: SegmentMeta,
    file: File,
    zones: ZoneTables,
    /// Byte offset of each chunk boundary in the record region
    /// (`n_chunks + 1` entries), built on first touch with one buffered
    /// walk over the record headers — no payload is decoded.
    offsets: OnceLock<Vec<u64>>,
}

impl ColdSegment {
    pub(crate) fn new(meta: SegmentMeta, file: File, zones: ZoneTables) -> Self {
        Self {
            meta,
            file,
            zones,
            offsets: OnceLock::new(),
        }
    }

    /// Positional read filling `buf` entirely, tolerating short reads.
    fn read_full_at(&self, buf: &mut [u8], pos: u64) {
        if let Err(e) = self.file.read_exact_at(buf, pos) {
            page_fault(&format!("read failed ({e})"), &self.meta);
        }
    }

    fn offsets(&self) -> &[u64] {
        self.offsets.get_or_init(|| {
            let n_docs = self.meta.n_docs as usize;
            let chunk = (self.meta.chunk as usize).max(1);
            let mut offs = Vec::with_capacity(n_docs / chunk + 2);
            let mut pos = DATA_START;
            // Buffered header walk: records are length-prefixed, so one
            // sequential pass over `[len][crc]` pairs locates every chunk
            // boundary without decoding a payload.
            let mut buf = vec![0u8; 256 * 1024];
            let mut buf_start = 0u64;
            let mut buf_len = 0usize;
            let file_len = self
                .file
                .metadata()
                .map(|m| m.len())
                .unwrap_or_else(|e| page_fault(&format!("stat failed ({e})"), &self.meta));
            for i in 0..n_docs {
                if i % chunk == 0 {
                    offs.push(pos);
                }
                if pos < buf_start || pos + 8 > buf_start + buf_len as u64 {
                    buf_start = pos;
                    buf_len = (file_len.saturating_sub(pos) as usize).min(buf.len());
                    if buf_len < 8 {
                        page_fault("record header overruns file", &self.meta);
                    }
                    self.read_full_at(&mut buf[..buf_len], pos);
                }
                let o = (pos - buf_start) as usize;
                let len = u32::from_le_bytes(buf[o..o + 4].try_into().expect("4 bytes"));
                pos += 8 + len as u64;
            }
            offs.push(pos);
            offs
        })
    }

    /// Read, verify, decode, and extract one chunk of documents. `lc` is
    /// the chunk index local to this segment.
    fn load_chunk(&self, lc: usize) -> PagedChunk {
        let offs = self.offsets();
        let (a, b) = (offs[lc], offs[lc + 1]);
        let mut raw = vec![0u8; (b - a) as usize];
        self.read_full_at(&mut raw, a);
        let chunk = self.meta.chunk as usize;
        let rows = chunk.min(self.meta.n_docs as usize - lc * chunk);
        let mut docs = Vec::with_capacity(rows);
        let mut decodable = Vec::with_capacity(rows);
        let mut strs: [Vec<Option<Sym>>; columnar::STR_FIELDS.len()] = Default::default();
        let mut floats: [Vec<Option<f64>>; columnar::F64_FIELDS.len()] = Default::default();
        let mut pos = 0usize;
        for _ in 0..rows {
            let header: [u8; 8] = raw
                .get(pos..pos + 8)
                .and_then(|b| b.try_into().ok())
                .unwrap_or_else(|| page_fault("torn record", &self.meta));
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            pos += 8;
            let payload = raw
                .get(pos..pos + len)
                .unwrap_or_else(|| page_fault("torn record", &self.meta));
            pos += len;
            if crc32(&[payload]) != crc {
                page_fault("record checksum mismatch", &self.meta);
            }
            let mut dpos = 0usize;
            let doc = decode_value(payload, &mut dpos)
                .filter(|_| dpos == len)
                .unwrap_or_else(|| page_fault("undecodable record", &self.meta));
            // The same pure extraction ingest runs: the paged cells are
            // byte-identical to what the resident sidecar held when this
            // chunk was sealed.
            let row: ExtractedRow = columnar::extract(&doc);
            decodable.push(row.decodable);
            for (i, v) in row.strs.into_iter().enumerate() {
                strs[i].push(v);
            }
            for (i, v) in row.floats.into_iter().enumerate() {
                floats[i].push(v);
            }
            docs.push(Arc::new(doc));
        }
        // Decoded trees and interned symbols cost more than the wire
        // bytes; a fixed scale keeps accounting cheap and monotone.
        let bytes = raw.len() * 4 + rows * 96;
        PagedChunk {
            docs,
            decodable,
            strs,
            floats,
            bytes,
        }
    }
}

struct LruInner {
    /// `(shard, global cold chunk) → (last-used tick, chunk)`.
    map: HashMap<(usize, usize), (u64, Arc<PagedChunk>)>,
    bytes: usize,
    tick: u64,
}

/// The store-wide paged-chunk cache: a byte budget, an LRU map, and the
/// stat counters surfaced through [`PagerStats`]. Shaped like
/// [`crate::cache::PlanCache`]'s ledger — atomics for the monotone
/// counters, one short-lived mutex for the resident map, loads done
/// outside the lock.
pub(crate) struct PagerCore {
    budget: usize,
    inner: Mutex<LruInner>,
    hits: AtomicU64,
    paged_in: AtomicU64,
    evicted: AtomicU64,
    zone_skips: AtomicU64,
}

impl PagerCore {
    pub(crate) fn new(budget: usize) -> Self {
        Self {
            budget: budget.max(1),
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            paged_in: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            zone_skips: AtomicU64::new(0),
        }
    }

    /// Current counters.
    pub(crate) fn stats(&self) -> PagerStats {
        let (chunks, bytes) = {
            let inner = self.inner.lock();
            (inner.map.len() as u64, inner.bytes as u64)
        };
        PagerStats {
            hits: self.hits.load(Ordering::Relaxed),
            paged_in: self.paged_in.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            zone_skips: self.zone_skips.load(Ordering::Relaxed),
            resident_chunks: chunks,
            resident_bytes: bytes,
        }
    }

    fn note_zone_skip(&self) {
        self.zone_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Resident chunk for `key`, loading with `load` on a miss. The load
    /// runs outside the lock; a racing double-load keeps the first copy.
    /// Eviction drops least-recently-used chunks until the budget holds —
    /// readers keep their `Arc`s, so an evicted chunk stays valid until
    /// its last user drops it.
    fn get(&self, key: (usize, usize), load: impl FnOnce() -> PagedChunk) -> Arc<PagedChunk> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.0 = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.1);
            }
        }
        let chunk = Arc::new(load());
        self.paged_in.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                // Lost a load race; keep the resident copy.
                e.get_mut().0 = tick;
                return Arc::clone(&e.get().1);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((tick, Arc::clone(&chunk)));
            }
        }
        inner.bytes += chunk.bytes();
        while inner.bytes > self.budget && !inner.map.is_empty() {
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| *k)
                .expect("non-empty map");
            if let Some((_, dropped)) = inner.map.remove(&oldest) {
                inner.bytes -= dropped.bytes();
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
            if oldest == key {
                // Even the fresh chunk may exceed the budget on its own;
                // the caller's Arc keeps it alive for this read.
                break;
            }
        }
        chunk
    }
}

/// The sealed, on-disk row prefix of one document-store shard: rows
/// `[0, rows)` (always whole chunks) live in `segs` and are paged on
/// demand through the shared [`PagerCore`].
pub(crate) struct ColdShard {
    rows: usize,
    chunk: usize,
    /// Attached segments, sorted by `start`, contiguous from slot 0.
    segs: Vec<ColdSegment>,
    core: Arc<PagerCore>,
    shard: usize,
    /// Present cells per field over the cold rows, summed from the
    /// footer zone maps at attach time (no I/O at query time).
    present: [usize; columnar::STR_FIELDS.len() + columnar::F64_FIELDS.len()],
}

impl ColdShard {
    /// Attach `segs` as shard `shard`'s cold prefix of `rows` rows.
    pub(crate) fn new(
        rows: usize,
        chunk: usize,
        segs: Vec<ColdSegment>,
        core: Arc<PagerCore>,
        shard: usize,
    ) -> Self {
        debug_assert!(rows.is_multiple_of(chunk.max(1)));
        let mut present = [0usize; columnar::STR_FIELDS.len() + columnar::F64_FIELDS.len()];
        for seg in &segs {
            let covered = (seg.meta.end.min(rows as u64) - seg.meta.start) as usize;
            let chunks = covered / chunk.max(1);
            for (i, zones) in seg.zones.str_zones.iter().enumerate() {
                present[i] += zones[..chunks]
                    .iter()
                    .map(|&(_, _, p)| p as usize)
                    .sum::<usize>();
            }
            for (i, zones) in seg.zones.f64_zones.iter().enumerate() {
                present[columnar::STR_FIELDS.len() + i] += zones[..chunks]
                    .iter()
                    .map(|&(_, _, p, _)| p as usize)
                    .sum::<usize>();
            }
        }
        Self {
            rows,
            chunk,
            segs,
            core,
            shard,
            present,
        }
    }

    /// Cold rows of this shard (a whole-chunk multiple).
    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    /// Rows per chunk (matches the live sidecar's chunk size).
    pub(crate) fn chunk_rows(&self) -> usize {
        self.chunk
    }

    /// Cold chunks of this shard.
    pub(crate) fn n_chunks(&self) -> usize {
        self.rows / self.chunk.max(1)
    }

    /// Present cells of a field over all cold rows (from the footers).
    pub(crate) fn present(&self, f: ColField) -> usize {
        match f {
            ColField::Str(i) => self.present[i],
            ColField::F64(i) => self.present[columnar::STR_FIELDS.len() + i],
        }
    }

    /// Present cells of a field among the first `n` cold rows: whole
    /// chunks from the footer zones, the one boundary chunk paged.
    pub(crate) fn present_prefix(&self, f: ColField, n: usize) -> usize {
        let n = n.min(self.rows);
        if n == self.rows {
            return self.present(f);
        }
        let full = n / self.chunk;
        let mut sum = 0usize;
        for c in 0..full {
            let (seg, lc) = self.locate(c);
            sum += match f {
                ColField::Str(i) => seg.zones.str_zones[i][lc].2 as usize,
                ColField::F64(i) => seg.zones.f64_zones[i][lc].2 as usize,
            };
        }
        let boundary = n - full * self.chunk;
        if boundary > 0 {
            sum += self.chunk(full).present_prefix(f, boundary);
        }
        sum
    }

    /// Segment holding global cold chunk `c`, plus the segment-local
    /// chunk index.
    fn locate(&self, c: usize) -> (&ColdSegment, usize) {
        let row = (c * self.chunk) as u64;
        let seg = self
            .segs
            .iter()
            .find(|s| s.meta.start <= row && row < s.meta.end)
            .unwrap_or_else(|| {
                panic!(
                    "provdb: cold chunk {c} of shard {} has no attached segment",
                    self.shard
                )
            });
        (seg, (row - seg.meta.start) as usize / self.chunk)
    }

    /// Whether the on-disk zone maps prove no row of cold chunk `c` can
    /// satisfy all predicates — decided from the footer alone, before any
    /// document byte is read. Conservative, exactly like the in-memory
    /// [`columnar::ColumnarShard::chunk_prunable`].
    pub(crate) fn chunk_prunable(&self, preds: &[ColPredicate<'_>], c: usize) -> bool {
        let (seg, lc) = self.locate(c);
        let prunable = seg.zones.chunk_decodable[lc] == 0
            || preds.iter().any(|p| match p {
                ColPredicate::Cmp(f, op, lit) => {
                    seg.zones
                        .chunk_skips(columnar::field_name(*f), *op, lit, lc, self.chunk as u32)
                }
                // In-lists have no footer test; never prune on them.
                ColPredicate::In(..) => false,
            });
        if prunable {
            self.core.note_zone_skip();
        }
        prunable
    }

    /// The resident (or freshly paged) cold chunk `c`.
    pub(crate) fn chunk(&self, c: usize) -> Arc<PagedChunk> {
        self.core.get((self.shard, c), || {
            let (seg, lc) = self.locate(c);
            seg.load_chunk(lc)
        })
    }

    /// Document at cold slot `slot` (pages its chunk if needed).
    pub(crate) fn doc(&self, slot: usize) -> Arc<Value> {
        let chunk = self.chunk(slot / self.chunk);
        Arc::clone(&chunk.docs[slot % self.chunk])
    }
}
