//! # prov-db
//!
//! The backend-agnostic provenance database of the reference architecture
//! (§2.3), with three backends mirroring the paper's options:
//!
//! * [`DocumentStore`] — MongoDB-shaped: JSON documents, dotted-path
//!   filters, projections, aggregation, hash indexes;
//! * [`KvStore`] — LMDB-shaped: ordered keys, batch puts, range/prefix scans;
//! * [`GraphStore`] — Neo4j-shaped: PROV property graph with lineage and
//!   path traversals;
//!
//! unified behind [`ProvenanceDatabase`], which fans each task message out
//! to all three and exposes the Query API the agent's offline tools use.

#![warn(missing_docs)]

pub mod document;
pub mod graph;
pub mod kv;
pub mod query;
pub mod store;

pub use document::DocumentStore;
pub use graph::{GraphEdge, GraphNode, GraphStore};
pub use kv::KvStore;
pub use query::{AggOp, Aggregate, Condition, DocQuery, GroupSpec, Op};
pub use store::ProvenanceDatabase;
