//! # prov-db
//!
//! The backend-agnostic provenance database of the reference architecture
//! (§2.3), with three backends mirroring the paper's options, rebuilt as a
//! sharded, clone-free engine for ingest-heavy workloads:
//!
//! * [`DocumentStore`] — MongoDB-shaped: JSON documents, dotted-path
//!   filters, projections, aggregation, hash + sorted-numeric indexes;
//! * [`KvStore`] — LMDB-shaped: ordered keys, batch puts, range/prefix scans;
//! * [`GraphStore`] — Neo4j-shaped: PROV property graph with lineage and
//!   path traversals and a single-lock [`GraphBatch`] apply path;
//!
//! unified behind [`ProvenanceDatabase`], which fans each task message out
//! to all three and exposes the Query API the agent's offline tools use.
//!
//! ## Sharding and shared handles
//!
//! The document store splits its collection across N independently locked
//! shards (N defaults to the core count, capped at 16; the `PROVDB_SHARDS`
//! env var overrides it); writers contend per shard instead of serializing
//! on one global `RwLock<Vec<_>>`. Documents are stored as `Arc<Value>`:
//! `find`/`get` return shared handles, never deep clones, and the KV
//! backend holds the *same* allocation the document store does — one
//! serialization per ingested message, shared everywhere.
//!
//! Reads fan out too: columnar scans and top-k selections run
//! shard-parallel on crossbeam scoped threads once the store is large
//! enough, with the worker count auto-tuned to the core count and
//! overridden by `PROVDB_THREADS` (capped at 16, exactly like
//! `PROVDB_SHARDS`; `=1` forces the exact sequential path — CI's
//! thread-matrix leg runs the suite both ways). Scan results are
//! thread-count invariant.
//!
//! A document's id encodes its location (`slot * nshards + shard`), ids
//! assigned by a single thread are dense and ascending, and queries sort
//! hits by id, so results are insertion-ordered and **shard-count
//! invariant**: any query answers identically on a 1-shard and a 16-shard
//! store (a property test in `tests/proptests.rs` pins this down).
//!
//! ## Index design
//!
//! Index keys are content hashes ([`prov_model::Value::stable_hash`]), so
//! neither inserts nor probes allocate (the previous engine rendered every
//! key to a `String` via `display_plain()` on both paths). Hash collisions
//! are harmless: candidates are always re-checked against the full query.
//! Equality conditions intersect **all** available indexes, starting from
//! the smallest candidate set; range predicates over hot numeric fields
//! (e.g. `started_at`) are served by a sorted index built with
//! [`DocumentStore::create_range_index`].
//!
//! ## Batch ingest (write-optimized, LSM-style)
//!
//! The streaming fast path, [`ProvenanceDatabase::insert_batch_shared`],
//! accepts the broker's own `Arc<TaskMessage>` handles by appending them to
//! a pending log — one pointer per message, no serialization, no index
//! maintenance. The next query (or backend accessor) materializes the
//! whole pending run in one batched pass: each message is serialized
//! exactly once, the resulting `Arc<Value>` is shared by all three views,
//! and each backend applies its batch under a single lock acquisition
//! ([`DocumentStore::insert_many_shared`], [`KvStore::put_batch`],
//! [`GraphStore::apply_batch`]). A keeper flushing a 64-message batch thus
//! blocks on one mutex append instead of ~192 lock round-trips, and bursts
//! are absorbed at pointer-append speed. The eager path
//! ([`ProvenanceDatabase::insert_batch`]) materializes immediately for
//! callers holding owned messages. `crates/bench` tracks both the accept
//! and the fully-materialized ingest cost against the preserved
//! pre-refactor baseline in `BENCH_provdb.json` (see `repro --provdb`).
//!
//! ## Concurrent serving (snapshot reads + plan cache)
//!
//! Query-side callers read through [`StoreSnapshot`]
//! ([`ProvenanceDatabase::snapshot`]): a generation-pinned immutable view
//! — refcount bump plus per-shard row high-water mark — whose reads never
//! flush and never block on ingest. Snapshot query execution consults a
//! shared plan-keyed result cache ([`PlanCache`], keyed on
//! `(canonical plan, generation)` via [`provql::plan::cache_key`]), and
//! [`serve::QueryServer`] puts a bounded thread-pool front-end with
//! admission control over the whole read path. See `docs/serving.md`.
//!
//! ## Durability (WAL + sealed segments)
//!
//! [`ProvenanceDatabase::open`] turns the same engine into a durable
//! store rooted at a directory: every materialized batch is serialized
//! into an append-only, checksummed write-ahead log *before* any view
//! observes it (`PROVDB_WAL_SYNC=always|batch` picks the fsync cadence),
//! complete chunks of materialized rows are periodically sealed into
//! immutable per-shard columnar segments whose footers are the
//! serialized chunk zone maps (so on-disk scans prune whole segments
//! without reading a document), and sealed runs are compacted off the
//! accept path. Recovery replays the last sealed segments plus the WAL
//! tail through the normal materialization path — a crashed-and-
//! recovered store answers every query byte-identically to one that
//! never crashed, which `tests/recovery_differential.rs` enforces at
//! every WAL record boundary. See `docs/durability.md`.
//!
//! ## Out-of-core reads (lazy open + chunk paging)
//!
//! Reopening a durable store is *lazy* by default: sealed coverage is
//! attached, not replayed — open reads only the segment directory, the
//! zone-map footers, and the WAL tail, so open time is independent of
//! sealed history. Queries then page cold chunks from the segment files
//! on demand ([`pager`]), pruning through the on-disk zone maps before
//! any I/O and holding the paged set under a byte budget
//! (`PROVDB_RESIDENT_MB`, LRU; counters in [`PagerStats`]). Sealed rows
//! are immutable and below every snapshot high-water mark, so paged
//! reads take no lock. `PROVDB_EAGER_OPEN=1` (or
//! [`DurabilityOptions::eager_open`]) restores the eager re-ingest, and
//! `tests/out_of_core_differential.rs` pins that both paths answer every
//! pipeline byte-identically.

#![warn(missing_docs)]

pub(crate) mod columnar;
pub(crate) mod pager;
pub(crate) mod segment;
pub(crate) mod wal;

pub mod cache;
pub mod csr;
pub mod document;
pub mod exec;
pub mod graph;
pub mod kv;
pub mod query;
pub mod serve;
pub mod snapshot;
pub mod store;

pub use cache::{CacheOutcome, CacheStats, PlanCache};
pub use csr::{CsrGraph, Direction};
pub use document::{DocId, DocumentStore, ScanPredicate, TopkScan};
pub use exec::{
    execute_plan, execute_plan_snapshot, execute_plan_with, full_frame, try_execute,
    try_execute_with, GraphOracle, Pushdown,
};
pub use graph::{GraphBatch, GraphEdge, GraphNode, GraphStore};
pub use kv::KvStore;
pub use pager::PagerStats;
pub use query::{AggOp, Aggregate, Condition, DocQuery, GroupSpec, Op};
pub use serve::{QueryServer, ServeConfig, ServeError, ServeStats, SubmitError};
pub use snapshot::StoreSnapshot;
pub use store::{DurabilityOptions, DurableStats, ProvenanceDatabase};
pub use wal::SyncPolicy;
