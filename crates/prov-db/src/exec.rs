//! Plan-based pushdown executor: serve provql query plans directly from
//! the document store's indexes instead of materializing the whole corpus
//! into a frame per query.
//!
//! [`try_execute`] lowers the query with [`provql::plan`] (this module
//! implements [`PushdownCapability`] for [`ProvenanceDatabase`]), turns
//! each scan's pushed conjuncts into a [`DocQuery`] — equality conjuncts
//! become hash-index probes, `started_at` ranges hit the sorted numeric
//! index, and the store intersects candidate sets
//! smallest-first — then builds a *projected* frame containing only the
//! referenced columns of the surviving documents and finishes the
//! pipeline through the ordinary stage machine. Pushdown therefore never
//! reimplements query semantics; it only shrinks how many documents reach
//! the frame.
//!
//! When a plan is not servable ([`Pushdown::NeedsFullFrame`]) the caller
//! runs the classic full-materialize oracle instead. That happens when:
//!
//! * a pipeline's output exposes the whole frame width (no projection,
//!   whole-row `loc`, `describe`, subset-less `drop_duplicates`) — only
//!   the corpus-wide column union can answer those;
//! * a referenced column is absent from every surviving document — the
//!   oracle decides whether that is an all-null column or an unknown-column
//!   error, and its error message carries the full available-column list.
//!
//! Because the fallback is the oracle itself, pushdown is transparent:
//! both paths return identical [`QueryOutput`]s (asserted per eval query
//! set by the differential tests in `eval`).

use crate::csr::CsrGraph;
use crate::document::{DocumentStore, ScanPredicate};
use crate::query::{Condition, DocQuery, Op};
use crate::snapshot::StoreSnapshot;
use crate::store::ProvenanceDatabase;
use dataframe::{CmpOp, DataFrame};
use prov_model::{TaskMessage, Value};
use provql::plan::{GraphPlan, PipelinePlan, PushOp, PushdownCapability, QueryPlan};
use provql::{ExecError, GraphQuery, Pipeline, Query, QueryOutput, Stage};
use std::sync::Arc;

/// Outcome of attempting a plan-based execution.
#[derive(Debug)]
pub enum Pushdown {
    /// The plan was served from the store (result may still be a query
    /// error, e.g. an invalid stage combination — identical to what the
    /// full-materialize path would raise).
    Executed(Result<QueryOutput, ExecError>),
    /// The plan is not servable by a projected scan; run the
    /// full-materialize oracle. Carries a diagnostic reason.
    NeedsFullFrame(&'static str),
}

/// The columns whose equality conjuncts are index-servable: exactly the
/// fields [`ProvenanceDatabase::new`] builds hash indexes for (their
/// frame column is the document path of the same name, byte-for-byte
/// equal in both representations). A pushed conjunct must earn an index
/// probe — advertising unindexed columns would classify full-scan
/// queries as "selective" and make callers bypass the cached frame they
/// built precisely to amortize repeated corpus-wide work.
const PUSHABLE_EQ: &[&str] = &["task_id", "activity_id", "workflow_id", "started_at"];

/// Fields a range conjunct can be pushed on: the sorted numeric index
/// maintained on `started_at`.
const PUSHABLE_RANGE: &[&str] = &["started_at"];

impl PushdownCapability for ProvenanceDatabase {
    fn pushable_eq(&self, column: &str) -> bool {
        PUSHABLE_EQ.contains(&column)
    }
    fn pushable_range(&self, column: &str) -> bool {
        PUSHABLE_RANGE.contains(&column)
    }
    fn pushable_columnar(&self, column: &str) -> bool {
        // Metadata-only probe; pending stream ingest cannot un-poison a
        // column, so planning never pays a flush.
        self.documents_unflushed().columnar_servable(column)
    }
    fn pushable_sort(&self, column: &str) -> bool {
        // Exactly the columnar set: the top-k executor orders rows by
        // comparing column-vector cells (or streaming `started_at`'s
        // sorted index, which is itself columnar), so whatever lives
        // columnar can be ordered without materializing a frame.
        self.documents_unflushed().columnar_servable(column)
    }
    fn pushable_graph(&self) -> bool {
        // Path primitives lower onto the CSR compaction (see
        // [`crate::csr`]); the locking adjacency-map path stays reachable
        // through a capability that leaves this at the default `false`
        // (e.g. [`GraphOracle`]) and serves as the differential reference.
        true
    }
}

/// Capability wrapper that hides the columnar layer: plans made through it
/// split filters exactly as the pre-columnar planner did, which keeps the
/// decode-based scan path callable on its own (benchmarks, differential
/// tests).
struct IndexOnly<'a>(&'a ProvenanceDatabase);

impl PushdownCapability for IndexOnly<'_> {
    fn pushable_eq(&self, column: &str) -> bool {
        self.0.pushable_eq(column)
    }
    fn pushable_range(&self, column: &str) -> bool {
        self.0.pushable_range(column)
    }
}

/// Capability wrapper that advertises everything the database does
/// *except* graph pushdown: plans made through it route path primitives to
/// the locking adjacency-map traversals instead of the CSR kernels. This
/// is how the differential suite runs one provql query through both graph
/// executors on one store.
pub struct GraphOracle<'a>(pub &'a ProvenanceDatabase);

impl PushdownCapability for GraphOracle<'_> {
    fn pushable_eq(&self, column: &str) -> bool {
        self.0.pushable_eq(column)
    }
    fn pushable_range(&self, column: &str) -> bool {
        self.0.pushable_range(column)
    }
    fn pushable_columnar(&self, column: &str) -> bool {
        self.0.pushable_columnar(column)
    }
    fn pushable_sort(&self, column: &str) -> bool {
        self.0.pushable_sort(column)
    }
    // pushable_graph: trait default (false) — the point of the wrapper.
}

/// Plan a query against this database and execute it via projected,
/// index-pushed scans where possible.
pub fn try_execute(db: &ProvenanceDatabase, query: &Query) -> Pushdown {
    try_execute_with(db, query, true)
}

/// [`try_execute`] with the columnar layer switchable: `use_columnar =
/// false` plans with index-only capability and scans by decoding surviving
/// documents — the pre-columnar behavior, kept callable so the
/// `columnar_find`/`columnar_aggregate` benchmarks and the differential
/// tests can compare both scan paths on the same store.
pub fn try_execute_with(db: &ProvenanceDatabase, query: &Query, use_columnar: bool) -> Pushdown {
    if use_columnar {
        execute_plan(db, &provql::plan(query, db))
    } else {
        execute_plan_with(db, &provql::plan(query, &IndexOnly(db)), false)
    }
}

/// The full-materialize oracle: every stored document decoded back into a
/// task message and flattened into one corpus-wide frame. This is the
/// frame the pre-plan agent tool built per query; it remains the
/// reference semantics pushdown is differentially tested against, the
/// fallback for plans the store cannot serve, and the scan-path side of
/// the `query_pushdown_vs_scan` benchmark — all through this one helper,
/// so the oracle under test is always the oracle in production.
pub fn full_frame(db: &ProvenanceDatabase) -> DataFrame {
    let docs = db.find(&DocQuery::new());
    let msgs: Vec<TaskMessage> = docs
        .iter()
        .filter_map(|d| TaskMessage::from_value(d))
        .collect();
    DataFrame::from_messages(&msgs)
}

/// Execute an already-lowered plan (callers that inspect the plan first —
/// e.g. to route unselective queries to a cached frame instead — avoid
/// planning twice).
pub fn execute_plan(db: &ProvenanceDatabase, plan: &QueryPlan) -> Pushdown {
    execute_plan_with(db, plan, true)
}

/// [`execute_plan`] with the columnar layer switchable (see
/// [`try_execute_with`]). A plan carrying columnar conjuncts must be
/// executed with the layer on — without it the conjuncts have nowhere to
/// run, so such pipelines defer to the oracle.
pub fn execute_plan_with(
    db: &ProvenanceDatabase,
    plan: &QueryPlan,
    use_columnar: bool,
) -> Pushdown {
    // Materialize pending ingest once up front (the historical accessor
    // behavior), then run the bounded machinery with no bound.
    let store = db.documents();
    execute_plan_inner(store, plan, use_columnar, None, GraphSource::Db(db))
}

/// Execute a plan against a pinned snapshot: same machinery as
/// [`execute_plan`], but reads go through the bounded kernels (rows above
/// the snapshot's per-shard high-water mark are invisible) and nothing is
/// flushed — snapshot creation already materialized everything visible,
/// so this never touches the flusher lock and never blocks on ingest.
pub fn execute_plan_snapshot(snap: &StoreSnapshot, plan: &QueryPlan) -> Pushdown {
    execute_plan_inner(
        snap.documents(),
        plan,
        true,
        Some(snap.bound()),
        GraphSource::Snap(snap),
    )
}

/// Where a plan's graph path primitives execute. Frame-only plans never
/// touch it; graph plans pick the CSR compaction or the adjacency-map
/// oracle off it according to their planned `pushable` gate.
#[derive(Clone, Copy)]
enum GraphSource<'a> {
    /// The flushing facade ([`execute_plan`]-level callers).
    Db(&'a ProvenanceDatabase),
    /// A pinned snapshot (CSR pinned per snapshot, adjacency view live).
    Snap(&'a StoreSnapshot),
}

fn execute_plan_inner(
    store: &DocumentStore,
    plan: &QueryPlan,
    use_columnar: bool,
    bound: Option<&[usize]>,
    graph: GraphSource<'_>,
) -> Pushdown {
    match plan {
        QueryPlan::Pipeline(p) => exec_pipeline(store, p, use_columnar, bound),
        QueryPlan::Len(inner) => {
            match execute_plan_inner(store, inner, use_columnar, bound, graph) {
                Pushdown::Executed(Ok(out)) => Pushdown::Executed(Ok(QueryOutput::Scalar(
                    prov_model::Value::Int(out.len() as i64),
                ))),
                other => other,
            }
        }
        QueryPlan::Binary(a, op, b) => {
            // Strict left-to-right evaluation, matching the frame
            // executor: the left side is executed AND validated as a
            // scalar before the right side runs, so both paths surface
            // the same error for the same query.
            let left = match execute_plan_inner(store, a, use_columnar, bound, graph) {
                Pushdown::Executed(Ok(out)) => out,
                other => return other,
            };
            let left = match provql::scalar_operand(left) {
                Ok(v) => v,
                Err(e) => return Pushdown::Executed(Err(e)),
            };
            let right = match execute_plan_inner(store, b, use_columnar, bound, graph) {
                Pushdown::Executed(Ok(out)) => out,
                other => return other,
            };
            let right = match provql::scalar_operand(right) {
                Ok(v) => v,
                Err(e) => return Pushdown::Executed(Err(e)),
            };
            Pushdown::Executed(provql::arith_scalars(left, *op, right))
        }
        QueryPlan::Number(n) => {
            Pushdown::Executed(Ok(QueryOutput::Scalar(prov_model::Value::Float(*n))))
        }
        QueryPlan::Graph(g) => Pushdown::Executed(Ok(exec_graph(graph, g))),
    }
}

/// Execute one graph path primitive. Traversals answer as a two-column
/// frame `[task_id, depth]` in BFS emission order; `paths(a, b)` answers
/// as a series named `path` holding the node sequence (empty when
/// unreachable). Both executors — the CSR kernels when the plan's
/// `pushable` gate is set, the locking adjacency-map traversals when it
/// is not — produce identical shapes, so the plan cache (which keys on
/// the canonical query text, not the gate) can serve either's result to
/// both.
fn exec_graph(src: GraphSource<'_>, g: &GraphPlan) -> QueryOutput {
    if g.pushable {
        let csr: Arc<CsrGraph> = match src {
            GraphSource::Db(db) => db.csr_for(db.generation()),
            GraphSource::Snap(snap) => Arc::clone(snap.graph_csr()),
        };
        match &g.query {
            GraphQuery::Upstream { node, depth } => lineage_frame(csr.upstream(node, *depth)),
            GraphQuery::Downstream { node, depth } => lineage_frame(csr.downstream(node, *depth)),
            GraphQuery::Khop { node, k } => lineage_frame(csr.khop(node, *k)),
            GraphQuery::Paths { from, to } => path_series(
                csr.shortest_path_bidi(from, to)
                    .map(|p| p.into_iter().map(Value::Str).collect()),
            ),
        }
    } else {
        let graph = match src {
            GraphSource::Db(db) => db.graph(),
            GraphSource::Snap(snap) => snap.graph(),
        };
        match &g.query {
            GraphQuery::Upstream { node, depth } => {
                lineage_frame_owned(graph.upstream_lineage(node, *depth))
            }
            GraphQuery::Downstream { node, depth } => {
                lineage_frame_owned(graph.downstream_impact(node, *depth))
            }
            GraphQuery::Khop { node, k } => lineage_frame_owned(graph.khop(node, *k)),
            GraphQuery::Paths { from, to } => path_series(
                graph
                    .shortest_path(from, to)
                    .map(|p| p.into_iter().map(|id| Value::from(id.as_str())).collect()),
            ),
        }
    }
}

fn lineage_frame(hits: Vec<(prov_model::Sym, usize)>) -> QueryOutput {
    let (ids, depths): (Vec<Value>, Vec<Value>) = hits
        .into_iter()
        .map(|(id, d)| (Value::Str(id), Value::Int(d as i64)))
        .unzip();
    QueryOutput::Frame(
        DataFrame::from_columns(vec![("task_id", ids), ("depth", depths)])
            .expect("lineage columns are parallel by construction"),
    )
}

fn lineage_frame_owned(hits: Vec<(String, usize)>) -> QueryOutput {
    let (ids, depths): (Vec<Value>, Vec<Value>) = hits
        .into_iter()
        .map(|(id, d)| (Value::from(id.as_str()), Value::Int(d as i64)))
        .unzip();
    QueryOutput::Frame(
        DataFrame::from_columns(vec![("task_id", ids), ("depth", depths)])
            .expect("lineage columns are parallel by construction"),
    )
}

fn path_series(path: Option<Vec<Value>>) -> QueryOutput {
    QueryOutput::Series {
        name: "path".to_string(),
        values: path.unwrap_or_default(),
    }
}

fn push_to_cmp(op: PushOp) -> CmpOp {
    match op {
        PushOp::Eq => CmpOp::Eq,
        PushOp::Lt => CmpOp::Lt,
        PushOp::Le => CmpOp::Le,
        PushOp::Gt => CmpOp::Gt,
        PushOp::Ge => CmpOp::Ge,
    }
}

/// The columns a pipeline's non-filter stages require to exist. Filters
/// are exempt: a missing column evaluates per-row as null (never an
/// error), exactly like an all-null column, so filter-only references stay
/// servable even when zero documents survive the scan.
fn checked_columns(p: &PipelinePlan) -> Vec<String> {
    Pipeline {
        stages: p
            .ops
            .iter()
            .map(|op| op.to_stage())
            .filter(|s| !matches!(s, Stage::Filter(_)))
            .collect(),
    }
    .referenced_columns()
}

fn finish_stages(p: &PipelinePlan, frame: &DataFrame) -> Pushdown {
    let mut stages: Vec<Stage> = Vec::with_capacity(p.ops.len() + 1);
    if let Some(residual) = &p.scan.residual {
        stages.push(Stage::Filter(residual.clone()));
    }
    stages.extend(p.ops.iter().map(|op| op.to_stage()));
    Pushdown::Executed(provql::execute_stages(&stages, frame))
}

fn exec_pipeline(
    store: &DocumentStore,
    p: &PipelinePlan,
    use_columnar: bool,
    bound: Option<&[usize]>,
) -> Pushdown {
    let Some(columns) = &p.scan.columns else {
        return Pushdown::NeedsFullFrame("output exposes the whole frame width");
    };
    if use_columnar && store.columnar_enabled() {
        if let Some(result) = exec_pipeline_columnar(store, p, columns, bound) {
            return result;
        }
        // A filter column stopped being servable between planning and
        // execution (dataflow-key poisoning raced in); the conjuncts the
        // planner split out have nowhere to run but the oracle.
        return Pushdown::NeedsFullFrame("columnar layer no longer serves a planned conjunct");
    }
    if !p.scan.columnar.is_empty() || !p.scan.isin.is_empty() {
        return Pushdown::NeedsFullFrame("columnar conjuncts without a columnar layer");
    }
    if !p.scan.sort.is_empty() {
        // A pushed sort promises ordered rows, which only the columnar
        // top-k executor delivers; without it the decoded scan would
        // apply the pushed limit to *unsorted* rows.
        return Pushdown::NeedsFullFrame("pushed sort without a columnar layer");
    }
    exec_pipeline_decoded(store, p, columns, bound)
}

/// The decode-based projected scan: pushed conjuncts become a [`DocQuery`]
/// (index probes with the store's raw-value matching), surviving documents
/// are decoded back into task messages, and only the referenced columns
/// are materialized. This is the pre-columnar scan path; it remains the
/// executor for stores without a sidecar and the baseline side of the
/// columnar benchmarks.
fn exec_pipeline_decoded(
    store: &DocumentStore,
    p: &PipelinePlan,
    columns: &[String],
    bound: Option<&[usize]>,
) -> Pushdown {
    let mut doc_query = DocQuery::new();
    for f in &p.scan.pushed {
        doc_query.conditions.push(Condition {
            // The planner only pushes columns this database advertised,
            // and for all of them the document path is the column name.
            path: f.column.clone(),
            op: match f.op {
                PushOp::Eq => Op::Eq,
                PushOp::Lt => Op::Lt,
                PushOp::Le => Op::Lte,
                PushOp::Gt => Op::Gt,
                PushOp::Ge => Op::Gte,
            },
            value: f.value.clone(),
        });
    }
    // Safe because the planner only sets a limit when nothing between the
    // scan and the head() filters or reorders rows, and every stored
    // document is a Listing-1 task message (decodes 1:1 into a row).
    doc_query.limit = p.scan.limit;

    let docs = match bound {
        Some(b) => store.find_bounded(&doc_query, b),
        None => store.find(&doc_query),
    };
    let msgs: Vec<TaskMessage> = docs
        .iter()
        .filter_map(|d| TaskMessage::from_value(d))
        .collect();
    let frame = DataFrame::from_messages_projected(&msgs, columns);

    // Column-existence semantics are corpus-wide, but the scan only saw
    // the survivors: a referenced column they never set could still exist
    // (all-null there) elsewhere, or not at all (an unknown-column error
    // listing every available column). Only the oracle can tell — so fall
    // back when such a column is required.
    if checked_columns(p).iter().any(|c| !frame.has_column(c)) {
        return Pushdown::NeedsFullFrame("required column absent from scan survivors");
    }
    finish_stages(p, &frame)
}

/// The columnar scan: pushed *and* planner-split residual `col op lit`
/// conjuncts all evaluate over the sidecar's column vectors with frame
/// semantics (index probes pre-filter candidates when safe), a pushed
/// sort routes through the streaming top-k executor
/// ([`DocumentStore::columnar_topk`]: per-shard bounded selection over
/// the vectors, or a sorted-index cursor, survivors ordered by the exact
/// frame sort rule before any pushed limit truncates), and every
/// referenced columnar column is materialized straight from the vectors —
/// surviving documents are decoded only for columns the sidecar does not
/// hold (for a sorted+limited pipeline that means at most `k` decodes,
/// and zero when the pipeline is fully columnar). Because the sidecar
/// knows corpus-wide column presence, a checked columnar column that
/// exists corpus-wide never forces the oracle, even when no survivor
/// provides it (it materializes all-null, exactly as the filtered oracle
/// frame would show it).
///
/// Returns `None` when a filter column is not servable (caller falls back).
fn exec_pipeline_columnar(
    store: &DocumentStore,
    p: &PipelinePlan,
    columns: &[String],
    bound: Option<&[usize]>,
) -> Option<Pushdown> {
    let mut filters: Vec<ScanPredicate<'_>> =
        Vec::with_capacity(p.scan.pushed.len() + p.scan.columnar.len() + p.scan.isin.len());
    for f in &p.scan.pushed {
        // Pushed conjuncts are re-verified against the decoded cell values
        // so index/frame coercion differences can never leak a row the
        // oracle would not produce.
        filters.push(ScanPredicate::Cmp(
            f.column.as_str(),
            push_to_cmp(f.op),
            &f.value,
        ));
    }
    for f in &p.scan.columnar {
        filters.push(ScanPredicate::Cmp(f.column.as_str(), f.op, &f.value));
    }
    for f in &p.scan.isin {
        // Membership lists compile to dictionary code sets (or f64 probe
        // lists) inside the scan kernels; the planner already kept any
        // null-element list residual.
        filters.push(ScanPredicate::In(f.column.as_str(), &f.values));
    }
    let survivors = if p.scan.sort.is_empty() {
        match bound {
            Some(b) => store.columnar_scan_where_bounded(&filters, p.scan.limit, b)?,
            None => store.columnar_scan_where(&filters, p.scan.limit)?,
        }
    } else {
        // Top-k: the scan orders survivors by the frame's sort rule
        // before the limit truncates, so the frame below is built in
        // final order — the kept Sort node downstream is a stable re-sort
        // of already-ordered rows, i.e. the identity (guaranteed because
        // NaN keys, the one case where the comparator is not a strict
        // weak order, abort to the oracle here).
        let keys: Vec<(&str, bool)> = p
            .scan
            .sort
            .iter()
            .map(|(c, asc)| (c.as_str(), *asc))
            .collect();
        let scan = match bound {
            Some(b) => store.columnar_topk_where_bounded(&filters, &keys, p.scan.limit, b),
            None => store.columnar_topk_where(&filters, &keys, p.scan.limit),
        };
        match scan {
            crate::document::TopkScan::Served(ids) => ids,
            crate::document::TopkScan::NotServable => return None,
            crate::document::TopkScan::NanSortKey => {
                return Some(Pushdown::NeedsFullFrame(
                    "NaN sort key: only the oracle's stable sort defines that order",
                ))
            }
        }
    };

    if let Some(result) = grouped_agg_over_codes(store, p, &survivors, bound) {
        return Some(result);
    }

    // Column presence is corpus-wide metadata; a snapshot's corpus is the
    // rows below its bound.
    let presence = |c: &str| match bound {
        Some(b) => store.columnar_presence_bounded(c, b),
        None => store.columnar_presence(c),
    };

    let checked = checked_columns(p);
    let decode_cols: Vec<String> = columns
        .iter()
        .filter(|c| !store.columnar_servable(c))
        .cloned()
        .collect();
    let decoded: Option<DataFrame> = if decode_cols.is_empty() {
        None
    } else {
        let docs = store.docs_for_ids(&survivors);
        let msgs: Vec<TaskMessage> = docs
            .iter()
            .filter_map(|d| TaskMessage::from_value(d))
            .collect();
        Some(DataFrame::from_messages_projected(&msgs, &decode_cols))
    };

    let mut cols_out: Vec<(String, Vec<Value>)> = Vec::with_capacity(columns.len());
    for c in columns {
        if let Some(present) = presence(c) {
            if present > 0 {
                cols_out.push((c.clone(), store.columnar_gather(&survivors, c)?));
            } else if checked.iter().any(|k| k == c) {
                // No decodable document provides the column anywhere: the
                // oracle owns the unknown-column error (its message lists
                // the full corpus-wide column set).
                return Some(Pushdown::NeedsFullFrame(
                    "required column absent corpus-wide",
                ));
            }
            // filter-only + absent: missing ≡ all-null under Expr rules.
        } else {
            match decoded.as_ref().and_then(|f| f.column(c)) {
                Some(col) => cols_out.push((c.clone(), col.values().to_vec())),
                None if checked.iter().any(|k| k == c) => {
                    return Some(Pushdown::NeedsFullFrame(
                        "required column absent from scan survivors",
                    ));
                }
                None => {}
            }
        }
    }
    let frame = DataFrame::from_columns_with_rows(cols_out, survivors.len())
        .expect("scan columns share the survivor count");
    Some(finish_stages(p, &frame))
}

/// Vectorized group-by: serve the `groupby(key)[col].agg(f)` pipeline
/// shape by aggregating over dictionary codes
/// ([`DocumentStore::columnar_group_codes`]) instead of materializing the
/// key column into a frame and re-hashing a `Value` key per row. Group
/// order (first appearance), per-group row order (id order), aggregate
/// arithmetic ([`dataframe::AggFunc::apply`] over the same gathered cells
/// in the same order), and output frame shape (`[key, col]`, bare names)
/// are all bit-identical to the frame path; symbols are resolved from the
/// shard dictionaries only when the per-group output rows are built. Any
/// stages after the aggregation run through the ordinary stage machine on
/// the aggregated frame, exactly as the oracle would reach them.
///
/// Returns `None` for any other pipeline shape (including non-string or
/// absent key/value columns and a pushed sort, whose `Sort` node precedes
/// the group-by), leaving the general scan path to serve or defer it.
fn grouped_agg_over_codes(
    store: &DocumentStore,
    p: &PipelinePlan,
    survivors: &[crate::document::DocId],
    bound: Option<&[usize]>,
) -> Option<Pushdown> {
    use provql::plan::PlanNode;
    if p.scan.residual.is_some() || p.ops.len() < 3 {
        return None;
    }
    let presence = |c: &str| match bound {
        Some(b) => store.columnar_presence_bounded(c, b),
        None => store.columnar_presence(c),
    };
    let (
        PlanNode::Residual(Stage::GroupBy(keys)),
        PlanNode::Residual(Stage::Col(col)),
        PlanNode::Residual(Stage::Agg(func)),
    ) = (&p.ops[0], &p.ops[1], &p.ops[2])
    else {
        return None;
    };
    let [key] = keys.as_slice() else {
        return None;
    };
    // Both columns must exist corpus-wide (the general path owns the
    // absent-column fallback), and a self-aggregation's duplicate output
    // column is an error the frame path should raise verbatim.
    if key == col || presence(key).is_none_or(|n| n == 0) || presence(col).is_none_or(|n| n == 0) {
        return None;
    }
    let (group_keys, row_groups) = store.columnar_group_codes(survivors, key)?;
    let cells = store.columnar_gather(survivors, col)?;
    let mut grouped: Vec<Vec<Value>> = vec![Vec::new(); group_keys.len()];
    for (&g, v) in row_groups.iter().zip(cells) {
        grouped[g as usize].push(v);
    }
    let aggs: Vec<Value> = grouped.iter().map(|vs| func.apply(vs)).collect();
    let frame = DataFrame::from_columns(vec![(key.clone(), group_keys), (col.clone(), aggs)])
        .expect("group keys and aggregates are parallel by construction");
    let rest: Vec<Stage> = p.ops[3..].iter().map(|op| op.to_stage()).collect();
    Some(Pushdown::Executed(provql::execute_stages(&rest, &frame)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::{TaskMessageBuilder, Value};
    use provql::parse;

    fn seeded_db() -> ProvenanceDatabase {
        let db = ProvenanceDatabase::new();
        let msgs: Vec<TaskMessage> = (0..40)
            .map(|i| {
                TaskMessageBuilder::new(
                    format!("t{i}"),
                    format!("wf-{}", i % 4),
                    if i % 2 == 0 { "run_dft" } else { "postprocess" },
                )
                .host(format!("node{}", i % 3))
                .uses("x", i as f64)
                .generates("y", (i * 2) as f64)
                .span(i as f64, i as f64 + 1.0 + (i % 5) as f64)
                .build()
            })
            .collect();
        db.insert_batch(&msgs);
        db
    }

    /// The full-materialize oracle, as the agent tool runs it.
    fn oracle_frame(db: &ProvenanceDatabase) -> DataFrame {
        full_frame(db)
    }

    fn assert_differential(db: &ProvenanceDatabase, text: &str, expect_pushed: bool) {
        let query = parse(text).unwrap();
        let oracle = provql::execute(&query, &oracle_frame(db));
        match try_execute(db, &query) {
            Pushdown::Executed(got) => {
                assert!(expect_pushed, "{text}: expected fallback, got execution");
                assert_eq!(got, oracle, "{text}");
            }
            Pushdown::NeedsFullFrame(reason) => {
                assert!(!expect_pushed, "{text}: unexpected fallback ({reason})");
            }
        }
    }

    #[test]
    fn pushed_queries_match_oracle() {
        let db = seeded_db();
        for text in [
            r#"len(df[df["activity_id"] == "run_dft"])"#,
            r#"df[df["workflow_id"] == "wf-1"][["task_id", "y"]]"#,
            r#"df[df["workflow_id"] == "wf-1"].groupby("activity_id")["y"].mean()"#,
            r#"df[df["started_at"] > 20]["y"].sum()"#,
            r#"df[(df["activity_id"] == "run_dft") & (df["y"] > 30)]["y"].mean()"#,
            r#"df[df["hostname"] == "node1"][["task_id"]].head(3)"#,
            r#"df["ended_at"].max() - df["started_at"].min()"#,
            r#"df.groupby("activity_id")["duration"].mean()"#,
            r#"df["hostname"].value_counts()"#,
            r#"df.loc[df["y"].idxmax(), "task_id"]"#,
            r#"len(df[df["duration"] > 3])"#,
            r#"df[df["task_id"] == "t7"][["x", "y"]]"#,
            r#"len(df[df["status"] == "ERROR"])"#,
            r#"df.sort_values("duration", ascending=False)[["task_id", "duration"]].head(3)"#,
            // Null comparisons: residual (never pushed), and the residual
            // filter must reproduce the frame executor's null-to-false
            // short-circuit, not the store's kind-tag ordering.
            r#"len(df[df["started_at"] > None])"#,
            r#"len(df[df["started_at"] == None])"#,
        ] {
            assert_differential(&db, text, true);
        }
    }

    #[test]
    fn unbounded_outputs_fall_back() {
        let db = seeded_db();
        for text in [
            r#"df[df["activity_id"] == "run_dft"]"#, // whole-width frame
            r#"df.loc[df["y"].idxmax()]"#,           // whole row
            r#"df.describe()"#,
            r#"df.drop_duplicates()"#,
        ] {
            assert_differential(&db, text, false);
        }
    }

    #[test]
    fn missing_checked_column_falls_back_to_oracle() {
        let db = seeded_db();
        // Unknown column in a projection: the oracle owns the
        // unknown-column error (with its available-column listing).
        let query = parse(r#"df[["nope"]]"#).unwrap();
        match try_execute(&db, &query) {
            Pushdown::NeedsFullFrame(_) => {}
            Pushdown::Executed(out) => panic!("expected fallback, got {out:?}"),
        }
        // The decode-based scan cannot tell a zero-survivor columnar
        // column from an unknown one and must defer; the columnar scan
        // knows corpus-wide presence and serves it (asserted equal to the
        // oracle in `filter_only_columns_never_force_fallback`).
        let query = parse(r#"df[df["workflow_id"] == "wf-nonexistent"][["task_id"]]"#).unwrap();
        match try_execute_with(&db, &query, false) {
            Pushdown::NeedsFullFrame(_) => {}
            Pushdown::Executed(out) => panic!("expected decoded-path fallback, got {out:?}"),
        }
        assert_differential(
            &db,
            r#"df[df["workflow_id"] == "wf-nonexistent"][["task_id"]]"#,
            true,
        );
    }

    #[test]
    fn filter_only_columns_never_force_fallback() {
        let db = seeded_db();
        // `nope` is filter-referenced only: missing column ≡ all-null
        // column under Expr semantics, so the scan path stays servable
        // and agrees with the oracle (empty result, not an error).
        assert_differential(&db, r#"df[df["nope"] > 1]["y"].mean()"#, true);
        // Zero survivors on a pushed filter with a count: still servable.
        assert_differential(
            &db,
            r#"len(df[df["workflow_id"] == "wf-nonexistent"])"#,
            true,
        );
    }

    #[test]
    fn query_errors_are_identical_through_both_paths() {
        let db = seeded_db();
        // Bare groupby: invalid through either executor.
        let query = parse(r#"df.groupby("activity_id")"#).unwrap();
        let oracle = provql::execute(&query, &oracle_frame(&db));
        match try_execute(&db, &query) {
            Pushdown::Executed(got) => assert_eq!(got, oracle),
            Pushdown::NeedsFullFrame(r) => panic!("unexpected fallback: {r}"),
        }
        assert!(oracle.is_err());
    }

    #[test]
    fn columnar_filters_and_aggregates_match_oracle() {
        let db = seeded_db();
        for text in [
            // Ne / unindexed-Eq / derived-range conjuncts: residual
            // pre-columnar, now evaluated over the column vectors.
            r#"len(df[df["status"] != "ERROR"])"#,
            r#"df[df["hostname"] == "node1"]["duration"].sum()"#,
            r#"df[df["duration"] > 3].groupby("activity_id")["duration"].mean()"#,
            r#"df[df["status"] != "PENDING"][["task_id"]].head(3)"#,
            // Unselective but fully columnar: served without decoding a
            // single document (and without the oracle).
            r#"df.groupby("activity_id")["duration"].mean()"#,
            r#"df[["task_id", "started_at"]].head(4)"#,
            r#"df["ended_at"].max() - df["started_at"].min()"#,
            // Mixed: status filters columnar, y decodes from survivors.
            r#"df[df["status"] == "FINISHED"][["task_id", "y"]].head(2)"#,
        ] {
            assert_differential(&db, text, true);
        }
    }

    #[test]
    fn isin_conjuncts_push_into_the_scan_and_match_oracle() {
        let db = seeded_db();
        for text in [
            r#"len(df[df["activity_id"].isin(["run_dft", "postprocess"])])"#,
            r#"df[df["workflow_id"].isin(["wf-1", "wf-3"])][["task_id"]]"#,
            r#"df[df["hostname"].isin(["node0", "node2", "missing"])]["duration"].sum()"#,
            // Composes with comparisons, limits, and a pushed top-k sort.
            r#"df[(df["activity_id"].isin(["run_dft"])) & (df["duration"] > 2)]["duration"].mean()"#,
            r#"df[df["hostname"].isin(["node1"])][["task_id"]].head(3)"#,
            r#"df[df["workflow_id"].isin(["wf-0", "wf-2"])].sort_values("started_at", ascending=False)[["task_id"]].head(4)"#,
            // Numeric membership probes the f64 vectors (Int literals
            // coerce like the frame does), and an empty match is exact.
            r#"len(df[df["started_at"].isin([3, 7.0, 99.5])])"#,
            r#"len(df[df["started_at"].isin([123456])])"#,
            // Non-matching literal kinds in the list never match a cell.
            r#"len(df[df["activity_id"].isin(["run_dft", 3])])"#,
        ] {
            assert_differential(&db, text, true);
        }
        // The shape really goes through the scan, not the residual filter.
        let query = parse(r#"df[df["activity_id"].isin(["run_dft"])][["task_id"]]"#).unwrap();
        let plan = provql::plan(&query, &db);
        let p = &plan.pipelines()[0];
        assert_eq!(p.scan.isin.len(), 1);
        assert!(p.scan.residual.is_none());
        // A null list element stays residual and still matches the oracle.
        assert_differential(
            &db,
            r#"len(df[df["activity_id"].isin(["run_dft", None])])"#,
            true,
        );
    }

    #[test]
    fn grouped_aggregation_over_codes_matches_oracle() {
        let db = seeded_db();
        for text in [
            // The vectorized shape itself, across aggregate functions.
            r#"df.groupby("activity_id")["duration"].mean()"#,
            r#"df.groupby("workflow_id")["duration"].sum()"#,
            r#"df.groupby("hostname")["started_at"].max()"#,
            r#"df.groupby("activity_id")["duration"].count()"#,
            // String-valued aggregation column (gathered, not decoded).
            r#"df.groupby("activity_id")["hostname"].count()"#,
            // Filters in front: the grouping runs over scan survivors.
            r#"df[df["started_at"] > 10].groupby("activity_id")["duration"].mean()"#,
            r#"df[df["status"] != "ERROR"].groupby("workflow_id")["duration"].sum()"#,
            // Stages after the aggregation run on the aggregated frame.
            r#"df.groupby("workflow_id")["duration"].mean().sort_values("duration", ascending=False).head(2)"#,
            // Zero survivors: empty groups, empty output, same shape.
            r#"df[df["workflow_id"] == "nope"].groupby("activity_id")["duration"].mean()"#,
            // Non-string key and non-columnar value fall back to the
            // general path, still exact.
            r#"df.groupby("started_at")["duration"].mean()"#,
            r#"df.groupby("activity_id")["y"].mean()"#,
        ] {
            assert_differential(&db, text, true);
        }
    }

    #[test]
    fn grouped_aggregation_unifies_symbols_across_shards() {
        // Force several shards so the same activity symbol gets different
        // shard-local dictionary codes, then group across them.
        let db = ProvenanceDatabase::with_shards(4);
        let msgs: Vec<TaskMessage> = (0..100)
            .map(|i| {
                TaskMessageBuilder::new(
                    format!("t{i}"),
                    format!("wf-{}", i % 3),
                    match i % 5 {
                        0 => "alpha",
                        1 => "beta",
                        2 => "gamma",
                        3 => "delta",
                        _ => "epsilon",
                    },
                )
                .span(i as f64, i as f64 + 1.0)
                .build()
            })
            .collect();
        db.insert_batch(&msgs);
        for text in [
            r#"df.groupby("activity_id")["duration"].mean()"#,
            r#"df[df["workflow_id"] != "wf-0"].groupby("activity_id")["started_at"].min()"#,
        ] {
            assert_differential(&db, text, true);
        }
    }

    #[test]
    fn decoded_and_columnar_paths_agree() {
        let db = seeded_db();
        for text in [
            r#"len(df[df["activity_id"] == "run_dft"])"#,
            r#"df[df["workflow_id"] == "wf-1"][["task_id", "y"]]"#,
            r#"df[df["started_at"] > 20]["y"].sum()"#,
        ] {
            let query = parse(text).unwrap();
            let columnar = try_execute_with(&db, &query, true);
            let decoded = try_execute_with(&db, &query, false);
            let (Pushdown::Executed(a), Pushdown::Executed(b)) = (columnar, decoded) else {
                panic!("{text}: both paths should execute");
            };
            assert_eq!(a, b, "{text}");
        }
    }

    #[test]
    fn dataflow_shadowed_telemetry_column_is_poisoned_not_wrong() {
        let db = ProvenanceDatabase::new();
        let msgs: Vec<TaskMessage> = (0..5)
            .map(|i| {
                let b = TaskMessageBuilder::new(format!("t{i}"), "wf", "a").span(0.0, 1.0);
                // One message's dataflow key shadows the bare frame name
                // of the telemetry-derived column.
                if i == 3 {
                    b.generates("gpu_percent_end", 42.0).build()
                } else {
                    b.build()
                }
            })
            .collect();
        db.insert_batch(&msgs);
        assert!(!db.documents().columnar_servable("gpu_percent_end"));
        assert!(db.documents().columnar_servable("mem_used_mb_end"));
        // The poisoned column decodes from survivors and still matches
        // the oracle (which sees the dataflow value).
        assert_differential(
            &db,
            r#"df[df["task_id"] == "t3"]["gpu_percent_end"].sum()"#,
            true,
        );
    }

    #[test]
    fn irregular_raw_fields_disable_hints_but_stay_exact() {
        let db = seeded_db();
        // A raw document missing `started_at` decodes with the 0.0
        // default: an index probe would never surface it for
        // `started_at == 0`, so ingesting it must flip the field to
        // full-vector evaluation.
        db.documents().insert(prov_model::obj! {
            "task_id" => "raw0", "workflow_id" => "wf-raw", "activity_id" => "x",
        });
        assert_differential(&db, r#"df[df["started_at"] == 0][["task_id"]]"#, true);
        assert_differential(&db, r#"len(df[df["started_at"] < 1])"#, true);
        // And an undecodable document stays invisible to both paths.
        db.documents()
            .insert(prov_model::obj! {"task_id" => "orphan"});
        assert_differential(&db, r#"len(df[df["started_at"] >= 0])"#, true);
    }

    #[test]
    fn topk_sort_limit_matches_oracle() {
        let db = seeded_db();
        for text in [
            // "latest/slowest N tasks" — the interactive shapes the top-k
            // executor exists for (started_at distinct; duration is full
            // of ties, broken by insertion order like the frame does).
            r#"df.sort_values("started_at", ascending=False)[["task_id", "started_at"]].head(3)"#,
            r#"df.sort_values("duration", ascending=False)[["task_id", "duration"]].head(5)"#,
            r#"df.sort_values("duration")[["task_id"]].head(5)"#,
            r#"df.sort_values(["duration", "started_at"])[["task_id"]].head(4)"#,
            r#"df.sort_values("hostname")[["task_id"]].head(4)"#,
            // Filters compose: pushed-index, columnar, and both.
            r#"df[df["workflow_id"] == "wf-1"].sort_values("started_at")[["task_id"]].head(2)"#,
            r#"df[df["status"] != "ERROR"].sort_values("duration", ascending=False)[["task_id"]].head(3)"#,
            r#"df[(df["activity_id"] == "run_dft") & (df["duration"] > 2)].sort_values("started_at", ascending=False)[["task_id"]].head(3)"#,
            // Edge k: zero, and larger than the corpus.
            r#"df.sort_values("started_at")[["task_id"]].head(0)"#,
            r#"df.sort_values("started_at", ascending=False)[["task_id"]].head(500)"#,
            // Bare pushed sort (no limit), and len() over a sorted head.
            r#"df.sort_values("started_at", ascending=False)[["task_id"]]"#,
            r#"len(df.sort_values("started_at").head(7))"#,
            // Mixed projection: sort key columnar, `y` decoded from the
            // k survivors only.
            r#"df.sort_values("started_at", ascending=False)[["task_id", "y"]].head(3)"#,
        ] {
            assert_differential(&db, text, true);
        }
        // And the shape actually pushes sort + limit (no silent oracle).
        let query =
            parse(r#"df.sort_values("started_at", ascending=False)[["task_id"]].head(3)"#).unwrap();
        let plan = provql::plan(&query, &db);
        let p = &plan.pipelines()[0];
        assert_eq!(p.scan.sort, vec![("started_at".to_string(), false)]);
        assert_eq!(p.scan.limit, Some(3));
    }

    #[test]
    fn topk_null_keys_sort_last_like_the_frame() {
        let db = seeded_db();
        // One message with telemetry: cpu_percent_end exists corpus-wide
        // but is null on every other row — nulls sort last either
        // direction, ties by insertion order.
        let synth = prov_model::TelemetrySynth::frontier(1);
        let msg = TaskMessageBuilder::new("tele", "wf-9", "run_dft")
            .telemetry(synth.snapshot(1, 0, 0.4), synth.snapshot(1, 1, 0.4))
            .span(100.0, 101.0)
            .build();
        db.insert_batch(std::iter::once(&msg));
        for text in [
            r#"df.sort_values("cpu_percent_end")[["task_id", "cpu_percent_end"]].head(4)"#,
            r#"df.sort_values("cpu_percent_end", ascending=False)[["task_id"]].head(4)"#,
        ] {
            assert_differential(&db, text, true);
        }
    }

    #[test]
    fn nan_sort_keys_defer_to_the_oracle() {
        let db = seeded_db();
        db.documents().insert(prov_model::obj! {
            "task_id" => "nan0", "workflow_id" => "wf-raw", "activity_id" => "x",
            "started_at" => f64::NAN, "ended_at" => 1.0,
        });
        // `Value::compare` calls mixed NaN comparisons Equal — not a
        // strict weak order — so the pushed path must refuse and let the
        // oracle's own stable sort define the (algorithm-defined) order.
        let query = parse(r#"df.sort_values("started_at")[["task_id"]].head(3)"#).unwrap();
        match try_execute(&db, &query) {
            Pushdown::NeedsFullFrame(_) => {}
            Pushdown::Executed(out) => panic!("NaN sort key must not be served: {out:?}"),
        }
        // A filter that drops the NaN row keeps top-k servable and exact.
        assert_differential(
            &db,
            r#"df[df["workflow_id"] == "wf-1"].sort_values("started_at")[["task_id"]].head(3)"#,
            true,
        );
    }

    #[test]
    fn topk_agrees_across_thread_counts() {
        let db = seeded_db();
        let texts = [
            r#"df.sort_values("duration", ascending=False)[["task_id", "duration"]].head(5)"#,
            r#"df[df["status"] != "ERROR"].sort_values("started_at")[["task_id"]].head(4)"#,
        ];
        let run = |threads: usize, text: &str| {
            db.documents().set_scan_threads(threads);
            match try_execute(&db, &parse(text).unwrap()) {
                Pushdown::Executed(out) => out,
                Pushdown::NeedsFullFrame(r) => panic!("{text}: unexpected fallback ({r})"),
            }
        };
        for text in texts {
            assert_eq!(run(1, text), run(4, text), "{text}");
        }
        db.documents().set_scan_threads(1);
    }

    #[test]
    fn pushed_limit_matches_head() {
        let db = seeded_db();
        let query = parse(r#"df[df["workflow_id"] == "wf-2"][["task_id"]].head(2)"#).unwrap();
        let Pushdown::Executed(Ok(QueryOutput::Frame(f))) = try_execute(&db, &query) else {
            panic!("expected pushed frame")
        };
        assert_eq!(f.len(), 2);
        assert_eq!(
            f.column("task_id").unwrap().get(0),
            Some(&Value::from("t2"))
        );
    }

    #[test]
    fn streaming_ingest_is_visible_to_pushdown() {
        let db = seeded_db();
        db.insert_batch_shared(std::iter::once(std::sync::Arc::new(
            TaskMessageBuilder::new("fresh", "wf-9", "run_dft").build(),
        )));
        let query = parse(r#"df[df["workflow_id"] == "wf-9"][["task_id"]]"#).unwrap();
        let Pushdown::Executed(Ok(QueryOutput::Frame(f))) = try_execute(&db, &query) else {
            panic!("expected pushed frame")
        };
        assert_eq!(f.len(), 1);
    }
}
