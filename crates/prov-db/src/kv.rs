//! Ordered key–value store — the LMDB-shaped backend ("high-frequency
//! key–value inserts", §2.3). A `BTreeMap` under an `RwLock` gives ordered
//! range scans and prefix queries; writes batch under one lock acquisition,
//! and values are stored and returned as [`Arc<Value>`] so gets and scans
//! never deep-clone documents — the batch insert path shares the same
//! allocation the document store holds.

use parking_lot::RwLock;
use prov_model::Value;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

/// Ordered KV store with range and prefix scans over shared values.
#[derive(Default)]
pub struct KvStore {
    map: RwLock<BTreeMap<String, Arc<Value>>>,
}

impl KvStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace; returns the previous value if any.
    pub fn put(&self, key: impl Into<String>, value: impl Into<Arc<Value>>) -> Option<Arc<Value>> {
        self.map.write().insert(key.into(), value.into())
    }

    /// Bulk insert under a single lock acquisition (the high-frequency
    /// insert path the paper assigns to LMDB-class stores). Loading into an
    /// empty store sorts the batch and bulk-builds the tree in one pass
    /// instead of paying per-key rebalancing inserts.
    pub fn put_batch<V: Into<Arc<Value>>>(&self, batch: Vec<(String, V)>) -> usize {
        let n = batch.len();
        let mut map = self.map.write();
        if map.is_empty() {
            let mut rows: Vec<(String, Arc<Value>)> =
                batch.into_iter().map(|(k, v)| (k, v.into())).collect();
            // Stable sort + FromIterator (which keeps the last of equal
            // keys) reproduces sequential-insert semantics exactly.
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            *map = rows.into_iter().collect();
        } else {
            for (k, v) in batch {
                map.insert(k, v.into());
            }
        }
        n
    }

    /// Fetch by key (shared handle, no clone of the payload).
    pub fn get(&self, key: &str) -> Option<Arc<Value>> {
        self.map.read().get(key).cloned()
    }

    /// Remove by key; returns the removed value.
    pub fn delete(&self, key: &str) -> Option<Arc<Value>> {
        self.map.write().remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inclusive-start, exclusive-end ordered range scan.
    pub fn range(&self, start: &str, end: &str) -> Vec<(String, Arc<Value>)> {
        self.map
            .read()
            .range::<str, _>((Bound::Included(start), Bound::Excluded(end)))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// All entries whose key starts with `prefix`, in key order.
    pub fn scan_prefix(&self, prefix: &str) -> Vec<(String, Arc<Value>)> {
        self.map
            .read()
            .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// First entry at or after `key`.
    pub fn seek(&self, key: &str) -> Option<(String, Arc<Value>)> {
        self.map
            .read()
            .range::<str, _>((Bound::Included(key), Bound::Unbounded))
            .next()
            .map(|(k, v)| (k.clone(), v.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::obj;

    #[test]
    fn put_get_delete() {
        let kv = KvStore::new();
        assert!(kv.put("task/t1", obj! {"a" => 1}).is_none());
        assert!(kv.put("task/t1", obj! {"a" => 2}).is_some());
        assert_eq!(
            kv.get("task/t1").unwrap().get("a").unwrap().as_i64(),
            Some(2)
        );
        assert!(kv.delete("task/t1").is_some());
        assert!(kv.get("task/t1").is_none());
    }

    #[test]
    fn gets_share_the_stored_allocation() {
        let kv = KvStore::new();
        let doc = Arc::new(obj! {"a" => 1});
        kv.put("k", doc.clone());
        assert!(Arc::ptr_eq(&kv.get("k").unwrap(), &doc));
    }

    #[test]
    fn prefix_scan_ordered() {
        let kv = KvStore::new();
        for i in [3, 1, 2] {
            kv.put(format!("wf1/t{i}"), Value::Int(i));
        }
        kv.put("wf2/t1", Value::Int(9));
        let hits = kv.scan_prefix("wf1/");
        assert_eq!(hits.len(), 3);
        let keys: Vec<&str> = hits.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["wf1/t1", "wf1/t2", "wf1/t3"]);
    }

    #[test]
    fn range_scan() {
        let kv = KvStore::new();
        for i in 0..10 {
            kv.put(format!("k{i}"), Value::Int(i));
        }
        let hits = kv.range("k3", "k7");
        assert_eq!(hits.len(), 4);
        assert_eq!(hits[0].0, "k3");
        assert_eq!(hits[3].0, "k6");
    }

    #[test]
    fn batch_insert_and_seek() {
        let kv = KvStore::new();
        let batch: Vec<(String, Value)> = (0..100)
            .map(|i| (format!("t{i:03}"), Value::Int(i)))
            .collect();
        assert_eq!(kv.put_batch(batch), 100);
        assert_eq!(kv.len(), 100);
        assert_eq!(kv.seek("t05").unwrap().0, "t050");
    }

    #[test]
    fn concurrent_writers() {
        let kv = std::sync::Arc::new(KvStore::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let kv = kv.clone();
                s.spawn(move || {
                    for i in 0..250 {
                        kv.put(format!("w{t}/k{i}"), Value::Int(i));
                    }
                });
            }
        });
        assert_eq!(kv.len(), 1000);
    }
}
