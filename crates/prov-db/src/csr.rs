//! CSR-compacted immutable graph snapshot and branch-light traversal
//! kernels.
//!
//! [`GraphStore`](crate::GraphStore) is write-optimized: `String`-keyed
//! adjacency maps behind one `RwLock`, per-node `Vec<GraphEdge>` with owned
//! `String` endpoints. Every traversal hop pays a hash of the full node id
//! plus pointer chases through three allocations per edge. [`CsrGraph`]
//! trades a one-time compaction for cache-dense reads:
//!
//! * node ids interned as [`prov_model::Sym`] and mapped to dense `u32`
//!   indices (`index` is probed with plain `&str` — no allocation);
//! * one forward and one reverse CSR (`offsets[u]..offsets[u+1]` slices of
//!   `targets`), each with a parallel per-edge `u16` relation-code array —
//!   per-node edge order is **insertion order**, exactly the order the
//!   adjacency-map oracle iterates, so kernel emission order matches the
//!   oracle byte-for-byte;
//! * visited state as a `u64` bitset (one bit per node, not a `HashSet`
//!   of owned `String`s).
//!
//! The node universe is `nodes ∪ edge endpoints`: edges may reference ids
//! never upserted as nodes (phantoms), and the legacy traversals happily
//! visit them. Dense indices `[0, n_real)` are real (upserted) nodes;
//! phantoms follow. Traversal kernels cover both; membership probes
//! ([`CsrGraph::contains_node`]) match real nodes only, which is what the
//! agent tool's token probing wants.
//!
//! Large frontiers fan out across crossbeam scoped threads (worker count
//! from `PROVDB_THREADS`, exactly like the columnar scans; `=1` forces the
//! sequential path). Parallelism never changes output: worker threads only
//! *pre-filter* their frontier chunk against a read-only snapshot of the
//! visited bitset, and a sequential merge — in chunk order — does all
//! visited-marking and emission, reproducing the sequential BFS order at
//! any thread count.
//!
//! Snapshots pin a CSR lazily per store generation (see
//! [`StoreSnapshot::graph_csr`](crate::StoreSnapshot::graph_csr)); the
//! build itself holds the graph's read lock once.

use crate::graph::GraphStore;
use prov_model::{Sym, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Relation code for "any relation" filters.
const ANY_REL: u16 = u16::MAX;

/// Frontier size below which a BFS level stays sequential (thread startup
/// would dominate the level's work).
const PARALLEL_FRONTIER: usize = 4096;

/// One direction of adjacency in compressed-sparse-row form: node `u`'s
/// edges are `targets[offsets[u] as usize .. offsets[u + 1] as usize]`.
struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    /// Per-edge relation codes, aligned with `targets` (code = index into
    /// [`CsrGraph::rels`]).
    rel: Vec<u16>,
}

impl Csr {
    /// Counting-sort build: `degree[u]` per-node edge counts, then a prefix
    /// sum, then a fill pass that must push each node's edges in the same
    /// order the adjacency map stores them.
    fn from_degrees(degrees: &[u32]) -> Csr {
        let mut offsets = Vec::with_capacity(degrees.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for &d in degrees {
            total += d;
            offsets.push(total);
        }
        Csr {
            offsets,
            targets: vec![0; total as usize],
            rel: vec![0; total as usize],
        }
    }

    #[inline]
    fn neighbors(&self, u: u32) -> (&[u32], &[u16]) {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        (&self.targets[lo..hi], &self.rel[lo..hi])
    }
}

/// Word-per-64-nodes visited set.
struct Bitset(Vec<u64>);

impl Bitset {
    fn new(n: usize) -> Bitset {
        Bitset(vec![0; n.div_ceil(64)])
    }

    #[inline]
    fn test(&self, i: u32) -> bool {
        self.0[(i >> 6) as usize] & (1 << (i & 63)) != 0
    }

    /// Set the bit; returns true when it was previously clear.
    #[inline]
    fn set(&mut self, i: u32) -> bool {
        let w = &mut self.0[(i >> 6) as usize];
        let m = 1 << (i & 63);
        let fresh = *w & m == 0;
        *w |= m;
        fresh
    }
}

/// An immutable, CSR-compacted snapshot of a [`GraphStore`] with
/// branch-light traversal kernels. See the module docs for the layout.
pub struct CsrGraph {
    /// Dense index → node id. `[0, n_real)` are upserted nodes; phantom
    /// edge endpoints follow.
    ids: Vec<Sym>,
    /// Dense index → label, aligned with `ids` (phantoms share `""`).
    labels: Vec<Sym>,
    /// Dense index → properties, aligned with `ids` (phantoms share the
    /// empty object).
    props: Vec<Arc<Value>>,
    /// Node id → dense index (probed with `&str`, allocation-free).
    index: HashMap<Sym, u32>,
    /// Boundary between real nodes and phantom endpoints in `ids`.
    n_real: usize,
    /// Relation code → relation name.
    rels: Vec<Sym>,
    /// Forward (out-edge) adjacency.
    out: Csr,
    /// Reverse (in-edge) adjacency.
    inc: Csr,
    /// Worker count for large-frontier fan-out (1 = sequential path);
    /// resolved from `PROVDB_THREADS` at build, re-pinnable for benches.
    threads: AtomicUsize,
}

/// Traversal direction over the CSR pair.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges (`from → to`): upstream over `prov:wasInformedBy`.
    Out,
    /// Follow in-edges (`to → from`): downstream impact.
    In,
}

impl CsrGraph {
    /// Compact `store` into CSR form under a single read-lock acquisition.
    pub fn build(store: &GraphStore) -> CsrGraph {
        store.with_inner(|g| {
            // Dense indices: upserted nodes first (membership boundary),
            // then phantom endpoints discovered while walking edges.
            let mut index: HashMap<Sym, u32> = HashMap::with_capacity(g.nodes.len());
            let mut ids: Vec<Sym> = Vec::with_capacity(g.nodes.len());
            let mut labels: Vec<Sym> = Vec::with_capacity(g.nodes.len());
            let mut props: Vec<Arc<Value>> = Vec::with_capacity(g.nodes.len());
            for (id, node) in &g.nodes {
                let sym = Sym::new(id.as_str());
                index.insert(sym.clone(), ids.len() as u32);
                ids.push(sym);
                labels.push(Sym::new(node.label.as_str()));
                props.push(Arc::clone(&node.props));
            }
            let n_real = ids.len();

            let empty_label = Sym::intern("");
            let empty_props: Arc<Value> = Arc::new(Value::object(prov_model::Map::new()));
            let intern_node = |id: &str,
                               index: &mut HashMap<Sym, u32>,
                               ids: &mut Vec<Sym>,
                               labels: &mut Vec<Sym>,
                               props: &mut Vec<Arc<Value>>| {
                if let Some(&i) = index.get(id) {
                    return i;
                }
                let sym = Sym::new(id);
                let i = ids.len() as u32;
                index.insert(sym.clone(), i);
                ids.push(sym);
                labels.push(empty_label.clone());
                props.push(Arc::clone(&empty_props));
                i
            };

            // Relation codes (tiny vocabulary: prov:wasInformedBy etc.).
            let mut rels: Vec<Sym> = Vec::new();
            let mut rel_code: HashMap<Sym, u16> = HashMap::new();
            let code_of = |rel: &str, rels: &mut Vec<Sym>, rel_code: &mut HashMap<Sym, u16>| {
                if let Some(&c) = rel_code.get(rel) {
                    return c;
                }
                let c = rels.len() as u16;
                debug_assert!(c < ANY_REL, "relation vocabulary overflow");
                let sym = Sym::intern(rel);
                rel_code.insert(sym.clone(), c);
                rels.push(sym);
                c
            };

            // First pass: register phantom endpoints and count degrees.
            // (Out- and in-maps hold the same edges, indexed both ways.)
            for (from, es) in &g.out_edges {
                intern_node(from, &mut index, &mut ids, &mut labels, &mut props);
                for e in es {
                    intern_node(&e.to, &mut index, &mut ids, &mut labels, &mut props);
                    code_of(&e.rel, &mut rels, &mut rel_code);
                }
            }
            for to in g.in_edges.keys() {
                intern_node(to, &mut index, &mut ids, &mut labels, &mut props);
            }
            let n = ids.len();
            let mut out_deg = vec![0u32; n];
            let mut in_deg = vec![0u32; n];
            for (from, es) in &g.out_edges {
                out_deg[index[from.as_str()] as usize] = es.len() as u32;
            }
            for (to, es) in &g.in_edges {
                in_deg[index[to.as_str()] as usize] = es.len() as u32;
            }

            // Fill pass, preserving each node's per-vec insertion order so
            // kernel emission order equals the adjacency-map oracle's.
            let mut out = Csr::from_degrees(&out_deg);
            let mut inc = Csr::from_degrees(&in_deg);
            for (from, es) in &g.out_edges {
                let u = index[from.as_str()];
                let base = out.offsets[u as usize] as usize;
                for (k, e) in es.iter().enumerate() {
                    out.targets[base + k] = index[e.to.as_str()];
                    out.rel[base + k] = rel_code[e.rel.as_str()];
                }
            }
            for (to, es) in &g.in_edges {
                let v = index[to.as_str()];
                let base = inc.offsets[v as usize] as usize;
                for (k, e) in es.iter().enumerate() {
                    inc.targets[base + k] = index[e.from.as_str()];
                    inc.rel[base + k] = rel_code[e.rel.as_str()];
                }
            }

            CsrGraph {
                ids,
                labels,
                props,
                index,
                n_real,
                rels,
                out,
                inc,
                threads: AtomicUsize::new(crate::document::resolve_threads()),
            }
        })
    }

    /// Node count (upserted nodes only, phantom endpoints excluded —
    /// matches [`GraphStore::node_count`]).
    pub fn node_count(&self) -> usize {
        self.n_real
    }

    /// Edge count.
    pub fn edge_count(&self) -> usize {
        self.out.targets.len()
    }

    /// True when `id` was upserted as a node (phantom edge endpoints do
    /// not count, matching `GraphStore::node(id).is_some()`).
    pub fn contains_node(&self, id: &str) -> bool {
        self.index
            .get(id)
            .is_some_and(|&i| (i as usize) < self.n_real)
    }

    /// The node's label (`None` for unknown or phantom ids).
    pub fn node_label(&self, id: &str) -> Option<&Sym> {
        let &i = self.index.get(id)?;
        ((i as usize) < self.n_real).then(|| &self.labels[i as usize])
    }

    /// The node's shared property object (`None` for unknown/phantom ids).
    pub fn node_props(&self, id: &str) -> Option<&Arc<Value>> {
        let &i = self.index.get(id)?;
        ((i as usize) < self.n_real).then(|| &self.props[i as usize])
    }

    /// Worker count large-frontier kernels use (1 = sequential path).
    pub fn traverse_threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed)
    }

    /// Pin the kernel worker count (clamped to 1..=16). Kernel output is
    /// thread-count invariant; this only tunes read concurrency.
    pub fn set_traverse_threads(&self, threads: usize) {
        self.threads.store(threads.clamp(1, 16), Ordering::Relaxed);
    }

    fn rel_code(&self, rel: &str) -> Option<u16> {
        if rel.is_empty() {
            return Some(ANY_REL);
        }
        self.rels
            .iter()
            .position(|r| r.as_str() == rel)
            .map(|c| c as u16)
    }

    /// Directed BFS from `start` over `rel` edges (empty = any relation),
    /// up to `max_depth` hops. Returns `(node id, hop)` pairs, start
    /// excluded, in exactly the order [`GraphStore::traverse`] emits.
    pub fn traverse(
        &self,
        start: &str,
        rel: &str,
        dir: Direction,
        max_depth: usize,
    ) -> Vec<(Sym, usize)> {
        let Some(&s) = self.index.get(start) else {
            return Vec::new();
        };
        let Some(code) = self.rel_code(rel) else {
            return Vec::new(); // relation never ingested: nothing matches
        };
        let csr = match dir {
            Direction::Out => &self.out,
            Direction::In => &self.inc,
        };
        let mut visited = Bitset::new(self.ids.len());
        visited.set(s);
        let mut emitted: Vec<(u32, u32)> = Vec::new();
        let mut frontier = vec![s];
        let mut depth = 0u32;
        while !frontier.is_empty() && (depth as usize) < max_depth {
            depth += 1;
            frontier = self.expand(&frontier, &mut visited, |u, next| {
                let (ts, rs) = csr.neighbors(u);
                for (&v, &r) in ts.iter().zip(rs) {
                    if code == ANY_REL || r == code {
                        next(v);
                    }
                }
            });
            emitted.extend(frontier.iter().map(|&v| (v, depth)));
        }
        emitted
            .into_iter()
            .map(|(v, d)| (self.ids[v as usize].clone(), d as usize))
            .collect()
    }

    /// Upstream transitive closure over `prov:wasInformedBy` (bounded by
    /// `max_depth`) — matches [`GraphStore::upstream_lineage`].
    pub fn upstream(&self, task: &str, max_depth: usize) -> Vec<(Sym, usize)> {
        self.traverse(task, "prov:wasInformedBy", Direction::Out, max_depth)
    }

    /// Downstream impact over `prov:wasInformedBy` — matches
    /// [`GraphStore::downstream_impact`].
    pub fn downstream(&self, task: &str, max_depth: usize) -> Vec<(Sym, usize)> {
        self.traverse(task, "prov:wasInformedBy", Direction::In, max_depth)
    }

    /// The k-hop neighborhood of `start`: any relation, edges treated as
    /// undirected, out-neighbors before in-neighbors per visited node,
    /// start excluded — matches [`GraphStore::khop`].
    pub fn khop(&self, start: &str, k: usize) -> Vec<(Sym, usize)> {
        let Some(&s) = self.index.get(start) else {
            return Vec::new();
        };
        let mut visited = Bitset::new(self.ids.len());
        visited.set(s);
        let mut emitted: Vec<(u32, u32)> = Vec::new();
        let mut frontier = vec![s];
        let mut depth = 0u32;
        while !frontier.is_empty() && (depth as usize) < k {
            depth += 1;
            frontier = self.expand(&frontier, &mut visited, |u, next| {
                for &v in self.out.neighbors(u).0 {
                    next(v);
                }
                for &v in self.inc.neighbors(u).0 {
                    next(v);
                }
            });
            emitted.extend(frontier.iter().map(|&v| (v, depth)));
        }
        emitted
            .into_iter()
            .map(|(v, d)| (self.ids[v as usize].clone(), d as usize))
            .collect()
    }

    /// Expand one BFS level: feed every neighbor of every frontier node —
    /// in frontier order, per-node edge order — through the visited set,
    /// returning the deduplicated next frontier in first-discovery order.
    ///
    /// Above [`PARALLEL_FRONTIER`] (and with >1 worker) the neighbor
    /// *generation* fans out across crossbeam scoped threads, each
    /// pre-filtering its chunk against the read-only visited bitset; the
    /// final marking/emission merge is always sequential in chunk order,
    /// so the result is identical at any thread count (a duplicate that
    /// survives two chunks' pre-filters is dropped by the merge).
    fn expand(
        &self,
        frontier: &[u32],
        visited: &mut Bitset,
        neighbors: impl Fn(u32, &mut dyn FnMut(u32)) + Sync,
    ) -> Vec<u32> {
        let workers = self.traverse_threads().min(frontier.len());
        if workers > 1 && frontier.len() >= PARALLEL_FRONTIER {
            let chunk = frontier.len().div_ceil(workers);
            let visited_ro: &Bitset = visited;
            let candidates: Vec<Vec<u32>> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = frontier
                    .chunks(chunk)
                    .map(|part| {
                        let neighbors = &neighbors;
                        scope.spawn(move |_| {
                            let mut cand = Vec::new();
                            for &u in part {
                                neighbors(u, &mut |v| {
                                    if !visited_ro.test(v) {
                                        cand.push(v);
                                    }
                                });
                            }
                            cand
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .expect("graph traversal worker panicked");
            let mut next = Vec::new();
            for cand in candidates {
                for v in cand {
                    if visited.set(v) {
                        next.push(v);
                    }
                }
            }
            next
        } else {
            let mut next = Vec::new();
            for &u in frontier {
                neighbors(u, &mut |v| {
                    if visited.set(v) {
                        next.push(v);
                    }
                });
            }
            next
        }
    }

    /// Shortest directed path over any relation, endpoints included —
    /// forward BFS with dense parent links. Discovery order is the
    /// oracle's queue order over the same per-node edge order, so ties
    /// break **identically** to [`GraphStore::shortest_path`].
    pub fn shortest_path(&self, from: &str, to: &str) -> Option<Vec<Sym>> {
        if from == to {
            return Some(vec![Sym::new(from)]);
        }
        let &s = self.index.get(from)?;
        let &t = self.index.get(to)?;
        let mut parent = vec![u32::MAX; self.ids.len()];
        let mut visited = Bitset::new(self.ids.len());
        visited.set(s);
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in self.out.neighbors(u).0 {
                if visited.set(v) {
                    parent[v as usize] = u;
                    if v == t {
                        return Some(self.unwind_path(&parent, s, t));
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Bidirectional shortest path over any relation: alternately expands
    /// the smaller of the forward (out-edge) and backward (in-edge)
    /// frontiers, tracking the best meet `μ = min(d_f(v) + d_b(v))`, and
    /// stops once `μ ≤ L_f + L_b` — at that point no undiscovered path can
    /// be shorter (a path of length `d ≤ L_f + L_b` must contain a node
    /// discovered by both sides, which would already have lowered `μ`).
    /// Explores ~√ the nodes of the unidirectional search on broad DAGs.
    ///
    /// Returns a path of *minimal length*; tie-breaking may differ from
    /// [`CsrGraph::shortest_path`], which is why the differential suite
    /// checks length + edge validity for this kernel rather than exact
    /// node-sequence equality.
    pub fn shortest_path_bidi(&self, from: &str, to: &str) -> Option<Vec<Sym>> {
        if from == to {
            return Some(vec![Sym::new(from)]);
        }
        let &s = self.index.get(from)?;
        let &t = self.index.get(to)?;
        let n = self.ids.len();
        let mut fwd = SideState::new(n, s);
        let mut bwd = SideState::new(n, t);
        // Best meet so far: (node discovered by both sides, total length).
        let mut best: Option<(u32, u32)> = None;
        loop {
            if let Some((_, total)) = best {
                if total <= fwd.level + bwd.level {
                    break;
                }
            }
            // Expand the smaller non-empty frontier; both empty = done.
            let fe = fwd.frontier.is_empty();
            let be = bwd.frontier.is_empty();
            let (side, other, csr) = match (fe, be) {
                (true, true) => break,
                (false, true) => (&mut fwd, &mut bwd, &self.out),
                (true, false) => (&mut bwd, &mut fwd, &self.inc),
                (false, false) => {
                    if fwd.frontier.len() <= bwd.frontier.len() {
                        (&mut fwd, &mut bwd, &self.out)
                    } else {
                        (&mut bwd, &mut fwd, &self.inc)
                    }
                }
            };
            side.level += 1;
            let mut next = Vec::new();
            for i in 0..side.frontier.len() {
                let u = side.frontier[i];
                for &v in csr.neighbors(u).0 {
                    if side.dist[v as usize] != u32::MAX {
                        continue;
                    }
                    side.dist[v as usize] = side.level;
                    side.parent[v as usize] = u;
                    next.push(v);
                    let od = other.dist[v as usize];
                    if od != u32::MAX {
                        let total = side.level + od;
                        if best.is_none_or(|(_, b)| total < b) {
                            best = Some((v, total));
                        }
                    }
                }
            }
            side.frontier = next;
        }
        let (meet, _) = best?;
        // Stitch: forward chain s → meet, then backward chain meet → t.
        let mut path = self.unwind_path(&fwd.parent, s, meet);
        let mut at = meet;
        while at != t {
            at = bwd.parent[at as usize];
            path.push(self.ids[at as usize].clone());
        }
        Some(path)
    }

    fn unwind_path(&self, parent: &[u32], s: u32, t: u32) -> Vec<Sym> {
        let mut idxs = vec![t];
        let mut at = t;
        while at != s {
            at = parent[at as usize];
            idxs.push(at);
        }
        idxs.reverse();
        idxs.into_iter()
            .map(|i| self.ids[i as usize].clone())
            .collect()
    }
}

/// One direction's search state in [`CsrGraph::shortest_path_bidi`]:
/// `dist[start] = 0`, `u32::MAX` = unreached.
struct SideState {
    dist: Vec<u32>,
    parent: Vec<u32>,
    frontier: Vec<u32>,
    level: u32,
}

impl SideState {
    fn new(n: usize, start: u32) -> SideState {
        let mut dist = vec![u32::MAX; n];
        dist[start as usize] = 0;
        SideState {
            dist,
            parent: vec![u32::MAX; n],
            frontier: vec![start],
            level: 0,
        }
    }
}
