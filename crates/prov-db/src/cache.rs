//! Plan-keyed query result cache.
//!
//! Sits *below* the tool layer: any caller that executes a provql plan
//! against a [`StoreSnapshot`](crate::StoreSnapshot) can consult it. An
//! entry is keyed by `(canonical plan, store generation)` —
//! [`provql::plan::cache_key`] canonicalizes commutative conjunct order
//! and coercible literal spellings, so equivalent dashboard queries share
//! one entry, and the generation component makes staleness structurally
//! impossible: the store is append-only and every accepted insert bumps
//! the generation, so a `(plan, generation)` pair names exactly one
//! answer, forever.
//!
//! Memory is bounded: each entry carries a size estimate and inserts
//! evict least-recently-used entries until the configured budget holds
//! (`PROVDB_CACHE_MB` overrides the default). Only successful outputs
//! are cached — errors are cheap to recompute and their messages may
//! depend on corpus-wide state the key does not capture.

use parking_lot::Mutex;
use prov_model::Value;
use provql::QueryOutput;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default cache budget in bytes (64 MiB) when `PROVDB_CACHE_MB` is unset.
const DEFAULT_MAX_BYTES: usize = 64 << 20;

fn env_max_bytes() -> usize {
    std::env::var("PROVDB_CACHE_MB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|mb| mb << 20)
        .unwrap_or(DEFAULT_MAX_BYTES)
}

struct Entry {
    out: Arc<QueryOutput>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct CacheInner {
    map: HashMap<(String, u64), Entry>,
    bytes: usize,
    tick: u64,
}

/// Bounded, generation-aware result cache shared by every snapshot of one
/// database. Lock-cheap: the map lock is held only for the probe/insert
/// itself, never across query execution; counters are atomics readable
/// without the lock.
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    max_bytes: usize,
}

/// Point-in-time cache counters, exposed through tool metadata and the
/// serve layer so eval runs can assert cache behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that missed (and, on success, populated an entry).
    pub misses: u64,
    /// Entries dropped to hold the memory budget.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
    /// Estimated bytes held by live entries.
    pub bytes: usize,
}

/// How a query interacted with the plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache.
    Hit,
    /// Executed and (on success) cached.
    Miss,
    /// Executed with caching disabled by the caller.
    Bypass,
}

impl CacheOutcome {
    /// Stable lowercase label (`hit` / `miss` / `bypass`) for metadata.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_max_bytes(env_max_bytes())
    }
}

impl PlanCache {
    /// A cache with an explicit byte budget (tests use tiny budgets to
    /// exercise eviction).
    pub fn with_max_bytes(max_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            max_bytes,
        }
    }

    /// Probe for `(plan key, generation)`; counts a hit or a miss.
    pub fn get(&self, key: &str, generation: u64) -> Option<Arc<QueryOutput>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // Borrow-split: the probe key is (String, u64) but lookups come in
        // with &str; a short-lived owned key keeps the map simple.
        match inner.map.get_mut(&(key.to_string(), generation)) {
            Some(e) => {
                e.last_used = tick;
                let out = e.out.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a successful output under `(plan key, generation)`, evicting
    /// least-recently-used entries until the budget holds. Outputs larger
    /// than the whole budget are not cached at all.
    pub fn insert(&self, key: String, generation: u64, out: Arc<QueryOutput>) {
        let bytes = estimate_bytes(&out);
        if bytes > self.max_bytes {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            (key, generation),
            Entry {
                out,
                bytes,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        let mut evicted = 0u64;
        while inner.bytes > self.max_bytes {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let old = inner.map.remove(&victim).expect("victim just found");
            inner.bytes -= old.bytes;
            evicted += 1;
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = {
            let inner = self.inner.lock();
            (inner.map.len(), inner.bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }

    /// Drop every entry (counters are kept — they describe history, not
    /// contents).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.bytes = 0;
    }
}

/// Rough retained-size estimate of an output. Not exact accounting — the
/// budget is a pressure valve, not a ledger — but it scales with rows ×
/// columns and string payloads, which is what actually grows.
fn estimate_bytes(out: &QueryOutput) -> usize {
    const BASE: usize = 64;
    match out {
        QueryOutput::Frame(f) => BASE + f.width() * 48 + f.len() * f.width() * CELL,
        QueryOutput::Series { name, values } => BASE + name.len() + values.len() * CELL,
        QueryOutput::Scalar(v) => BASE + value_bytes(v),
        QueryOutput::Row(m) => {
            BASE + m
                .iter()
                .map(|(k, v)| k.as_str().len() + value_bytes(v))
                .sum::<usize>()
        }
    }
}

/// Flat per-cell estimate: a `Value` is a tagged enum around pointer-sized
/// payloads; string/array cells are shared `Arc`s whose payload the store
/// usually retains anyway.
const CELL: usize = 24;

fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Str(s) => CELL + s.as_str().len(),
        Value::Array(a) => CELL + a.iter().map(value_bytes).sum::<usize>(),
        Value::Object(m) => {
            CELL + m
                .iter()
                .map(|(k, v)| k.as_str().len() + value_bytes(v))
                .sum::<usize>()
        }
        _ => CELL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(n: i64) -> Arc<QueryOutput> {
        Arc::new(QueryOutput::Scalar(Value::Int(n)))
    }

    #[test]
    fn hit_miss_and_generation_separation() {
        let cache = PlanCache::with_max_bytes(1 << 20);
        assert!(cache.get("q", 1).is_none());
        cache.insert("q".into(), 1, scalar(7));
        assert_eq!(
            *cache.get("q", 1).unwrap(),
            QueryOutput::Scalar(Value::Int(7))
        );
        // Same plan at a newer generation is a different entry.
        assert!(cache.get("q", 2).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
    }

    #[test]
    fn eviction_holds_the_budget() {
        // Budget of ~3 scalar entries.
        let one = estimate_bytes(&scalar(0));
        let cache = PlanCache::with_max_bytes(3 * one);
        for i in 0..5 {
            cache.insert(format!("q{i}"), 1, scalar(i));
        }
        let s = cache.stats();
        assert!(
            s.bytes <= 3 * one,
            "budget held: {} <= {}",
            s.bytes,
            3 * one
        );
        assert_eq!(s.evictions, 2);
        // The most recently inserted entries survive.
        assert!(cache.get("q4", 1).is_some());
        assert!(cache.get("q0", 1).is_none());
    }

    #[test]
    fn oversized_outputs_are_not_cached() {
        let cache = PlanCache::with_max_bytes(8);
        cache.insert("big".into(), 1, scalar(1));
        assert_eq!(cache.stats().entries, 0);
    }
}
